//! The `Farm` facade: the whole framework wired together.
//!
//! Owns the simulated [`Network`], one [`Soil`] per switch, the
//! [`Seeder`] and the per-task harvesters, and drives everything on
//! virtual time: traffic application, probe sampling, trigger scheduling,
//! message routing (seed ↔ seed and seed ↔ harvester), harvester
//! commands, and placement (re)optimization with live migrations.
//!
//! Construction goes through [`FarmBuilder`] (also reachable as
//! [`Farm::builder`]): topology, configuration, harvesters and telemetry
//! sinks in one fluent chain. The builder wires a shared
//! [`Telemetry`] handle through every layer — network, soils, seeder —
//! so one registry accumulates the whole stack's counters and
//! histograms and one sink set observes the whole event stream.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use farm_almanac::analysis::ConstEnv;
use farm_almanac::compile::{compile_task, CompiledTask};
use farm_almanac::value::{PacketRecord, Value};
use farm_faults::{Delivery, FaultInjector, FaultKind, FaultPlan, LossModel};
use farm_netsim::controller::SdnController;
use farm_netsim::network::{Network, TrafficEvent};
use farm_netsim::switch::{ResourceKind, Resources};
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::Workload;
use farm_netsim::types::{Proto, SwitchId};
use farm_soil::{Endpoint, OutboundMessage, SeedId, SeedSnapshot, Soil, SoilConfig, SoilStats};
use farm_telemetry::{
    Counter, Event, EventSink, Histogram, ReplanOutcome, Telemetry, UndeployReason,
};

pub use crate::error::{Error, FarmError};
use crate::harvester::{Harvester, HarvesterCommand, HarvesterCtx};
use crate::metrics::Metrics;
use crate::seeder::{Plan, PlannedAction, SeedKey, Seeder};
use crate::transport::TcpBridge;
pub use crate::transport::TransportMode;

/// Framework configuration.
#[derive(Debug, Clone, Default)]
pub struct FarmConfig {
    /// Soil configuration applied to every switch.
    pub soil: SoilConfig,
    /// Failure detection and recovery knobs.
    pub fault_tolerance: FaultToleranceConfig,
    /// How deliveries travel: direct calls or real loopback TCP.
    pub transport: TransportMode,
    /// Worker threads for the placement solver's parallel phases
    /// (per-switch LP redistribution, migration-benefit scan). `0` and
    /// `1` both solve sequentially; any value yields bit-identical
    /// plans (see DESIGN.md "Performance").
    pub placement_threads: usize,
}

/// Failure detection and recovery knobs (§ "Failure model & recovery"
/// in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultToleranceConfig {
    /// Soil heartbeat period. Each round checkpoints live seeds and
    /// drives the missed-heartbeat detector.
    pub heartbeat_interval: Dur,
    /// Consecutive missed heartbeats before a switch is declared failed
    /// and its seeds are orphaned for re-placement.
    pub miss_threshold: u32,
    /// Re-placement attempts per orphaned seed before recovery is
    /// abandoned.
    pub max_recovery_attempts: u32,
    /// Backoff before the first recovery retry; doubles per attempt.
    pub recovery_backoff: Dur,
    /// Extra delivery attempts for a harvester report dropped by a lossy
    /// control channel before it is dead-lettered.
    pub delivery_retries: u32,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            heartbeat_interval: Dur::from_millis(10),
            miss_threshold: 3,
            max_recovery_attempts: 5,
            recovery_backoff: Dur::from_millis(5),
            delivery_retries: 3,
        }
    }
}

/// Base seed for control-channel loss decision streams; per-switch
/// models fork off it so runs replay identically.
const LOSS_SEED_BASE: u64 = 0xFA12_5EED;

/// One orphaned or shed seed awaiting re-placement.
#[derive(Debug, Clone)]
struct RecoveryItem {
    /// Last checkpointed state, when one exists (warm restore).
    snapshot: Option<SeedSnapshot>,
    /// When the seed's host was lost (crash instant when known,
    /// detection instant otherwise) — the MTTR clock starts here.
    lost_at: Time,
    /// Re-placement attempts consumed so far.
    attempts: u32,
    /// Earliest instant of the next attempt (exponential backoff).
    next_at: Time,
}

/// Maximum message-routing rounds per step (seed→harvester→seed→… chains).
const MAX_ROUTING_ROUNDS: usize = 8;

/// Cached handles for the framework-level instruments, so the routing
/// hot path never takes the registry lock.
struct FarmCounters {
    collector_messages: Arc<Counter>,
    collector_bytes: Arc<Counter>,
    seed_messages: Arc<Counter>,
    seed_bytes: Arc<Counter>,
    control_messages: Arc<Counter>,
    control_bytes: Arc<Counter>,
    migrations: Arc<Counter>,
    migration_bytes: Arc<Counter>,
    seed_errors: Arc<Counter>,
    replans: Arc<Counter>,
    /// Planning rounds served warm by the incremental solver without
    /// degrading to a full recompute.
    replan_delta: Arc<Counter>,
    /// Warm rounds whose dirty frontier exceeded the limit and fell back
    /// to a full recompute.
    delta_fallback_full: Arc<Counter>,
    heartbeats: Arc<Counter>,
    delivery_retries: Arc<Counter>,
    dead_letters: Arc<Counter>,
    recoveries: Arc<Counter>,
    /// `net.*` / `transport.*` instruments other layers own, cached here
    /// so [`Farm::metrics`] can surface them in the compat view.
    net_dead_letters: Arc<Counter>,
    transport_fallbacks: Arc<Counter>,
    /// Source-to-harvester report latency, microseconds.
    detection_latency_us: Arc<Histogram>,
    /// Seed outage duration (host lost → re-deployed), microseconds.
    mttr_us: Arc<Histogram>,
    /// Wall-clock duration of one placement round (plan + commit),
    /// microseconds.
    replan_us: Arc<Histogram>,
    /// Same clock, but only rounds the incremental solver served warm
    /// without a full fallback — the latency the delta path delivers.
    replan_delta_us: Arc<Histogram>,
}

impl FarmCounters {
    fn new(telemetry: &Telemetry) -> FarmCounters {
        FarmCounters {
            collector_messages: telemetry.counter("farm.collector_messages"),
            collector_bytes: telemetry.counter("farm.collector_bytes"),
            seed_messages: telemetry.counter("farm.seed_messages"),
            seed_bytes: telemetry.counter("farm.seed_bytes"),
            control_messages: telemetry.counter("farm.control_messages"),
            control_bytes: telemetry.counter("farm.control_bytes"),
            migrations: telemetry.counter("farm.migrations"),
            migration_bytes: telemetry.counter("farm.migration_bytes"),
            seed_errors: telemetry.counter("farm.seed_errors"),
            replans: telemetry.counter("farm.replans"),
            replan_delta: telemetry.counter("farm.replan_delta"),
            delta_fallback_full: telemetry.counter("farm.delta_fallback_full"),
            heartbeats: telemetry.counter("farm.heartbeats"),
            delivery_retries: telemetry.counter("farm.delivery_retries"),
            dead_letters: telemetry.counter("farm.dead_letters"),
            recoveries: telemetry.counter("farm.recoveries"),
            net_dead_letters: telemetry.counter("net.dead_letters"),
            transport_fallbacks: telemetry.counter("transport.fallbacks"),
            detection_latency_us: telemetry.latency_histogram("detection.latency_us"),
            mttr_us: telemetry.latency_histogram("recovery.mttr_us"),
            replan_us: telemetry.latency_histogram("farm.replan_us"),
            replan_delta_us: telemetry.latency_histogram("farm.replan_delta_us"),
        }
    }
}

/// Fluent constructor for [`Farm`]: topology, config, harvesters and
/// telemetry sinks in one chain.
///
/// ```
/// use std::sync::Arc;
/// use farm_core::prelude::*;
///
/// let topo = Topology::spine_leaf(2, 3,
///     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
/// let events = Arc::new(RingBufferSink::new(1024));
/// let farm = FarmBuilder::new(topo)
///     .with_config(FarmConfig::default())
///     .with_harvester("hh", Box::new(CollectingHarvester::new()))
///     .with_sink(events.clone())
///     .build();
/// assert_eq!(farm.deployed_seeds(), 0);
/// ```
pub struct FarmBuilder {
    topology: Topology,
    config: FarmConfig,
    sinks: Vec<Arc<dyn EventSink>>,
    harvesters: Vec<(String, Box<dyn Harvester>)>,
    fault_plan: FaultPlan,
}

impl FarmBuilder {
    /// Starts a builder over a topology with default configuration.
    pub fn new(topology: Topology) -> FarmBuilder {
        FarmBuilder {
            topology,
            config: FarmConfig::default(),
            sinks: Vec::new(),
            harvesters: Vec::new(),
            fault_plan: FaultPlan::new(),
        }
    }

    /// Schedules a deterministic fault plan; the farm injects its events
    /// as virtual time advances. Equal plans yield equal runs.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> FarmBuilder {
        self.fault_plan = plan;
        self
    }

    /// Replaces the framework configuration.
    pub fn with_config(mut self, config: FarmConfig) -> FarmBuilder {
        self.config = config;
        self
    }

    /// Selects the delivery transport (see [`TransportMode`]).
    pub fn with_transport(mut self, mode: TransportMode) -> FarmBuilder {
        self.config.transport = mode;
        self
    }

    /// Sets the placement solver's worker-pool width (see
    /// [`FarmConfig::placement_threads`]).
    pub fn with_placement_threads(mut self, threads: usize) -> FarmBuilder {
        self.config.placement_threads = threads;
        self
    }

    /// Registers a harvester for a task (replacing a previous one for
    /// the same task).
    pub fn with_harvester(mut self, task: impl Into<String>, h: Box<dyn Harvester>) -> FarmBuilder {
        self.harvesters.push((task.into(), h));
        self
    }

    /// Attaches an event sink; every [`Event`] from any layer reaches it.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> FarmBuilder {
        self.sinks.push(sink);
        self
    }

    /// Assembles the framework: one [`Telemetry`] handle is created and
    /// threaded through the network, every soil, and the seeder.
    pub fn build(self) -> Farm {
        let telemetry = Telemetry::new();
        for sink in self.sinks {
            telemetry.add_sink(sink);
        }
        let mut network = Network::new(self.topology);
        network.set_telemetry(&telemetry);
        let soils: HashMap<SwitchId, Soil> = network
            .switch_ids()
            .into_iter()
            .map(|id| {
                let mut soil = Soil::new(id, self.config.soil);
                soil.set_telemetry(telemetry.clone());
                (id, soil)
            })
            .collect();
        let mut seeder = Seeder::new();
        seeder.set_telemetry(telemetry.clone());
        seeder.set_options(farm_placement::HeuristicOptions::with_threads(
            self.config.placement_threads,
        ));
        let counters = FarmCounters::new(&telemetry);
        let ft = self.config.fault_tolerance;
        let transport = match self.config.transport {
            TransportMode::InProcess => None,
            // A bind failure on loopback means the host is unusable for
            // TCP entirely; degrade to in-process delivery and record it.
            TransportMode::Tcp => match TcpBridge::new(&telemetry) {
                Ok(bridge) => Some(bridge),
                Err(_) => {
                    telemetry.counter("transport.fallbacks").inc();
                    None
                }
            },
        };
        let mut farm = Farm {
            network,
            soils,
            seeder,
            transport,
            seed_ids: HashMap::new(),
            harvesters: HashMap::new(),
            now: Time::ZERO,
            telemetry,
            counters,
            soil_config: self.config.soil,
            ft,
            injector: FaultInjector::new(self.fault_plan),
            heartbeat_due: Time::ZERO + ft.heartbeat_interval,
            missed: BTreeMap::new(),
            fenced: BTreeSet::new(),
            cordoned: BTreeSet::new(),
            down_since: BTreeMap::new(),
            checkpoints: HashMap::new(),
            recovery: BTreeMap::new(),
            global_loss: None,
            switch_loss: BTreeMap::new(),
        };
        for (task, h) in self.harvesters {
            farm.set_harvester(task, h);
        }
        farm
    }
}

/// Control-plane view of one placed seed ([`Farm::seed_statuses`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SeedStatus {
    pub key: SeedKey,
    /// Machine name, empty when the seed is placed but not live (host
    /// crashed, recovery pending).
    pub machine: String,
    pub switch: SwitchId,
    /// Current state-machine state, or `"lost"` when not live.
    pub state: String,
    pub alloc: Resources,
}

/// The assembled FARM framework over a simulated fabric.
pub struct Farm {
    network: Network,
    soils: HashMap<SwitchId, Soil>,
    seeder: Seeder,
    /// Loopback TCP bridge when running under [`TransportMode::Tcp`].
    transport: Option<TcpBridge>,
    seed_ids: HashMap<SeedKey, SeedId>,
    harvesters: HashMap<String, Box<dyn Harvester>>,
    now: Time,
    telemetry: Telemetry,
    counters: FarmCounters,
    /// Kept so switches restarting after a crash get a fresh soil with
    /// the same configuration.
    soil_config: SoilConfig,
    ft: FaultToleranceConfig,
    injector: FaultInjector,
    /// Next heartbeat round.
    heartbeat_due: Time,
    /// Consecutive missed heartbeats per unreachable switch.
    missed: BTreeMap<SwitchId, u32>,
    /// Switches declared failed; their stale seeds are killed when (if)
    /// they rejoin, and they host nothing until then.
    fenced: BTreeSet<SwitchId>,
    /// Switches administratively cordoned ([`Farm::drain`]): healthy but
    /// excluded from placement until [`Farm::uncordon`].
    cordoned: BTreeSet<SwitchId>,
    /// Crash instant per currently-affected switch (starts the MTTR
    /// clock for the seeds it hosted).
    down_since: BTreeMap<SwitchId, Time>,
    /// Last heartbeat checkpoint per live seed (restored on recovery).
    checkpoints: HashMap<SeedKey, SeedSnapshot>,
    /// Orphaned/shed seeds awaiting re-placement.
    recovery: BTreeMap<SeedKey, RecoveryItem>,
    /// Control-channel impairment for the whole management network.
    global_loss: Option<LossModel>,
    /// Control-channel impairment per switch (wins over `global_loss`).
    switch_loss: BTreeMap<SwitchId, LossModel>,
}

impl Farm {
    /// Builds the framework over a topology. Equivalent to
    /// `Farm::builder(topology).with_config(config).build()`; prefer
    /// [`FarmBuilder`] when attaching harvesters or sinks.
    pub fn new(topology: Topology, config: FarmConfig) -> Farm {
        Farm::builder(topology).with_config(config).build()
    }

    /// Starts a [`FarmBuilder`] over a topology.
    pub fn builder(topology: Topology) -> FarmBuilder {
        FarmBuilder::new(topology)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access (test workloads, fault injection).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The soil running on a switch.
    pub fn soil(&self, id: SwitchId) -> Option<&Soil> {
        self.soils.get(&id)
    }

    /// Fabric-wide soil statistics (summed across every switch) —
    /// poll-aggregation savings, ASIC polls, deliveries.
    pub fn soil_stats(&self) -> SoilStats {
        self.soils.values().map(|s| s.stats()).sum()
    }

    /// The seeder (task catalog and placements).
    pub fn seeder(&self) -> &Seeder {
        &self.seeder
    }

    /// Mutable seeder access (heuristic options for ablations).
    pub fn seeder_mut(&mut self) -> &mut Seeder {
        &mut self.seeder
    }

    /// The telemetry handle shared by every layer: registry of
    /// counters/gauges/histograms plus the event-sink fan-out.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Cumulative metrics — a compatibility view computed from the
    /// telemetry registry's `farm.*` counters.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            collector_messages: self.counters.collector_messages.get(),
            collector_bytes: self.counters.collector_bytes.get(),
            seed_messages: self.counters.seed_messages.get(),
            seed_bytes: self.counters.seed_bytes.get(),
            control_messages: self.counters.control_messages.get(),
            control_bytes: self.counters.control_bytes.get(),
            migrations: self.counters.migrations.get(),
            migration_bytes: self.counters.migration_bytes.get(),
            seed_errors: self.counters.seed_errors.get(),
            replans: self.counters.replans.get(),
            net_dead_letters: self.counters.net_dead_letters.get(),
            transport_fallbacks: self.counters.transport_fallbacks.get(),
        }
    }

    /// Number of deployed seeds across the fabric.
    pub fn deployed_seeds(&self) -> usize {
        self.seed_ids.len()
    }

    /// Registers (or replaces) the harvester of a task.
    pub fn set_harvester(&mut self, task: impl Into<String>, h: Box<dyn Harvester>) {
        self.harvesters.insert(task.into(), h);
    }

    /// Typed view of a task's harvester.
    pub fn harvester<T: 'static>(&self, task: &str) -> Option<&T> {
        self.harvesters
            .get(task)
            .and_then(|h| h.as_any().downcast_ref::<T>())
    }

    /// Compiles and deploys an M&M task: parse/check/analyze the Almanac
    /// source, register it, and re-run global placement (which deploys
    /// the new seeds and may migrate existing ones).
    ///
    /// # Errors
    ///
    /// Compilation errors, placement failures, or soil deployment errors.
    pub fn deploy_task(
        &mut self,
        name: &str,
        source: &str,
        externals: &BTreeMap<String, ConstEnv>,
    ) -> Result<Plan, Error> {
        let task = {
            let ctl = SdnController::new(self.network.topology());
            compile_task(name, source, externals, &ctl)?
        };
        self.seeder.register_task(task);
        self.replan()
    }

    /// Compiles and registers several tasks, then runs a *single* global
    /// placement round — the efficient path for deploying fleets (the
    /// paper's seeder also batches: placement runs when inputs change,
    /// not per seed).
    ///
    /// # Errors
    ///
    /// Compilation or plan-execution failures.
    pub fn deploy_tasks(
        &mut self,
        tasks: &[(&str, &str, BTreeMap<String, ConstEnv>)],
    ) -> Result<Plan, Error> {
        for (name, source, externals) in tasks {
            let task = {
                let ctl = SdnController::new(self.network.topology());
                compile_task(name, source, externals, &ctl)?
            };
            self.seeder.register_task(task);
        }
        self.replan()
    }

    /// Removes a task: undeploys its seeds and drops its harvester.
    pub fn remove_task(&mut self, name: &str) -> Result<(), Error> {
        self.seeder.remove_task(name);
        self.harvesters.remove(name);
        let orphans: Vec<SeedKey> = self
            .seed_ids
            .keys()
            .filter(|k| k.task == name)
            .cloned()
            .collect();
        for key in orphans {
            if let Some(sid) = self.seed_ids.remove(&key) {
                // Location is gone from the seeder after remove_task; scan
                // the soils instead.
                for (swid, soil) in self.soils.iter_mut() {
                    if soil.seed(sid).is_some() {
                        let switch = self
                            .network
                            .switch_mut(*swid)
                            .expect("switch exists for soil");
                        let _ = soil.undeploy_with_reason(
                            sid,
                            UndeployReason::TaskRemoved,
                            self.now,
                            switch,
                        );
                        break;
                    }
                }
            }
        }
        // Drop the task's checkpoints and recovery entries too, so a
        // removed (e.g. migrated-away) task cannot leak stale snapshots
        // into later checkpoint files or restores.
        self.checkpoints.retain(|k, _| k.task != name);
        self.recovery.retain(|k, _| k.task != name);
        Ok(())
    }

    /// Re-runs global placement over every registered task and executes
    /// the resulting plan (deploy / migrate / realloc / undeploy).
    ///
    /// # Errors
    ///
    /// Soil-level failures while executing the plan.
    pub fn replan(&mut self) -> Result<Plan, Error> {
        self.replan_with(&[])
    }

    /// [`Farm::replan`] that tells the incremental solver which switches
    /// changed (faulted, drained, uncordoned) since the last round, so
    /// unaffected switches can reuse their memoized LP outputs. The plan
    /// is bit-identical to a full replan; only latency differs.
    ///
    /// # Errors
    ///
    /// Soil-level failures while executing the plan.
    pub fn replan_with(&mut self, dirty_switches: &[SwitchId]) -> Result<Plan, Error> {
        let started = std::time::Instant::now();
        let caps = self.live_capacities();
        let plan = match self.seeder.plan_delta(&caps, dirty_switches) {
            Ok(plan) => plan,
            Err(msg) => {
                self.counters.replans.inc();
                self.counters
                    .replan_us
                    .record(started.elapsed().as_micros() as u64);
                let at_ns = self.now.as_nanos();
                self.telemetry.emit_with(|| Event::ReplanCompleted {
                    at_ns,
                    outcome: ReplanOutcome::Failed,
                    actions: 0,
                    dropped_tasks: 0,
                });
                return Err(Error::Planner(msg));
            }
        };
        let mut outbound = Vec::new();
        for action in &plan.actions {
            match action {
                PlannedAction::Deploy { key, to, alloc } => {
                    let def = self
                        .seeder
                        .machine_of(key)
                        .ok_or_else(|| Error::UnknownMachine(key.to_string()))?;
                    let report = {
                        let soil = self.soils.get_mut(to).expect("soil per switch");
                        let switch = self.network.switch_mut(*to).expect("switch exists");
                        let (sid, report) =
                            soil.deploy(def, &key.task, *alloc, self.now, switch)?;
                        self.seed_ids.insert(key.clone(), sid);
                        report
                    };
                    self.counters.seed_errors.add(report.errors.len() as u64);
                    outbound.extend(report.messages);
                }
                PlannedAction::Migrate {
                    key,
                    from,
                    to,
                    alloc,
                } => {
                    let def = self
                        .seeder
                        .machine_of(key)
                        .ok_or_else(|| Error::UnknownMachine(key.to_string()))?;
                    let sid = *self
                        .seed_ids
                        .get(key)
                        .ok_or_else(|| Error::NotDeployed(key.to_string()))?;
                    // A crashed source has no soil; fall back to the last
                    // heartbeat checkpoint (or a cold snapshot) so the
                    // migration degrades into a recovery-style import.
                    let snapshot = match self.soils.get_mut(from) {
                        Some(soil) => {
                            let switch = self.network.switch_mut(*from).expect("switch exists");
                            soil.undeploy_with_reason(
                                sid,
                                UndeployReason::Migration,
                                self.now,
                                switch,
                            )?
                        }
                        None => self
                            .checkpoints
                            .get(key)
                            .cloned()
                            .ok_or_else(|| Error::NotDeployed(key.to_string()))?,
                    };
                    // Migration state travels the wire under TCP mode;
                    // the destination imports the decoded snapshot.
                    let snapshot = match &self.transport {
                        Some(bridge) => bridge.ship_snapshot(&key.task, *from, *to, snapshot),
                        None => snapshot,
                    };
                    let bytes: u64 = snapshot
                        .vars
                        .iter()
                        .map(|(_, v)| farm_soil::soil::value_bytes(v))
                        .sum();
                    let new_sid = {
                        let soil = self.soils.get_mut(to).expect("soil per switch");
                        let switch = self.network.switch_mut(*to).expect("switch exists");
                        soil.import(
                            Arc::clone(&def),
                            &key.task,
                            *alloc,
                            &snapshot,
                            self.now,
                            switch,
                        )?
                    };
                    self.seed_ids.insert(key.clone(), new_sid);
                    self.counters.migrations.inc();
                    self.counters.migration_bytes.add(bytes);
                    let at_ns = self.now.as_nanos();
                    self.telemetry.emit_with(|| Event::SeedMigrated {
                        at_ns,
                        from_switch: from.0,
                        to_switch: to.0,
                        task: key.task.clone(),
                        state_bytes: bytes,
                    });
                }
                PlannedAction::Realloc { key, alloc } => {
                    if let (Some(sid), Some((swid, _))) =
                        (self.seed_ids.get(key), self.seeder.location_of(key))
                    {
                        if let Some(soil) = self.soils.get_mut(&swid) {
                            let switch = self.network.switch_mut(swid).expect("switch exists");
                            let report = soil.realloc(*sid, *alloc, self.now, switch)?;
                            self.counters.seed_errors.add(report.errors.len() as u64);
                            outbound.extend(report.messages);
                        }
                    }
                }
                PlannedAction::Undeploy { key, from } => {
                    if let Some(sid) = self.seed_ids.remove(key) {
                        // A crashed host already lost the seed with it.
                        if let Some(soil) = self.soils.get_mut(from) {
                            let switch = self.network.switch_mut(*from).expect("switch exists");
                            let _ = soil.undeploy_with_reason(
                                sid,
                                UndeployReason::Replanned,
                                self.now,
                                switch,
                            )?;
                        }
                    }
                }
            }
            self.seeder.commit(action);
        }
        self.counters.replans.inc();
        let at_ns = self.now.as_nanos();
        let outcome = if plan.dropped_tasks.is_empty() {
            ReplanOutcome::Full
        } else {
            ReplanOutcome::Partial
        };
        let (actions, dropped) = (plan.actions.len() as u64, plan.dropped_tasks.len() as u64);
        self.telemetry.emit_with(|| Event::ReplanCompleted {
            at_ns,
            outcome,
            actions,
            dropped_tasks: dropped,
        });
        let elapsed_us = started.elapsed().as_micros() as u64;
        self.counters.replan_us.record(elapsed_us);
        if plan.delta.warm {
            if plan.delta.fallback_full {
                self.counters.delta_fallback_full.inc();
            } else {
                self.counters.replan_delta.inc();
                self.counters.replan_delta_us.record(elapsed_us);
            }
        }
        let (mut deploys, mut migrations, mut reallocs, mut undeploys) = (0u64, 0u64, 0u64, 0u64);
        for action in &plan.actions {
            match action {
                PlannedAction::Deploy { .. } => deploys += 1,
                PlannedAction::Migrate { .. } => migrations += 1,
                PlannedAction::Realloc { .. } => reallocs += 1,
                PlannedAction::Undeploy { .. } => undeploys += 1,
            }
        }
        self.telemetry.emit_with(|| Event::ReplanSummary {
            at_ns,
            elapsed_us,
            deploys,
            migrations,
            reallocs,
            undeploys,
        });
        self.route(outbound);
        Ok(plan)
    }

    /// Applies traffic to the fabric and offers per-event samples to
    /// probe triggers.
    pub fn apply_traffic(&mut self, events: &[TrafficEvent]) {
        self.network.apply_traffic(events);
        // BTreeMap: switches process their samples in id order, so event
        // traces are identical across runs (a HashMap here would make
        // fault-replay traces nondeterministic).
        let mut per_switch: BTreeMap<SwitchId, Vec<PacketRecord>> = BTreeMap::new();
        for e in events {
            per_switch
                .entry(e.switch)
                .or_default()
                .push(sample_packet(e));
        }
        let mut outbound = Vec::new();
        for (swid, pkts) in per_switch {
            if !self.network.is_up(swid) {
                continue;
            }
            if let Some(soil) = self.soils.get_mut(&swid) {
                let switch = self.network.switch_mut(swid).expect("switch exists");
                let report = soil.offer_packets(&pkts, self.now, switch);
                self.counters.seed_errors.add(report.errors.len() as u64);
                outbound.extend(report.messages);
            }
        }
        self.route(outbound);
    }

    /// Advances virtual time to `to`: scheduled faults and heartbeat
    /// rounds apply in timestamp order, every live soil fires its due
    /// triggers, due recoveries run, and resulting messages are routed.
    pub fn advance(&mut self, to: Time) {
        // Interleave fault injection and heartbeat rounds by timestamp;
        // faults win ties so a heartbeat at the crash instant already
        // sees the switch down.
        loop {
            let next_fault = self.injector.next_at().filter(|t| *t <= to);
            let next_hb = Some(self.heartbeat_due).filter(|t| *t <= to);
            match (next_fault, next_hb) {
                (Some(f), Some(h)) if f <= h => self.apply_due_faults(f),
                (Some(f), None) => self.apply_due_faults(f),
                (None, Some(h)) | (Some(_), Some(h)) => {
                    self.heartbeat_round(h);
                    self.heartbeat_due = h + self.ft.heartbeat_interval;
                }
                (None, None) => break,
            }
        }
        let ids = self.network.switch_ids();
        let mut outbound = Vec::new();
        for id in ids {
            if !self.network.is_up(id) {
                continue;
            }
            let Some(soil) = self.soils.get_mut(&id) else {
                continue;
            };
            let switch = self.network.switch_mut(id).expect("switch exists");
            let report = soil.advance(to, switch);
            self.counters.seed_errors.add(report.errors.len() as u64);
            outbound.extend(report.messages);
        }
        self.now = to;
        outbound.extend(self.process_recovery());
        self.route(outbound);
    }

    /// Capacities the planner may use right now: up, reachable,
    /// non-fenced switches at their *effective* (PCIe-degraded)
    /// resources.
    fn live_capacities(&self) -> Vec<(SwitchId, Resources)> {
        self.network
            .switch_ids()
            .into_iter()
            .filter(|id| {
                self.network.is_up(*id)
                    && self.network.is_reachable(*id)
                    && !self.fenced.contains(id)
                    && !self.cordoned.contains(id)
            })
            .map(|id| {
                let sw = self.network.switch(id).expect("switch exists");
                (id, sw.effective_resources())
            })
            .collect()
    }

    /// Applies every scheduled fault due at or before `at`.
    fn apply_due_faults(&mut self, at: Time) {
        for event in self.injector.take_due(at) {
            self.apply_fault(event.at, event.kind);
        }
    }

    fn apply_fault(&mut self, at: Time, kind: FaultKind) {
        let at_ns = at.as_nanos();
        match kind {
            FaultKind::SwitchCrash { switch } => {
                if !self.network.is_up(switch) {
                    return;
                }
                self.network.set_switch_up(switch, false);
                // The soil runtime dies with the switch: every seed on it
                // is lost along with its un-checkpointed state.
                self.soils.remove(&switch);
                self.down_since.entry(switch).or_insert(at);
                self.telemetry.emit_with(|| Event::SwitchCrashed {
                    at_ns,
                    switch: switch.0,
                });
            }
            FaultKind::SwitchRestart { switch } => {
                if self.network.is_up(switch) {
                    return;
                }
                self.network.set_switch_up(switch, true);
                let mut soil = Soil::new(switch, self.soil_config);
                soil.set_telemetry(self.telemetry.clone());
                self.soils.insert(switch, soil);
                self.missed.remove(&switch);
                self.telemetry.emit_with(|| Event::SwitchRestarted {
                    at_ns,
                    switch: switch.0,
                });
            }
            FaultKind::LinkDown { a, b } => {
                self.network.set_link_up(a, b, false);
                self.telemetry.emit_with(|| Event::LinkDown {
                    at_ns,
                    a: a.0,
                    b: b.0,
                });
            }
            FaultKind::LinkUp { a, b } => {
                self.network.set_link_up(a, b, true);
                self.telemetry.emit_with(|| Event::LinkUp {
                    at_ns,
                    a: a.0,
                    b: b.0,
                });
            }
            FaultKind::ControlLoss { switch, spec } => match switch {
                Some(sw) => {
                    self.switch_loss
                        .insert(sw, LossModel::new(spec, LOSS_SEED_BASE ^ (sw.0 as u64 + 1)));
                }
                None => self.global_loss = Some(LossModel::new(spec, LOSS_SEED_BASE)),
            },
            FaultKind::ControlHeal { switch } => match switch {
                Some(sw) => {
                    self.switch_loss.remove(&sw);
                }
                None => self.global_loss = None,
            },
            FaultKind::PcieDegrade { switch, factor } => {
                let Some(sw) = self.network.switch_mut(switch) else {
                    return;
                };
                sw.pcie_mut().set_degradation(factor);
                // Graceful degradation: shed lowest-priority seeds until
                // the surviving polling rate fits the degraded bus; shed
                // seeds re-enter placement through the recovery queue.
                let budget = sw.effective_resources().get(ResourceKind::PciePoll);
                let shed = match self.soils.get_mut(&switch) {
                    Some(soil) => soil.shed_over_poll_budget(budget, at, sw),
                    None => Vec::new(),
                };
                for s in shed {
                    let key = self
                        .seed_ids
                        .iter()
                        .find(|(k, sid)| {
                            **sid == s.seed
                                && self.seeder.location_of(k).map(|(n, _)| n) == Some(switch)
                        })
                        .map(|(k, _)| k.clone());
                    let Some(key) = key else { continue };
                    self.seed_ids.remove(&key);
                    self.seeder.forget(&key);
                    self.checkpoints.remove(&key);
                    self.recovery.insert(
                        key,
                        RecoveryItem {
                            snapshot: Some(s.snapshot),
                            lost_at: at,
                            attempts: 0,
                            next_at: at,
                        },
                    );
                }
            }
            FaultKind::PcieRestore { switch } => {
                if let Some(sw) = self.network.switch_mut(switch) {
                    sw.pcie_mut().set_degradation(1.0);
                }
            }
        }
    }

    /// One heartbeat round: reachable soils checkpoint their seeds (and
    /// reveal state loss after a fast restart); unreachable switches
    /// accumulate misses until the detector declares them failed and
    /// orphans their seeds.
    fn heartbeat_round(&mut self, at: Time) {
        self.counters.heartbeats.inc();
        let placements: BTreeMap<SeedKey, SwitchId> = self
            .seeder
            .placements()
            .map(|(k, (n, _))| (k.clone(), *n))
            .collect();
        for id in self.network.switch_ids() {
            let alive = self.network.is_up(id) && self.network.is_reachable(id);
            if alive {
                // Reachable soils beacon over the real wire in TCP mode.
                if let Some(bridge) = &self.transport {
                    bridge.heartbeat(id.0, at.as_nanos());
                }
                self.missed.remove(&id);
                if self.fenced.remove(&id) {
                    self.kill_stale_seeds(id, at, &placements);
                }
                for (key, _) in placements.iter().filter(|(_, n)| **n == id) {
                    let snap = self
                        .seed_ids
                        .get(key)
                        .and_then(|sid| self.soils.get(&id).and_then(|soil| soil.seed(*sid)))
                        .map(|inst| inst.snapshot());
                    match snap {
                        Some(snap) => {
                            self.checkpoints.insert(key.clone(), snap);
                        }
                        // The soil answers heartbeats but no longer hosts
                        // the seed: the switch restarted cold before the
                        // detector fired. Recover now.
                        None => self.orphan_seed(key.clone(), id, at),
                    }
                }
                self.down_since.remove(&id);
            } else {
                let missed = {
                    let m = self.missed.entry(id).or_insert(0);
                    *m += 1;
                    *m
                };
                if missed >= self.ft.miss_threshold && !self.fenced.contains(&id) {
                    self.fenced.insert(id);
                    let at_ns = at.as_nanos();
                    self.telemetry.emit_with(|| Event::SwitchDeclaredFailed {
                        at_ns,
                        switch: id.0,
                        missed: missed as u64,
                    });
                    for key in self.seeder.evict_switch(id) {
                        self.orphan_seed(key, id, at);
                    }
                }
            }
        }
    }

    /// Kills seeds still running on a switch that rejoined after being
    /// declared failed: their replacements live elsewhere, so keeping
    /// the originals would double-run the task (split brain).
    fn kill_stale_seeds(
        &mut self,
        id: SwitchId,
        at: Time,
        placements: &BTreeMap<SeedKey, SwitchId>,
    ) {
        let valid: BTreeSet<SeedId> = placements
            .iter()
            .filter(|(_, n)| **n == id)
            .filter_map(|(k, _)| self.seed_ids.get(k).copied())
            .collect();
        let Some(soil) = self.soils.get_mut(&id) else {
            return;
        };
        let stale: Vec<SeedId> = soil
            .seeds()
            .map(|s| s.id)
            .filter(|sid| !valid.contains(sid))
            .collect();
        if stale.is_empty() {
            return;
        }
        let switch = self.network.switch_mut(id).expect("switch exists");
        for sid in stale {
            let _ = soil.undeploy_with_reason(sid, UndeployReason::Fenced, at, switch);
        }
    }

    /// Moves one seed into the recovery queue: drops its placement
    /// bookkeeping, grabs the last checkpoint and emits
    /// [`Event::SeedOrphaned`].
    fn orphan_seed(&mut self, key: SeedKey, from: SwitchId, at: Time) {
        self.seeder.forget(&key);
        let sid = self.seed_ids.remove(&key);
        let snapshot = self.checkpoints.remove(&key);
        let lost_at = self.down_since.get(&from).copied().unwrap_or(at);
        let (at_ns, switch, seed, task, has_snapshot) = (
            at.as_nanos(),
            from.0,
            sid.map_or(0, |s| s.0),
            key.task.clone(),
            snapshot.is_some(),
        );
        self.telemetry.emit_with(|| Event::SeedOrphaned {
            at_ns,
            switch,
            seed,
            task,
            has_snapshot,
        });
        self.recovery.insert(
            key,
            RecoveryItem {
                snapshot,
                lost_at,
                attempts: 0,
                next_at: at,
            },
        );
    }

    /// Attempts to re-place every due orphaned/shed seed through the
    /// regular placement heuristic. Seeds that cannot be placed yet back
    /// off exponentially; after `max_recovery_attempts` recovery is
    /// abandoned with an event.
    fn process_recovery(&mut self) -> Vec<OutboundMessage> {
        let now = self.now;
        let due: Vec<SeedKey> = self
            .recovery
            .iter()
            .filter(|(_, r)| r.next_at <= now)
            .map(|(k, _)| k.clone())
            .collect();
        if due.is_empty() {
            return Vec::new();
        }
        let caps = self.live_capacities();
        // Recovery follows host loss: the fenced switches are this
        // round's actual delta (they are already absent from `caps`, so
        // the solver purges their memo entries either way).
        let fenced: Vec<SwitchId> = self.fenced.iter().copied().collect();
        let plan = self.seeder.plan_delta(&caps, &fenced).ok();
        let mut outbound = Vec::new();
        for key in due {
            let Some(mut item) = self.recovery.remove(&key) else {
                continue;
            };
            item.attempts += 1;
            let slot = plan.as_ref().and_then(|p| {
                p.actions.iter().find_map(|a| match a {
                    PlannedAction::Deploy { key: k, to, alloc } if *k == key => Some((*to, *alloc)),
                    _ => None,
                })
            });
            let deployed = slot.and_then(|(to, alloc)| {
                self.try_recover_deploy(&key, to, alloc, &item, now, &mut outbound)
            });
            if deployed.is_some() {
                continue;
            }
            if item.attempts >= self.ft.max_recovery_attempts {
                let (at_ns, task) = (now.as_nanos(), key.task.clone());
                let seed = key.seed as u64;
                let attempts = item.attempts as u64;
                self.telemetry.emit_with(|| Event::RecoveryAbandoned {
                    at_ns,
                    task,
                    seed,
                    attempts,
                });
                // Giving up on re-placement must not erase the seed's
                // last known state: park the snapshot back in the
                // checkpoint store so it stays exportable (and restores
                // if the seed is ever planted again).
                if let Some(snap) = item.snapshot.take() {
                    self.checkpoints.insert(key, snap);
                }
                continue;
            }
            // Exponential backoff: base × 2^(attempts-1).
            let factor = 1u64 << (item.attempts - 1).min(16);
            item.next_at = now + Dur::from_nanos(self.ft.recovery_backoff.as_nanos() * factor);
            self.recovery.insert(key, item);
        }
        outbound
    }

    /// One recovery deployment: cold deploy, then restore the checkpoint
    /// when one exists. Returns `None` when the deploy failed (the
    /// caller backs off and retries).
    fn try_recover_deploy(
        &mut self,
        key: &SeedKey,
        to: SwitchId,
        alloc: Resources,
        item: &RecoveryItem,
        now: Time,
        outbound: &mut Vec<OutboundMessage>,
    ) -> Option<SeedId> {
        let def = self.seeder.machine_of(key)?;
        let soil = self.soils.get_mut(&to)?;
        let switch = self.network.switch_mut(to).expect("switch exists");
        let (sid, report) = soil.deploy(def, &key.task, alloc, now, switch).ok()?;
        // A stale or mismatched checkpoint falls back to the cold start
        // the deploy already performed.
        let cold_start = match &item.snapshot {
            Some(snap) => soil.restore_seed(sid, snap).is_err(),
            None => true,
        };
        self.counters.seed_errors.add(report.errors.len() as u64);
        outbound.extend(report.messages);
        self.seed_ids.insert(key.clone(), sid);
        self.seeder.commit(&PlannedAction::Deploy {
            key: key.clone(),
            to,
            alloc,
        });
        let mttr = now.since(item.lost_at);
        self.counters.recoveries.inc();
        self.counters.mttr_us.record(mttr.as_nanos() / 1_000);
        let (at_ns, switch_id, seed, task, attempts) = (
            now.as_nanos(),
            to.0,
            sid.0,
            key.task.clone(),
            item.attempts as u64,
        );
        let mttr_ns = mttr.as_nanos();
        self.telemetry.emit_with(|| Event::SeedRecovered {
            at_ns,
            switch: switch_id,
            seed,
            task,
            cold_start,
            mttr_ns,
            attempts,
        });
        Some(sid)
    }

    /// Seeds currently waiting in the recovery queue.
    pub fn recovery_pending(&self) -> usize {
        self.recovery.len()
    }

    /// Switches currently declared failed by the heartbeat detector.
    pub fn fenced_switches(&self) -> Vec<SwitchId> {
        self.fenced.iter().copied().collect()
    }

    /// Registers an already-compiled task and replans — the deployment
    /// path for programs compiled out-of-band (farmd's `SubmitProgram`
    /// compiles server-side to report full diagnostics first).
    ///
    /// # Errors
    ///
    /// Placement failures or soil errors while executing the plan.
    pub fn deploy_compiled(&mut self, task: CompiledTask) -> Result<Plan, Error> {
        self.seeder.register_task(task);
        self.replan()
    }

    /// Administratively cordons a switch — healthy, but the planner may
    /// no longer place on it — and replans so movable seeds migrate off.
    /// Returns the plan and the number of seeds evacuated (seeds pinned
    /// to the switch by `place all` / explicit constraints cannot move
    /// and are dropped or kept by the planner as usual).
    ///
    /// A planner failure rolls the cordon back, leaving the farm as it
    /// was.
    ///
    /// # Errors
    ///
    /// Planner or soil failures while evacuating.
    pub fn drain(&mut self, switch: SwitchId) -> Result<(Plan, usize), Error> {
        self.cordoned.insert(switch);
        match self.replan_with(&[switch]) {
            Ok(plan) => {
                let evacuated = plan
                    .actions
                    .iter()
                    .filter(|a| matches!(a, PlannedAction::Migrate { from, .. } if *from == switch))
                    .count();
                Ok((plan, evacuated))
            }
            Err(e) => {
                self.cordoned.remove(&switch);
                Err(e)
            }
        }
    }

    /// Lifts a cordon and replans so the switch is usable again.
    ///
    /// # Errors
    ///
    /// Planner or soil failures while executing the plan.
    pub fn uncordon(&mut self, switch: SwitchId) -> Result<Plan, Error> {
        self.cordoned.remove(&switch);
        self.replan_with(&[switch])
    }

    /// Switches currently cordoned by [`Farm::drain`].
    pub fn cordoned_switches(&self) -> Vec<SwitchId> {
        self.cordoned.iter().copied().collect()
    }

    /// Control-plane inventory: one [`SeedStatus`] per placed seed, in
    /// key order.
    pub fn seed_statuses(&self) -> Vec<SeedStatus> {
        let mut out: Vec<SeedStatus> = self
            .seeder
            .placements()
            .map(|(key, (switch, alloc))| {
                let inst = self
                    .seed_ids
                    .get(key)
                    .and_then(|sid| self.soils.get(switch).and_then(|s| s.seed(*sid)));
                let (machine, state) = match inst {
                    Some(i) => (i.machine_name().to_string(), i.state().to_string()),
                    // Placed per the seeder but not live on the soil: the
                    // host crashed and recovery has not landed it yet.
                    None => (String::new(), "lost".to_string()),
                };
                SeedStatus {
                    key: key.clone(),
                    machine,
                    switch: *switch,
                    state,
                    alloc: *alloc,
                }
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// The variable bindings of one live seed, rendered as strings in
    /// name order (the `DescribeSeed` control surface).
    pub fn seed_vars(&self, key: &SeedKey) -> Option<Vec<(String, String)>> {
        let (switch, _) = self.seeder.location_of(key)?;
        let sid = self.seed_ids.get(key)?;
        let inst = self.soils.get(&switch)?.seed(*sid)?;
        let mut vars: Vec<(String, String)> = inst
            .snapshot()
            .vars
            .into_iter()
            .map(|(name, v)| (name, v.to_string()))
            .collect();
        vars.sort();
        Some(vars)
    }

    /// Checkpoints every live seed into the snapshot store the heartbeat
    /// rounds also feed. Returns the number captured.
    pub fn checkpoint_seeds(&mut self) -> usize {
        let placements: Vec<(SeedKey, SwitchId)> = self
            .seeder
            .placements()
            .map(|(k, (sw, _))| (k.clone(), *sw))
            .collect();
        let mut captured = 0;
        for (key, sw) in placements {
            let snap = self
                .seed_ids
                .get(&key)
                .and_then(|sid| self.soils.get(&sw).and_then(|soil| soil.seed(*sid)))
                .map(|inst| inst.snapshot());
            if let Some(snap) = snap {
                self.checkpoints.insert(key, snap);
                captured += 1;
            }
        }
        captured
    }

    /// The checkpoint store as portable entries, sorted by the key's
    /// display form — what the daemon persists into a checkpoint file.
    ///
    /// Seeds sitting in the recovery queue carry their last checkpoint
    /// with them (it left the store when they were orphaned); those are
    /// exported too, so a daemon that dies mid-recovery still has every
    /// crashed seed's state in its final file.
    pub fn export_checkpoints(&self) -> Vec<(SeedKey, SeedSnapshot)> {
        let mut out: Vec<(SeedKey, SeedSnapshot)> = self
            .checkpoints
            .iter()
            .map(|(k, s)| (k.clone(), s.clone()))
            .collect();
        out.extend(self.recovery.iter().filter_map(|(k, item)| {
            if self.checkpoints.contains_key(k) {
                return None;
            }
            item.snapshot.as_ref().map(|s| (k.clone(), s.clone()))
        }));
        out.sort_by_cached_key(|(k, _)| k.to_string());
        out
    }

    /// Loads checkpoint entries (e.g. parsed back from a checkpoint
    /// file) into the store [`Farm::restore_seeds`] reads, replacing
    /// same-key entries. Returns how many were loaded.
    pub fn import_checkpoints(
        &mut self,
        entries: impl IntoIterator<Item = (SeedKey, SeedSnapshot)>,
    ) -> usize {
        let mut loaded = 0;
        for (key, snap) in entries {
            self.checkpoints.insert(key, snap);
            loaded += 1;
        }
        loaded
    }

    /// Rolls every live seed back to its last checkpoint (from heartbeat
    /// rounds or [`Farm::checkpoint_seeds`]). Seeds without a matching
    /// checkpoint keep running untouched. Returns the number restored.
    pub fn restore_seeds(&mut self) -> usize {
        let placements: Vec<(SeedKey, SwitchId)> = self
            .seeder
            .placements()
            .map(|(k, (sw, _))| (k.clone(), *sw))
            .collect();
        let mut restored = 0;
        for (key, sw) in placements {
            let Some(snap) = self.checkpoints.get(&key) else {
                continue;
            };
            let Some(sid) = self.seed_ids.get(&key).copied() else {
                continue;
            };
            if let Some(soil) = self.soils.get_mut(&sw) {
                if soil.restore_seed(sid, snap).is_ok() {
                    restored += 1;
                }
            }
        }
        restored
    }

    /// Rolls the live seeds of exactly one task back to their imported
    /// or captured checkpoints, leaving every other task untouched —
    /// the landing half of a snapshot-carrying deploy (a federation
    /// migration deploys the program on the target pod, imports the
    /// travelling snapshots, then restores only that task). Returns the
    /// number restored.
    pub fn restore_seeds_for(&mut self, task: &str) -> usize {
        let placements: Vec<(SeedKey, SwitchId)> = self
            .seeder
            .placements()
            .filter(|(k, _)| k.task == task)
            .map(|(k, (sw, _))| (k.clone(), *sw))
            .collect();
        let mut restored = 0;
        for (key, sw) in placements {
            let Some(snap) = self.checkpoints.get(&key) else {
                continue;
            };
            let Some(sid) = self.seed_ids.get(&key).copied() else {
                continue;
            };
            if let Some(soil) = self.soils.get_mut(&sw) {
                if soil.restore_seed(sid, snap).is_ok() {
                    restored += 1;
                }
            }
        }
        restored
    }

    /// Replaces the scheduled fault plan (events already handed out are
    /// not replayed).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = FaultInjector::new(plan);
    }

    /// Rolls the control-channel loss model for one harvester delivery
    /// (the per-switch model wins over the global one). Dropped sends
    /// retry up to `delivery_retries` times; after that the report is
    /// dead-lettered. Returns the copies to deliver (0 = dead-lettered)
    /// plus the channel's added delay.
    fn roll_delivery(&mut self, from: SwitchId, task: &str) -> (u8, Dur) {
        let Some(model) = self
            .switch_loss
            .get_mut(&from)
            .or(self.global_loss.as_mut())
        else {
            return (1, Dur::ZERO);
        };
        let mut attempt: u64 = 0;
        loop {
            match model.roll() {
                Delivery::Delivered { copies } => return (copies, model.delay()),
                Delivery::Dropped => {
                    attempt += 1;
                    let at_ns = self.now.as_nanos();
                    let task = task.to_string();
                    if attempt > self.ft.delivery_retries as u64 {
                        self.counters.dead_letters.inc();
                        self.telemetry.emit_with(|| Event::DeliveryDeadLettered {
                            at_ns,
                            from_switch: from.0,
                            task,
                            attempts: attempt,
                        });
                        return (0, Dur::ZERO);
                    }
                    self.counters.delivery_retries.inc();
                    self.telemetry.emit_with(|| Event::DeliveryRetried {
                        at_ns,
                        from_switch: from.0,
                        task,
                        attempt,
                    });
                }
            }
        }
    }

    /// Runs workloads against the fabric until `until`, stepping traffic
    /// and triggers every `tick`.
    pub fn run(&mut self, workloads: &mut [&mut dyn Workload], until: Time, tick: Dur) {
        assert!(!tick.is_zero(), "tick must be positive");
        while self.now < until {
            let step_end = (self.now + tick).min(until);
            let dt = step_end.since(self.now);
            let mut events = Vec::new();
            for w in workloads.iter_mut() {
                events.extend(w.advance(self.now, dt));
            }
            self.apply_traffic(&events);
            self.advance(step_end);
        }
    }

    /// Routes outbound messages to harvesters and seeds, applying
    /// harvester commands; message chains are bounded per step.
    fn route(&mut self, mut messages: Vec<OutboundMessage>) {
        for _round in 0..MAX_ROUTING_ROUNDS {
            if messages.is_empty() {
                return;
            }
            let mut next = Vec::new();
            for msg in messages.drain(..) {
                // Under TCP transport the delivery rides the real wire
                // first — encoded, sent over loopback, decoded — and the
                // decoded copy is what gets routed. The codec is
                // byte-exact, so both transports route equal messages.
                let msg = match &self.transport {
                    Some(bridge) => bridge.ship_message(msg),
                    None => msg,
                };
                match &msg.to {
                    Endpoint::Harvester => {
                        // Harvester reports cross the (possibly impaired)
                        // control channel: drops retry up to the budget
                        // then dead-letter; duplication delivers twice.
                        let (copies, channel_delay) =
                            self.roll_delivery(msg.from_switch, &msg.task);
                        if copies == 0 {
                            continue;
                        }
                        let latency = msg.latency + channel_delay;
                        for _ in 0..copies {
                            self.counters.collector_messages.inc();
                            self.counters.collector_bytes.add(msg.bytes);
                            self.counters
                                .detection_latency_us
                                .record(latency.as_nanos() / 1_000);
                            let at_ns = self.now.as_nanos();
                            self.telemetry.emit_with(|| Event::HarvesterReport {
                                at_ns,
                                task: msg.task.clone(),
                                from_switch: msg.from_switch.0,
                                bytes: msg.bytes,
                                latency_ns: latency.as_nanos(),
                            });
                            if let Some(h) = self.harvesters.get_mut(&msg.task) {
                                let mut ctx = HarvesterCtx::new(self.now);
                                h.on_message(&msg, &mut ctx);
                                for cmd in ctx.commands {
                                    next.extend(self.apply_command(cmd));
                                }
                            }
                        }
                    }
                    Endpoint::Machine { name, at } => {
                        self.counters.seed_messages.inc();
                        self.counters.seed_bytes.add(msg.bytes);
                        let targets: Vec<SwitchId> = match at {
                            Some(sw) => vec![*sw],
                            None => self
                                .network
                                .switch_ids()
                                .into_iter()
                                .filter(|id| *id != msg.from_switch)
                                .collect(),
                        };
                        for swid in targets {
                            if let Some(soil) = self.soils.get_mut(&swid) {
                                let switch = self.network.switch_mut(swid).expect("switch exists");
                                let report = soil.deliver_to_machine(
                                    name,
                                    Some(&msg.from_machine),
                                    &msg.value,
                                    self.now,
                                    switch,
                                );
                                self.counters.seed_errors.add(report.errors.len() as u64);
                                next.extend(report.messages);
                            }
                        }
                    }
                }
            }
            messages = next;
        }
        if !messages.is_empty() {
            // Routing chain exceeded the bound: account and drop.
            self.counters.seed_errors.add(messages.len() as u64);
        }
    }

    fn apply_command(&mut self, cmd: HarvesterCommand) -> Vec<OutboundMessage> {
        match cmd {
            HarvesterCommand::SendToMachine { machine, at, value } => {
                let (machine, at, value) = match &self.transport {
                    Some(bridge) => bridge.ship_directive(machine, at, value),
                    None => (machine, at, value),
                };
                self.counters.control_messages.inc();
                self.counters
                    .control_bytes
                    .add(farm_soil::soil::value_bytes(&value));
                let targets: Vec<SwitchId> = match at {
                    Some(sw) => vec![sw],
                    None => self.network.switch_ids(),
                };
                let mut out = Vec::new();
                for swid in targets {
                    if let Some(soil) = self.soils.get_mut(&swid) {
                        let switch = self.network.switch_mut(swid).expect("switch exists");
                        let report =
                            soil.deliver_to_machine(&machine, None, &value, self.now, switch);
                        self.counters.seed_errors.add(report.errors.len() as u64);
                        out.extend(report.messages);
                    }
                }
                out
            }
        }
    }
}

/// Synthesizes a sampled packet from a flow-level traffic event. TCP
/// flows with small average packets are treated as connection attempts
/// (SYN) — the granularity the probe-based Tab. I tasks need.
fn sample_packet(e: &TrafficEvent) -> PacketRecord {
    let avg = e.bytes.checked_div(e.packets).unwrap_or(e.bytes);
    let syn = e.flow.proto == Proto::Tcp && avg <= 128;
    PacketRecord {
        flow: e.flow,
        len: avg.min(u32::MAX as u64) as u32,
        syn,
        fin: false,
        ack: false,
    }
}

/// Utility value helpers for external assignments.
pub fn external(pairs: &[(&str, Value)]) -> ConstEnv {
    farm_almanac::compile::externals(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::CollectingHarvester;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
    use farm_telemetry::RingBufferSink;

    fn fabric() -> Topology {
        Topology::spine_leaf(
            2,
            3,
            SwitchModel::accton_as7712(),
            SwitchModel::accton_as5712(),
        )
    }

    #[test]
    fn deploys_hh_task_on_every_switch() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let plan = farm
            .deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(plan.actions.len(), 5);
        assert_eq!(farm.deployed_seeds(), 5);
        for id in farm.network().switch_ids() {
            assert_eq!(farm.soil(id).unwrap().num_seeds(), 1);
        }
    }

    #[test]
    fn end_to_end_hh_detection() {
        let mut farm = Farm::builder(fabric())
            .with_harvester("hh", Box::new(CollectingHarvester::new()))
            .build();
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let mut hh = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 16,
            hh_ratio: 0.1,
            ..Default::default()
        });
        farm.run(&mut [&mut hh], Time::from_millis(50), Dur::from_millis(1));
        let h: &CollectingHarvester = farm.harvester("hh").unwrap();
        assert!(!h.received.is_empty(), "harvester must receive HH reports");
        // Detection comes from the leaf carrying the traffic.
        assert!(h.received.iter().any(|m| m.from_switch == leaf));
        assert!(farm.metrics().collector_bytes > 0);
        // The compat view is computed from the registry: both must agree.
        let snap = farm.telemetry().snapshot();
        assert_eq!(
            farm.metrics().collector_bytes,
            snap.counter("farm.collector_bytes")
        );
        let detection = snap.histogram("detection.latency_us").unwrap();
        assert_eq!(detection.count, farm.metrics().collector_messages);
    }

    #[test]
    fn removing_a_task_cleans_up() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(farm.deployed_seeds(), 5);
        farm.remove_task("hh").unwrap();
        assert_eq!(farm.deployed_seeds(), 0);
        for id in farm.network().switch_ids() {
            assert_eq!(farm.soil(id).unwrap().num_seeds(), 0);
        }
    }

    #[test]
    fn two_tasks_coexist() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        farm.deploy_task(
            "traffic-change",
            farm_almanac::programs::TRAFFIC_CHANGE,
            &BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(farm.deployed_seeds(), 10);
        // Both tasks poll `port ANY`: the soils should aggregate.
        farm.advance(Time::from_millis(2000));
        let saved: u64 = farm
            .network()
            .switch_ids()
            .iter()
            .map(|id| farm.soil(*id).unwrap().stats().polls_saved)
            .sum();
        assert!(saved > 0, "co-located tasks must share ASIC polls");
    }

    #[test]
    fn external_assignment_reaches_seeds() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let mut ext = BTreeMap::new();
        ext.insert("HH".to_string(), external(&[("threshold", Value::Int(77))]));
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &ext)
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let soil = farm.soil(leaf).unwrap();
        let seed = soil.seeds().next().unwrap();
        assert_eq!(seed.var("threshold"), Some(&Value::Int(77)));
    }

    #[test]
    fn builder_sinks_see_lifecycle_and_replan_events() {
        let events = Arc::new(RingBufferSink::new(4096));
        let mut farm = Farm::builder(fabric()).with_sink(events.clone()).build();
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let seen = events.events();
        assert_eq!(
            seen.iter()
                .filter(|e| matches!(e, Event::SeedDeployed { .. }))
                .count(),
            5
        );
        assert!(seen.iter().any(|e| matches!(
            e,
            Event::ReplanCompleted {
                outcome: ReplanOutcome::Full,
                ..
            }
        )));
    }

    /// One movable seed: `place any` gives the planner every switch as a
    /// candidate, so a cordon can actually evacuate it.
    const ROVER: &str = "machine M { place any; state s { } }";

    #[test]
    fn drain_evacuates_movable_seeds() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("rover", ROVER, &BTreeMap::new()).unwrap();
        assert_eq!(farm.deployed_seeds(), 1);
        let home = farm.seed_statuses()[0].switch;
        let (_, evacuated) = farm.drain(home).unwrap();
        assert_eq!(evacuated, 1, "the seed must migrate off the cordon");
        let status = &farm.seed_statuses()[0];
        assert_ne!(status.switch, home);
        assert_eq!(status.state, "s");
        assert_eq!(farm.cordoned_switches(), vec![home]);
        farm.uncordon(home).unwrap();
        assert!(farm.cordoned_switches().is_empty());
        let snap = farm.telemetry().snapshot();
        // Deploy + drain + uncordon = three timed replan rounds.
        assert!(snap.histogram("farm.replan_us").unwrap().count >= 3);
    }

    #[test]
    fn checkpoint_and_restore_cover_live_seeds() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(farm.checkpoint_seeds(), 5);
        assert_eq!(farm.restore_seeds(), 5);
        let vars = farm
            .seed_vars(&farm.seed_statuses()[0].key)
            .expect("live seed has vars");
        assert!(vars.iter().any(|(n, _)| n == "threshold"));
    }

    #[test]
    fn replan_emits_a_summary_event() {
        let events = Arc::new(RingBufferSink::new(4096));
        let mut farm = Farm::builder(fabric()).with_sink(events.clone()).build();
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let seen = events.events();
        assert!(seen.iter().any(|e| matches!(
            e,
            Event::ReplanSummary {
                deploys: 5,
                migrations: 0,
                undeploys: 0,
                ..
            }
        )));
    }

    #[test]
    fn sample_packet_flags_syns() {
        let e = TrafficEvent {
            switch: SwitchId(0),
            rx_port: None,
            tx_port: None,
            flow: farm_netsim::types::FlowKey::tcp(
                farm_netsim::types::Ipv4::new(1, 1, 1, 1),
                9,
                farm_netsim::types::Ipv4::new(2, 2, 2, 2),
                22,
            ),
            bytes: 64,
            packets: 1,
        };
        assert!(sample_packet(&e).syn);
        let big = TrafficEvent {
            bytes: 1500 * 10,
            packets: 10,
            ..e
        };
        assert!(!sample_packet(&big).syn);
    }
}
