//! The `Farm` facade: the whole framework wired together.
//!
//! Owns the simulated [`Network`], one [`Soil`] per switch, the
//! [`Seeder`] and the per-task harvesters, and drives everything on
//! virtual time: traffic application, probe sampling, trigger scheduling,
//! message routing (seed ↔ seed and seed ↔ harvester), harvester
//! commands, and placement (re)optimization with live migrations.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use farm_almanac::analysis::ConstEnv;
use farm_almanac::compile::compile_task;
use farm_almanac::value::{PacketRecord, Value};
use farm_netsim::controller::SdnController;
use farm_netsim::network::{Network, TrafficEvent};
use farm_netsim::switch::Resources;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::Workload;
use farm_netsim::types::{Proto, SwitchId};
use farm_soil::{Endpoint, OutboundMessage, SeedId, Soil, SoilConfig};

use crate::harvester::{Harvester, HarvesterCommand, HarvesterCtx};
use crate::metrics::Metrics;
use crate::seeder::{PlannedAction, Plan, SeedKey, Seeder};

/// Framework-level failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmError(pub String);

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "farm error: {}", self.0)
    }
}

impl std::error::Error for FarmError {}

impl From<farm_almanac::AlmanacError> for FarmError {
    fn from(e: farm_almanac::AlmanacError) -> Self {
        FarmError(e.to_string())
    }
}

impl From<farm_soil::SoilError> for FarmError {
    fn from(e: farm_soil::SoilError) -> Self {
        FarmError(e.to_string())
    }
}

impl From<String> for FarmError {
    fn from(e: String) -> Self {
        FarmError(e)
    }
}

/// Framework configuration.
#[derive(Debug, Clone, Default)]
pub struct FarmConfig {
    /// Soil configuration applied to every switch.
    pub soil: SoilConfig,
}

/// Maximum message-routing rounds per step (seed→harvester→seed→… chains).
const MAX_ROUTING_ROUNDS: usize = 8;

/// The assembled FARM framework over a simulated fabric.
pub struct Farm {
    network: Network,
    soils: HashMap<SwitchId, Soil>,
    seeder: Seeder,
    seed_ids: HashMap<SeedKey, SeedId>,
    harvesters: HashMap<String, Box<dyn Harvester>>,
    now: Time,
    metrics: Metrics,
}

impl Farm {
    /// Builds the framework over a topology.
    pub fn new(topology: Topology, config: FarmConfig) -> Farm {
        let network = Network::new(topology);
        let soils = network
            .switch_ids()
            .into_iter()
            .map(|id| (id, Soil::new(id, config.soil)))
            .collect();
        Farm {
            network,
            soils,
            seeder: Seeder::new(),
            seed_ids: HashMap::new(),
            harvesters: HashMap::new(),
            now: Time::ZERO,
            metrics: Metrics::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access (test workloads, fault injection).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The soil running on a switch.
    pub fn soil(&self, id: SwitchId) -> Option<&Soil> {
        self.soils.get(&id)
    }

    /// The seeder (task catalog and placements).
    pub fn seeder(&self) -> &Seeder {
        &self.seeder
    }

    /// Mutable seeder access (heuristic options for ablations).
    pub fn seeder_mut(&mut self) -> &mut Seeder {
        &mut self.seeder
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Number of deployed seeds across the fabric.
    pub fn deployed_seeds(&self) -> usize {
        self.seed_ids.len()
    }

    /// Registers (or replaces) the harvester of a task.
    pub fn set_harvester(&mut self, task: impl Into<String>, h: Box<dyn Harvester>) {
        self.harvesters.insert(task.into(), h);
    }

    /// Typed view of a task's harvester.
    pub fn harvester<T: 'static>(&self, task: &str) -> Option<&T> {
        self.harvesters
            .get(task)
            .and_then(|h| h.as_any().downcast_ref::<T>())
    }

    /// Compiles and deploys an M&M task: parse/check/analyze the Almanac
    /// source, register it, and re-run global placement (which deploys
    /// the new seeds and may migrate existing ones).
    ///
    /// # Errors
    ///
    /// Compilation errors, placement failures, or soil deployment errors.
    pub fn deploy_task(
        &mut self,
        name: &str,
        source: &str,
        externals: &BTreeMap<String, ConstEnv>,
    ) -> Result<Plan, FarmError> {
        let task = {
            let ctl = SdnController::new(self.network.topology());
            compile_task(name, source, externals, &ctl)?
        };
        self.seeder.register_task(task);
        self.replan()
    }

    /// Compiles and registers several tasks, then runs a *single* global
    /// placement round — the efficient path for deploying fleets (the
    /// paper's seeder also batches: placement runs when inputs change,
    /// not per seed).
    ///
    /// # Errors
    ///
    /// Compilation or plan-execution failures.
    pub fn deploy_tasks(
        &mut self,
        tasks: &[(&str, &str, BTreeMap<String, ConstEnv>)],
    ) -> Result<Plan, FarmError> {
        for (name, source, externals) in tasks {
            let task = {
                let ctl = SdnController::new(self.network.topology());
                compile_task(name, source, externals, &ctl)?
            };
            self.seeder.register_task(task);
        }
        self.replan()
    }

    /// Removes a task: undeploys its seeds and drops its harvester.
    pub fn remove_task(&mut self, name: &str) -> Result<(), FarmError> {
        self.seeder.remove_task(name);
        self.harvesters.remove(name);
        let orphans: Vec<SeedKey> = self
            .seed_ids
            .keys()
            .filter(|k| k.task == name)
            .cloned()
            .collect();
        for key in orphans {
            if let Some(sid) = self.seed_ids.remove(&key) {
                if let Some((switch, _)) = self.seeder.location_of(&key) {
                    let _ = switch;
                }
                // Location is gone from the seeder after remove_task; scan
                // the soils instead.
                for (swid, soil) in self.soils.iter_mut() {
                    if soil.seed(sid).is_some() {
                        let switch = self
                            .network
                            .switch_mut(*swid)
                            .expect("switch exists for soil");
                        let _ = soil.undeploy(sid, switch);
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-runs global placement over every registered task and executes
    /// the resulting plan (deploy / migrate / realloc / undeploy).
    ///
    /// # Errors
    ///
    /// Soil-level failures while executing the plan.
    pub fn replan(&mut self) -> Result<Plan, FarmError> {
        let caps: Vec<(SwitchId, Resources)> = self
            .network
            .topology()
            .switches()
            .iter()
            .map(|n| (n.id, n.model.total_resources()))
            .collect();
        let plan = self.seeder.plan(&caps)?;
        let mut outbound = Vec::new();
        for action in &plan.actions {
            match action {
                PlannedAction::Deploy { key, to, alloc } => {
                    let def = self
                        .seeder
                        .machine_of(key)
                        .ok_or_else(|| FarmError(format!("unknown machine for {key}")))?;
                    let report = {
                        let soil = self.soils.get_mut(to).expect("soil per switch");
                        let switch = self.network.switch_mut(*to).expect("switch exists");
                        let (sid, report) =
                            soil.deploy(def, &key.task, *alloc, self.now, switch)?;
                        self.seed_ids.insert(key.clone(), sid);
                        report
                    };
                    self.metrics.seed_errors += report.errors.len() as u64;
                    outbound.extend(report.messages);
                }
                PlannedAction::Migrate {
                    key,
                    from,
                    to,
                    alloc,
                } => {
                    let def = self
                        .seeder
                        .machine_of(key)
                        .ok_or_else(|| FarmError(format!("unknown machine for {key}")))?;
                    let sid = *self
                        .seed_ids
                        .get(key)
                        .ok_or_else(|| FarmError(format!("{key} is not deployed")))?;
                    let snapshot = {
                        let soil = self.soils.get_mut(from).expect("soil per switch");
                        let switch = self.network.switch_mut(*from).expect("switch exists");
                        soil.undeploy(sid, switch)?
                    };
                    let bytes: u64 = snapshot
                        .vars
                        .iter()
                        .map(|(_, v)| farm_soil::soil::value_bytes(v))
                        .sum();
                    let new_sid = {
                        let soil = self.soils.get_mut(to).expect("soil per switch");
                        let switch = self.network.switch_mut(*to).expect("switch exists");
                        soil.import(Arc::clone(&def), &key.task, *alloc, &snapshot, self.now, switch)?
                    };
                    self.seed_ids.insert(key.clone(), new_sid);
                    self.metrics.migrations += 1;
                    self.metrics.migration_bytes += bytes;
                }
                PlannedAction::Realloc { key, alloc } => {
                    if let (Some(sid), Some((swid, _))) =
                        (self.seed_ids.get(key), self.seeder.location_of(key))
                    {
                        let soil = self.soils.get_mut(&swid).expect("soil per switch");
                        let switch = self.network.switch_mut(swid).expect("switch exists");
                        let report = soil.realloc(*sid, *alloc, self.now, switch)?;
                        self.metrics.seed_errors += report.errors.len() as u64;
                        outbound.extend(report.messages);
                    }
                }
                PlannedAction::Undeploy { key, from } => {
                    if let Some(sid) = self.seed_ids.remove(key) {
                        let soil = self.soils.get_mut(from).expect("soil per switch");
                        let switch = self.network.switch_mut(*from).expect("switch exists");
                        let _ = soil.undeploy(sid, switch)?;
                    }
                }
            }
            self.seeder.commit(action);
        }
        self.metrics.replans += 1;
        self.route(outbound);
        Ok(plan)
    }

    /// Applies traffic to the fabric and offers per-event samples to
    /// probe triggers.
    pub fn apply_traffic(&mut self, events: &[TrafficEvent]) {
        self.network.apply_traffic(events);
        let mut per_switch: HashMap<SwitchId, Vec<PacketRecord>> = HashMap::new();
        for e in events {
            per_switch
                .entry(e.switch)
                .or_default()
                .push(sample_packet(e));
        }
        let mut outbound = Vec::new();
        for (swid, pkts) in per_switch {
            if let Some(soil) = self.soils.get_mut(&swid) {
                let switch = self.network.switch_mut(swid).expect("switch exists");
                let report = soil.offer_packets(&pkts, self.now, switch);
                self.metrics.seed_errors += report.errors.len() as u64;
                outbound.extend(report.messages);
            }
        }
        self.route(outbound);
    }

    /// Advances virtual time to `to`: every soil fires its due triggers
    /// and resulting messages are routed.
    pub fn advance(&mut self, to: Time) {
        let ids = self.network.switch_ids();
        let mut outbound = Vec::new();
        for id in ids {
            let soil = self.soils.get_mut(&id).expect("soil per switch");
            let switch = self.network.switch_mut(id).expect("switch exists");
            let report = soil.advance(to, switch);
            self.metrics.seed_errors += report.errors.len() as u64;
            outbound.extend(report.messages);
        }
        self.now = to;
        self.route(outbound);
    }

    /// Runs workloads against the fabric until `until`, stepping traffic
    /// and triggers every `tick`.
    pub fn run(
        &mut self,
        workloads: &mut [&mut dyn Workload],
        until: Time,
        tick: Dur,
    ) {
        assert!(!tick.is_zero(), "tick must be positive");
        while self.now < until {
            let step_end = (self.now + tick).min(until);
            let dt = step_end.since(self.now);
            let mut events = Vec::new();
            for w in workloads.iter_mut() {
                events.extend(w.advance(self.now, dt));
            }
            self.apply_traffic(&events);
            self.advance(step_end);
        }
    }

    /// Routes outbound messages to harvesters and seeds, applying
    /// harvester commands; message chains are bounded per step.
    fn route(&mut self, mut messages: Vec<OutboundMessage>) {
        for _round in 0..MAX_ROUTING_ROUNDS {
            if messages.is_empty() {
                return;
            }
            let mut next = Vec::new();
            for msg in messages.drain(..) {
                match &msg.to {
                    Endpoint::Harvester => {
                        self.metrics.collector_messages += 1;
                        self.metrics.collector_bytes += msg.bytes;
                        if let Some(h) = self.harvesters.get_mut(&msg.task) {
                            let mut ctx = HarvesterCtx::new(self.now);
                            h.on_message(&msg, &mut ctx);
                            for cmd in ctx.commands {
                                next.extend(self.apply_command(cmd));
                            }
                        }
                    }
                    Endpoint::Machine { name, at } => {
                        self.metrics.seed_messages += 1;
                        self.metrics.seed_bytes += msg.bytes;
                        let targets: Vec<SwitchId> = match at {
                            Some(sw) => vec![*sw],
                            None => self
                                .network
                                .switch_ids()
                                .into_iter()
                                .filter(|id| *id != msg.from_switch)
                                .collect(),
                        };
                        for swid in targets {
                            if let Some(soil) = self.soils.get_mut(&swid) {
                                let switch =
                                    self.network.switch_mut(swid).expect("switch exists");
                                let report = soil.deliver_to_machine(
                                    name,
                                    Some(&msg.from_machine),
                                    &msg.value,
                                    self.now,
                                    switch,
                                );
                                self.metrics.seed_errors += report.errors.len() as u64;
                                next.extend(report.messages);
                            }
                        }
                    }
                }
            }
            messages = next;
        }
        if !messages.is_empty() {
            // Routing chain exceeded the bound: account and drop.
            self.metrics.seed_errors += messages.len() as u64;
        }
    }

    fn apply_command(&mut self, cmd: HarvesterCommand) -> Vec<OutboundMessage> {
        match cmd {
            HarvesterCommand::SendToMachine { machine, at, value } => {
                self.metrics.control_messages += 1;
                self.metrics.control_bytes += farm_soil::soil::value_bytes(&value);
                let targets: Vec<SwitchId> = match at {
                    Some(sw) => vec![sw],
                    None => self.network.switch_ids(),
                };
                let mut out = Vec::new();
                for swid in targets {
                    if let Some(soil) = self.soils.get_mut(&swid) {
                        let switch = self.network.switch_mut(swid).expect("switch exists");
                        let report =
                            soil.deliver_to_machine(&machine, None, &value, self.now, switch);
                        self.metrics.seed_errors += report.errors.len() as u64;
                        out.extend(report.messages);
                    }
                }
                out
            }
        }
    }
}

/// Synthesizes a sampled packet from a flow-level traffic event. TCP
/// flows with small average packets are treated as connection attempts
/// (SYN) — the granularity the probe-based Tab. I tasks need.
fn sample_packet(e: &TrafficEvent) -> PacketRecord {
    let avg = if e.packets > 0 { e.bytes / e.packets } else { e.bytes };
    let syn = e.flow.proto == Proto::Tcp && avg <= 128;
    PacketRecord {
        flow: e.flow,
        len: avg.min(u32::MAX as u64) as u32,
        syn,
        fin: false,
        ack: false,
    }
}

/// Utility value helpers for external assignments.
pub fn external(pairs: &[(&str, Value)]) -> ConstEnv {
    farm_almanac::compile::externals(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::CollectingHarvester;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};

    fn fabric() -> Topology {
        Topology::spine_leaf(
            2,
            3,
            SwitchModel::accton_as7712(),
            SwitchModel::accton_as5712(),
        )
    }

    #[test]
    fn deploys_hh_task_on_every_switch() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let plan = farm
            .deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(plan.actions.len(), 5);
        assert_eq!(farm.deployed_seeds(), 5);
        for id in farm.network().switch_ids() {
            assert_eq!(farm.soil(id).unwrap().num_seeds(), 1);
        }
    }

    #[test]
    fn end_to_end_hh_detection() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let mut hh = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 16,
            hh_ratio: 0.1,
            ..Default::default()
        });
        farm.run(
            &mut [&mut hh],
            Time::from_millis(50),
            Dur::from_millis(1),
        );
        let h: &CollectingHarvester = farm.harvester("hh").unwrap();
        assert!(
            !h.received.is_empty(),
            "harvester must receive HH reports"
        );
        // Detection comes from the leaf carrying the traffic.
        assert!(h.received.iter().any(|m| m.from_switch == leaf));
        assert!(farm.metrics().collector_bytes > 0);
    }

    #[test]
    fn removing_a_task_cleans_up() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        assert_eq!(farm.deployed_seeds(), 5);
        farm.remove_task("hh").unwrap();
        assert_eq!(farm.deployed_seeds(), 0);
        for id in farm.network().switch_ids() {
            assert_eq!(farm.soil(id).unwrap().num_seeds(), 0);
        }
    }

    #[test]
    fn two_tasks_coexist() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        farm.deploy_task(
            "traffic-change",
            farm_almanac::programs::TRAFFIC_CHANGE,
            &BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(farm.deployed_seeds(), 10);
        // Both tasks poll `port ANY`: the soils should aggregate.
        farm.advance(Time::from_millis(2000));
        let saved: u64 = farm
            .network()
            .switch_ids()
            .iter()
            .map(|id| farm.soil(*id).unwrap().stats().polls_saved)
            .sum();
        assert!(saved > 0, "co-located tasks must share ASIC polls");
    }

    #[test]
    fn external_assignment_reaches_seeds() {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let mut ext = BTreeMap::new();
        ext.insert("HH".to_string(), external(&[("threshold", Value::Int(77))]));
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &ext)
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let soil = farm.soil(leaf).unwrap();
        let seed = soil.seeds().next().unwrap();
        assert_eq!(seed.var("threshold"), Some(&Value::Int(77)));
    }

    #[test]
    fn sample_packet_flags_syns() {
        let e = TrafficEvent {
            switch: SwitchId(0),
            rx_port: None,
            tx_port: None,
            flow: farm_netsim::types::FlowKey::tcp(
                farm_netsim::types::Ipv4::new(1, 1, 1, 1),
                9,
                farm_netsim::types::Ipv4::new(2, 2, 2, 2),
                22,
            ),
            bytes: 64,
            packets: 1,
        };
        assert!(sample_packet(&e).syn);
        let big = TrafficEvent {
            bytes: 1500 * 10,
            packets: 10,
            ..e
        };
        assert!(!sample_packet(&big).syn);
    }
}
