//! The framework's unified error type.
//!
//! Everything that can fail at the `farm-core` boundary — Almanac
//! compilation, soil-level deployment, placement planning, plan
//! bookkeeping — surfaces as one structured [`Error`] enum instead of
//! the bare string wrappers the layers use internally. The enum is
//! `#[non_exhaustive]`: downstream matches need a wildcard arm, which
//! lets future PRs add failure classes without a breaking change.

use std::fmt;

use farm_almanac::AlmanacError;
use farm_soil::SoilError;

/// Framework-level failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Almanac compilation (parse, type-check, or analysis) failed.
    Compile(AlmanacError),
    /// A soil rejected a deploy, realloc, restore, or undeploy.
    Soil(SoilError),
    /// The placement planner could not build or solve its instance.
    Planner(String),
    /// A plan referenced a machine the task catalog does not know.
    UnknownMachine(String),
    /// A plan acted on a seed that is not currently deployed.
    NotDeployed(String),
}

/// Historical name of [`Error`]; kept so existing `FarmError` call
/// sites and `?` conversions keep compiling unchanged.
pub type FarmError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "farm error: {e}"),
            Error::Soil(e) => write!(f, "farm error: {e}"),
            Error::Planner(msg) => write!(f, "farm error: planner: {msg}"),
            Error::UnknownMachine(key) => {
                write!(f, "farm error: unknown machine for {key}")
            }
            Error::NotDeployed(key) => write!(f, "farm error: {key} is not deployed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Soil(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlmanacError> for Error {
    fn from(e: AlmanacError) -> Self {
        Error::Compile(e)
    }
}

impl From<SoilError> for Error {
    fn from(e: SoilError) -> Self {
        Error::Soil(e)
    }
}

impl From<String> for Error {
    fn from(e: String) -> Self {
        Error::Planner(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_carry_structured_causes() {
        let soil = SoilError::UnknownSeed(farm_soil::SeedId(7));
        let err: Error = soil.clone().into();
        assert_eq!(err, Error::Soil(soil));
        assert!(err.to_string().contains("unknown seed"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn planner_strings_convert() {
        let err: Error = String::from("no feasible switch").into();
        assert!(matches!(err, Error::Planner(_)));
        assert!(err.to_string().contains("planner"));
    }
}
