//! Framework-wide accounting: monitoring traffic, migrations, errors.

use serde::Serialize;

/// Cumulative metrics of a [`crate::farm::Farm`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Metrics {
    /// Messages delivered to harvesters (centralized component load).
    pub collector_messages: u64,
    /// Payload bytes delivered to harvesters — FARM's share of the
    /// Fig. 4 network-load axis.
    pub collector_bytes: u64,
    /// Seed-to-seed messages routed across switches.
    pub seed_messages: u64,
    /// Seed-to-seed payload bytes.
    pub seed_bytes: u64,
    /// Harvester→seed control messages.
    pub control_messages: u64,
    /// Harvester→seed control bytes.
    pub control_bytes: u64,
    /// Seed migrations executed.
    pub migrations: u64,
    /// State bytes moved by migrations.
    pub migration_bytes: u64,
    /// Runtime errors raised by seed handlers.
    pub seed_errors: u64,
    /// Placement optimization rounds.
    pub replans: u64,
    /// Transport sends dropped at a full queue or after reconnect budget
    /// exhaustion (`net.dead_letters`).
    pub net_dead_letters: u64,
    /// Times a TCP transport could not bind and the farm degraded to
    /// in-process delivery (`transport.fallbacks`).
    pub transport_fallbacks: u64,
}

impl Metrics {
    /// Total monitoring bytes crossing the network (to the collector,
    /// between seeds, and control).
    pub fn total_network_bytes(&self) -> u64 {
        self.collector_bytes + self.seed_bytes + self.control_bytes + self.migration_bytes
    }

    /// Builds the compat view from a telemetry [`Snapshot`]'s `farm.*`
    /// counters — the same mapping [`crate::farm::Farm::metrics`] uses
    /// on its live registry.
    ///
    /// [`Snapshot`]: farm_telemetry::Snapshot
    pub fn from_snapshot(snap: &farm_telemetry::Snapshot) -> Metrics {
        Metrics {
            collector_messages: snap.counter("farm.collector_messages"),
            collector_bytes: snap.counter("farm.collector_bytes"),
            seed_messages: snap.counter("farm.seed_messages"),
            seed_bytes: snap.counter("farm.seed_bytes"),
            control_messages: snap.counter("farm.control_messages"),
            control_bytes: snap.counter("farm.control_bytes"),
            migrations: snap.counter("farm.migrations"),
            migration_bytes: snap.counter("farm.migration_bytes"),
            seed_errors: snap.counter("farm.seed_errors"),
            replans: snap.counter("farm.replans"),
            net_dead_letters: snap.counter("net.dead_letters"),
            transport_fallbacks: snap.counter("transport.fallbacks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_view_reads_farm_counters() {
        let t = farm_telemetry::Telemetry::new();
        t.counter("farm.collector_bytes").add(5);
        t.counter("farm.replans").inc();
        let m = Metrics::from_snapshot(&t.snapshot());
        assert_eq!(m.collector_bytes, 5);
        assert_eq!(m.replans, 1);
        assert_eq!(m.seed_errors, 0);
    }

    #[test]
    fn snapshot_view_surfaces_transport_counters() {
        // The compat view must not stop at `farm.*`: the delivery-health
        // counters other layers own are part of a run's accounting too.
        let t = farm_telemetry::Telemetry::new();
        t.counter("net.dead_letters").add(3);
        t.counter("transport.fallbacks").inc();
        let m = Metrics::from_snapshot(&t.snapshot());
        assert_eq!(m.net_dead_letters, 3);
        assert_eq!(m.transport_fallbacks, 1);
    }

    #[test]
    fn total_sums_all_flows() {
        let m = Metrics {
            collector_bytes: 10,
            seed_bytes: 20,
            control_bytes: 30,
            migration_bytes: 40,
            ..Default::default()
        };
        assert_eq!(m.total_network_bytes(), 100);
    }
}
