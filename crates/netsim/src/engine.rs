//! Generic discrete-event engine.
//!
//! The engine is deliberately minimal: a virtual [`Clock`] plus a stable
//! priority queue of typed events. Higher layers (the soil scheduler, the
//! FARM runtime, the baselines) define their own event enums and drive the
//! loop, which keeps this crate free of upward dependencies.
//!
//! Events scheduled for the same instant pop in insertion order (a stable
//! tie-break via a monotonically increasing sequence number), which makes
//! whole-system runs reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{Dur, Time};

/// The simulation clock. Time only moves forward.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Time,
}

impl Clock {
    /// A clock at the simulation epoch.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past — the event loop must pop in order.
    pub fn advance_to(&mut self, t: Time) {
        assert!(t >= self.now, "clock moved backwards: {t} < {}", self.now);
        self.now = t;
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// ```
/// use farm_netsim::engine::EventQueue;
/// use farm_netsim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_millis(2), "second");
/// q.push(Time::from_millis(1), "first");
/// assert_eq!(q.pop(), Some((Time::from_millis(1), "first")));
/// assert_eq!(q.pop(), Some((Time::from_millis(2), "second")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` a span after `now`.
    pub fn push_after(&mut self, now: Time, delay: Dur, event: E) {
        self.push(now + delay, event);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A clock plus queue bundle with a run-to-horizon driver.
#[derive(Debug)]
pub struct Engine<E> {
    pub clock: Clock,
    pub queue: EventQueue<E>,
    telemetry: Option<farm_telemetry::Telemetry>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine {
            clock: Clock::new(),
            queue: EventQueue::new(),
            telemetry: None,
        }
    }
}

impl<E> Engine<E> {
    /// A fresh engine at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle: scheduling and dispatch update the
    /// `engine.*` counters and the `engine.queue_depth` gauge.
    pub fn set_telemetry(&mut self, telemetry: farm_telemetry::Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Current instant.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Schedules an event `delay` after now.
    pub fn schedule_in(&mut self, delay: Dur, event: E) {
        let at = self.clock.now() + delay;
        self.schedule_at(at, event);
    }

    /// Schedules an event at an absolute instant.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        self.queue.push(at, event);
        if let Some(t) = &self.telemetry {
            t.counter("engine.events_scheduled").inc();
            t.gauge("engine.queue_depth").set(self.queue.len() as f64);
        }
    }

    /// Pops the next event not later than `horizon`, advancing the clock to
    /// its timestamp. Returns `None` once the queue is exhausted or the next
    /// event lies beyond the horizon (the clock then rests at `horizon`).
    pub fn step_until(&mut self, horizon: Time) -> Option<(Time, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => {
                let (at, e) = self.queue.pop().expect("peeked");
                self.clock.advance_to(at);
                if let Some(t) = &self.telemetry {
                    t.counter("engine.events_dispatched").inc();
                    t.gauge("engine.queue_depth").set(self.queue.len() as f64);
                }
                Some((at, e))
            }
            _ => {
                if horizon > self.clock.now() {
                    self.clock.advance_to(horizon);
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_millis(5), 5);
        q.push(Time::from_millis(1), 1);
        q.push(Time::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn engine_respects_horizon() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule_at(Time::from_millis(10), "late");
        eng.schedule_at(Time::from_millis(1), "early");
        let horizon = Time::from_millis(5);
        assert_eq!(eng.step_until(horizon).map(|(_, e)| e), Some("early"));
        assert_eq!(eng.step_until(horizon), None);
        assert_eq!(eng.now(), horizon);
        // The late event is still pending for a farther horizon.
        assert_eq!(
            eng.step_until(Time::from_millis(20)).map(|(_, e)| e),
            Some("late")
        );
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_backwards_motion() {
        let mut c = Clock::new();
        c.advance_to(Time::from_millis(2));
        c.advance_to(Time::from_millis(1));
    }
}
