//! PCIe bus model between the switch CPU and the ASIC.
//!
//! Fig. 8 of the paper identifies the PCIe bus as the main bottleneck of
//! M&M tasks: statistics polling over PCIe is limited to ~8 Mbit/s while
//! the ASIC forwards at 100 Gbit/s — a 1:12500 ratio. The model tracks
//! bytes requested over a window, reports utilization, and serves requests
//! with a queueing delay that explodes as utilization approaches capacity
//! (an M/M/1-style `base/(1-ρ)` law, capped for stability).

use farm_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

use crate::time::Dur;

/// Static PCIe/ASIC bandwidth description of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcieSpec {
    /// Sustainable statistics-polling throughput over PCIe, bits/s.
    pub poll_capacity_bps: u64,
    /// ASIC forwarding bandwidth, bits/s (for the Fig. 8 ratio).
    pub asic_bps: u64,
}

impl PcieSpec {
    /// The configuration measured in the paper: 8 Mbit/s polling vs
    /// 100 Gbit/s ASIC.
    pub const fn measured() -> PcieSpec {
        PcieSpec {
            poll_capacity_bps: 8_000_000,
            asic_bps: 100_000_000_000,
        }
    }

    /// The paper's headline capacity ratio (≈ 12 500 for
    /// [`PcieSpec::measured`]).
    pub fn capacity_ratio(&self) -> f64 {
        self.asic_bps as f64 / self.poll_capacity_bps as f64
    }
}

/// Base service latency of a single small PCIe read when idle.
pub const PCIE_BASE_LATENCY: Dur = Dur::from_micros(10);

/// Tracks PCIe polling traffic over a measurement window.
#[derive(Debug, Clone)]
pub struct PcieBus {
    spec: PcieSpec,
    window: Dur,
    bytes_requested: u64,
    requests: u64,
    telemetry: Option<Telemetry>,
    /// Raw id of the owning switch, for event context.
    switch_id: u32,
    /// Congestion state at the last observation, to emit transitions only.
    was_congested: bool,
    /// Injected fault scaling: effective capacity = nominal × factor.
    degradation: f64,
}

impl PcieBus {
    /// A bus with a 1-second reporting window.
    pub fn new(spec: PcieSpec) -> PcieBus {
        PcieBus {
            spec,
            window: Dur::from_secs(1),
            bytes_requested: 0,
            requests: 0,
            telemetry: None,
            switch_id: 0,
            was_congested: false,
            degradation: 1.0,
        }
    }

    /// Attaches a telemetry handle; subsequent requests update the
    /// `pcie.*` counters and saturation transitions emit
    /// [`Event::PcieSaturation`] tagged with `switch_id`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, switch_id: u32) {
        self.telemetry = Some(telemetry);
        self.switch_id = switch_id;
    }

    /// Static description.
    pub fn spec(&self) -> PcieSpec {
        self.spec
    }

    /// Sets the measurement window.
    pub fn set_window(&mut self, window: Dur) {
        assert!(!window.is_zero(), "PCIe window must be non-zero");
        self.window = window;
    }

    /// Issues a polling transfer of `bytes` and returns its completion
    /// latency under the current load.
    pub fn request(&mut self, bytes: u64) -> Dur {
        self.bytes_requested += bytes;
        self.requests += 1;
        if let Some(t) = &self.telemetry {
            t.counter("pcie.requests").inc();
            t.counter("pcie.bytes").add(bytes);
        }
        self.observe_saturation();
        let transfer = Dur::from_secs_f64(bytes as f64 * 8.0 / self.effective_capacity_bps());
        PCIE_BASE_LATENCY + transfer + self.queueing_delay()
    }

    /// Scales the bus to `factor` × nominal capacity (an injected
    /// degradation fault). Clamped to `[0.01, 1.0]`; pass `1.0` to
    /// restore nominal bandwidth.
    pub fn set_degradation(&mut self, factor: f64) {
        self.degradation = factor.clamp(0.01, 1.0);
        self.observe_saturation();
    }

    /// Current degradation factor (`1.0` = healthy).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// Capacity after degradation, bits/s.
    pub fn effective_capacity_bps(&self) -> f64 {
        self.spec.poll_capacity_bps as f64 * self.degradation
    }

    /// Emits a [`Event::PcieSaturation`] when the bus crosses the
    /// congestion threshold in either direction.
    fn observe_saturation(&mut self) {
        let congested = self.is_congested();
        if congested == self.was_congested {
            return;
        }
        self.was_congested = congested;
        if let Some(t) = &self.telemetry {
            if congested {
                t.counter("pcie.saturation_events").inc();
            }
            let utilization = self.utilization();
            let switch = self.switch_id;
            t.emit_with(|| Event::PcieSaturation {
                switch,
                utilization,
                saturated: congested,
            });
        }
    }

    /// Extra delay from contention: `base · ρ/(1-ρ)`, capped at 1000× base
    /// once the bus saturates.
    pub fn queueing_delay(&self) -> Dur {
        let rho = self.utilization().min(0.999);
        let factor = (rho / (1.0 - rho)).min(1000.0);
        PCIE_BASE_LATENCY.mul_f64(factor)
    }

    /// Offered polling load relative to capacity (1.0 = saturated; can
    /// exceed 1 when demand outstrips the bus).
    pub fn utilization(&self) -> f64 {
        let offered_bps = self.bytes_requested as f64 * 8.0 / self.window.as_secs_f64();
        offered_bps / self.effective_capacity_bps()
    }

    /// Utilization as a percentage (Fig. 8's y-axis).
    pub fn utilization_percent(&self) -> f64 {
        self.utilization() * 100.0
    }

    /// True when offered load exceeds 95 % of capacity.
    pub fn is_congested(&self) -> bool {
        self.utilization() > 0.95
    }

    /// Bytes requested in the current window.
    pub fn bytes_requested(&self) -> u64 {
        self.bytes_requested
    }

    /// Number of transfer requests in the current window.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Resets window counters (and reports saturation recovery if the
    /// previous window was congested).
    pub fn reset(&mut self) {
        self.bytes_requested = 0;
        self.requests = 0;
        self.observe_saturation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratio_matches_paper() {
        assert!((PcieSpec::measured().capacity_ratio() - 12_500.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let mut bus = PcieBus::new(PcieSpec::measured());
        // 8 Mbit/s capacity = 1 MB/s; request half of that.
        bus.request(500_000);
        assert!((bus.utilization() - 0.5).abs() < 1e-9);
        assert!(!bus.is_congested());
        bus.request(600_000);
        assert!(bus.utilization() > 1.0);
        assert!(bus.is_congested());
    }

    #[test]
    fn latency_grows_with_congestion() {
        let mut bus = PcieBus::new(PcieSpec::measured());
        let idle = bus.request(64);
        // Push the bus to ~99 % utilization.
        bus.request(980_000);
        let busy = bus.request(64);
        assert!(
            busy > idle,
            "latency under load ({busy}) must exceed idle latency ({idle})"
        );
    }

    #[test]
    fn queueing_delay_is_capped() {
        let mut bus = PcieBus::new(PcieSpec::measured());
        bus.request(100_000_000); // way past saturation
        assert!(bus.queueing_delay() <= PCIE_BASE_LATENCY.mul_f64(1000.0));
    }

    #[test]
    fn saturation_transitions_are_reported_once() {
        use farm_telemetry::RingBufferSink;
        use std::sync::Arc;

        let telemetry = Telemetry::new();
        let ring = Arc::new(RingBufferSink::new(16));
        telemetry.add_sink(ring.clone());
        let mut bus = PcieBus::new(PcieSpec::measured());
        bus.set_telemetry(telemetry.clone(), 7);

        bus.request(2_000_000); // way past saturation
        bus.request(64); // still saturated: no second event
        bus.reset(); // recovery

        let events: Vec<_> = ring
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::PcieSaturation {
                    switch, saturated, ..
                } => Some((switch, saturated)),
                _ => None,
            })
            .collect();
        assert_eq!(events, [(7, true), (7, false)]);
        assert_eq!(telemetry.snapshot().counter("pcie.saturation_events"), 1);
        assert_eq!(telemetry.snapshot().counter("pcie.requests"), 2);
    }

    #[test]
    fn degradation_scales_capacity_and_utilization() {
        let mut bus = PcieBus::new(PcieSpec::measured());
        bus.request(250_000); // 25 % of nominal
        assert!((bus.utilization() - 0.25).abs() < 1e-9);
        bus.set_degradation(0.25);
        // Same offered load, a quarter of the capacity.
        assert!((bus.utilization() - 1.0).abs() < 1e-9);
        assert!(bus.is_congested());
        bus.set_degradation(1.0);
        assert!(!bus.is_congested());
        // The clamp protects against zero/negative factors.
        bus.set_degradation(0.0);
        assert!((bus.degradation() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_window() {
        let mut bus = PcieBus::new(PcieSpec::measured());
        bus.request(1000);
        bus.reset();
        assert_eq!(bus.bytes_requested(), 0);
        assert_eq!(bus.requests(), 0);
        assert_eq!(bus.utilization(), 0.0);
    }
}
