//! Virtual time for the discrete-event simulator.
//!
//! All behavioural experiments in this reproduction run on virtual time so
//! results are deterministic and independent of host speed. [`Time`] is an
//! absolute instant (nanoseconds since simulation start) and [`Dur`] a span;
//! both are thin `u64` wrappers with saturating arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Absolute simulation instant in nanoseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(pub u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// Instant `s` seconds after start.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Instant `ms` milliseconds after start.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Instant `us` microseconds after start.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span since an earlier instant (saturating at zero).
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Span of `s` seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from fractional seconds (clamped at zero).
    ///
    /// # Panics
    ///
    /// Panics if `s` is NaN or too large to represent.
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(!s.is_nan(), "NaN duration");
        assert!(s < u64::MAX as f64 / 1e9, "duration too large");
        Dur((s.max(0.0) * 1e9).round() as u64)
    }

    /// Scales the span by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Dur {
        Dur::from_secs_f64(self.as_secs_f64() * k)
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, other: Time) -> Dur {
        self.since(other)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    fn sub(self, d: Dur) -> Dur {
        Dur(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Dur::from_secs(2).as_millis(), 2000);
        assert!((Dur::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Time::ZERO.since(Time::from_secs(1)), Dur::ZERO);
        assert_eq!(Dur::from_millis(1) - Dur::from_millis(2), Dur::ZERO);
        let big = Time(u64::MAX);
        assert_eq!(big + Dur::from_secs(1), Time(u64::MAX));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(Dur::from_nanos(17).to_string(), "17ns");
        assert_eq!(Dur::from_micros(4).to_string(), "4.000us");
        assert_eq!(Dur::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Dur::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn time_difference_is_duration() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(25);
        assert_eq!(b - a, Dur::from_millis(15));
    }
}
