//! Fabric topology: spine-leaf builder, link map, path enumeration.
//!
//! The paper deploys FARM on a spine-leaf cluster in a production SAP data
//! center (20 switches reported; the placement study scales to 1 040). The
//! builder assigns each leaf an IPv4 /24 so that host addresses and the SDN
//! controller's `φ_path` path queries are well defined.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::switch::SwitchModel;
use crate::types::{Ipv4, Prefix, SwitchId};

/// Role of a switch in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    Spine,
    Leaf,
}

/// A node of the topology graph.
#[derive(Debug, Clone)]
pub struct SwitchNode {
    pub id: SwitchId,
    pub role: Role,
    /// Subnet owned by a leaf (None for spines).
    pub prefix: Option<Prefix>,
    pub model: SwitchModel,
}

/// An undirected fabric link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    pub a: SwitchId,
    pub b: SwitchId,
    /// Link bandwidth in bits/s.
    pub bandwidth_bps: u64,
}

/// The fabric graph.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<SwitchNode>,
    links: Vec<Link>,
    adjacency: HashMap<SwitchId, Vec<SwitchId>>,
}

impl Topology {
    /// Builds a spine-leaf fabric: every leaf connects to every spine.
    /// Leaf `i` owns the /24 subnet `10.((i+1)>>8).((i+1)&0xff).0/24`,
    /// supporting thousands of leaves.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or exceeds 65 000 leaves.
    pub fn spine_leaf(
        n_spines: usize,
        n_leaves: usize,
        spine_model: SwitchModel,
        leaf_model: SwitchModel,
    ) -> Topology {
        assert!(n_spines > 0 && n_leaves > 0, "empty fabric");
        assert!(n_leaves <= 65_000, "too many leaves for the address plan");
        let mut nodes = Vec::with_capacity(n_spines + n_leaves);
        for s in 0..n_spines {
            nodes.push(SwitchNode {
                id: SwitchId(s as u32),
                role: Role::Spine,
                prefix: None,
                model: spine_model.clone(),
            });
        }
        for l in 0..n_leaves {
            let idx = (l + 1) as u32;
            let addr = Ipv4((10u32 << 24) | (idx << 8));
            nodes.push(SwitchNode {
                id: SwitchId((n_spines + l) as u32),
                role: Role::Leaf,
                prefix: Some(Prefix::new(addr, 24)),
                model: leaf_model.clone(),
            });
        }
        let mut links = Vec::new();
        for s in 0..n_spines {
            for l in 0..n_leaves {
                links.push(Link {
                    a: SwitchId(s as u32),
                    b: SwitchId((n_spines + l) as u32),
                    bandwidth_bps: 100_000_000_000,
                });
            }
        }
        Topology::from_parts(nodes, links)
    }

    /// Builds a topology from explicit nodes and links.
    ///
    /// # Panics
    ///
    /// Panics if a link references an unknown node.
    pub fn from_parts(nodes: Vec<SwitchNode>, links: Vec<Link>) -> Topology {
        let ids: std::collections::HashSet<SwitchId> = nodes.iter().map(|n| n.id).collect();
        let mut adjacency: HashMap<SwitchId, Vec<SwitchId>> = HashMap::new();
        for l in &links {
            assert!(
                ids.contains(&l.a) && ids.contains(&l.b),
                "link references unknown switch"
            );
            adjacency.entry(l.a).or_default().push(l.b);
            adjacency.entry(l.b).or_default().push(l.a);
        }
        Topology {
            nodes,
            links,
            adjacency,
        }
    }

    /// All switches.
    pub fn switches(&self) -> &[SwitchNode] {
        &self.nodes
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty fabric (never produced by the builders).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node by id.
    pub fn node(&self, id: SwitchId) -> Option<&SwitchNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Direct neighbors of a switch.
    pub fn neighbors(&self, id: SwitchId) -> &[SwitchId] {
        self.adjacency.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Ids of all leaves.
    pub fn leaves(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.role == Role::Leaf)
            .map(|n| n.id)
    }

    /// Ids of all spines.
    pub fn spines(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.role == Role::Spine)
            .map(|n| n.id)
    }

    /// Leaf owning the subnet containing `ip`.
    pub fn leaf_of(&self, ip: Ipv4) -> Option<SwitchId> {
        self.nodes
            .iter()
            .find(|n| n.prefix.is_some_and(|p| p.contains(ip)))
            .map(|n| n.id)
    }

    /// Leaves whose subnet overlaps `prefix`.
    pub fn leaves_overlapping(&self, prefix: &Prefix) -> Vec<SwitchId> {
        self.nodes
            .iter()
            .filter(|n| n.prefix.is_some_and(|p| p.overlaps(prefix)))
            .map(|n| n.id)
            .collect()
    }

    /// `j`-th host address behind leaf `leaf` (j starts at 0).
    ///
    /// Returns `None` for spines or out-of-subnet indices.
    pub fn host_ip(&self, leaf: SwitchId, j: u32) -> Option<Ipv4> {
        let p = self.node(leaf)?.prefix?;
        if j >= 254 {
            return None;
        }
        Some(Ipv4(p.addr.0 + j + 1))
    }

    /// All switch-level paths between two leaves. In a spine-leaf fabric
    /// this is `[src]` for intra-leaf traffic and `[src, spine_i, dst]`
    /// for every spine otherwise (the ECMP set).
    pub fn paths(&self, src: SwitchId, dst: SwitchId) -> Vec<Vec<SwitchId>> {
        if src == dst {
            return vec![vec![src]];
        }
        // Spine-leaf special case: common neighbors give 3-hop paths.
        let src_n = self.neighbors(src);
        let dst_n: std::collections::HashSet<SwitchId> =
            self.neighbors(dst).iter().copied().collect();
        let mut out: Vec<Vec<SwitchId>> = src_n
            .iter()
            .filter(|m| dst_n.contains(m))
            .map(|m| vec![src, *m, dst])
            .collect();
        if out.is_empty() {
            // Fall back to one BFS shortest path for non-spine-leaf graphs.
            if let Some(p) = self.bfs_path(src, dst) {
                out.push(p);
            }
        } else if src_n.contains(&dst) {
            out.insert(0, vec![src, dst]);
        }
        out
    }

    fn bfs_path(&self, src: SwitchId, dst: SwitchId) -> Option<Vec<SwitchId>> {
        let mut prev: HashMap<SwitchId, SwitchId> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([src]);
        prev.insert(src, src);
        while let Some(u) = queue.pop_front() {
            if u == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while cur != src {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &v in self.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(v) {
                    e.insert(u);
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Topology {
        Topology::spine_leaf(2, 3, SwitchModel::test_model(8), SwitchModel::test_model(8))
    }

    #[test]
    fn spine_leaf_has_full_bipartite_links() {
        let t = fabric();
        assert_eq!(t.len(), 5);
        assert_eq!(t.links().len(), 6);
        assert_eq!(t.spines().count(), 2);
        assert_eq!(t.leaves().count(), 3);
        for l in t.leaves() {
            assert_eq!(t.neighbors(l).len(), 2);
        }
    }

    #[test]
    fn leaf_prefixes_are_disjoint_and_resolvable() {
        let t = fabric();
        let leaves: Vec<_> = t.leaves().collect();
        for (i, &l) in leaves.iter().enumerate() {
            let ip = t.host_ip(l, 0).unwrap();
            assert_eq!(t.leaf_of(ip), Some(l), "leaf {i}");
        }
        // Host ips from different leaves resolve differently.
        let a = t.host_ip(leaves[0], 5).unwrap();
        let b = t.host_ip(leaves[1], 5).unwrap();
        assert_ne!(t.leaf_of(a), t.leaf_of(b));
    }

    #[test]
    fn inter_leaf_paths_enumerate_all_spines() {
        let t = fabric();
        let leaves: Vec<_> = t.leaves().collect();
        let paths = t.paths(leaves[0], leaves[2]);
        assert_eq!(paths.len(), 2); // one per spine
        for p in &paths {
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], leaves[0]);
            assert_eq!(p[2], leaves[2]);
            assert_eq!(t.node(p[1]).unwrap().role, Role::Spine);
        }
    }

    #[test]
    fn intra_leaf_path_is_trivial() {
        let t = fabric();
        let l = t.leaves().next().unwrap();
        assert_eq!(t.paths(l, l), vec![vec![l]]);
    }

    #[test]
    fn bfs_fallback_works_on_a_chain() {
        let m = SwitchModel::test_model(2);
        let nodes = (0..4u32)
            .map(|i| SwitchNode {
                id: SwitchId(i),
                role: Role::Leaf,
                prefix: None,
                model: m.clone(),
            })
            .collect();
        let links = (0..3u32)
            .map(|i| Link {
                a: SwitchId(i),
                b: SwitchId(i + 1),
                bandwidth_bps: 1,
            })
            .collect();
        let t = Topology::from_parts(nodes, links);
        let paths = t.paths(SwitchId(0), SwitchId(3));
        assert_eq!(paths.len(), 1);
        assert_eq!(
            paths[0],
            vec![SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(3)]
        );
    }

    #[test]
    fn scales_to_fig7_size() {
        // 1040 switches: 16 spines + 1024 leaves (the placement study size).
        let t = Topology::spine_leaf(
            16,
            1024,
            SwitchModel::test_model(64),
            SwitchModel::test_model(64),
        );
        assert_eq!(t.len(), 1040);
        let last_leaf = t.leaves().last().unwrap();
        let ip = t.host_ip(last_leaf, 3).unwrap();
        assert_eq!(t.leaf_of(ip), Some(last_leaf));
    }

    #[test]
    fn host_ip_bounds() {
        let t = fabric();
        let l = t.leaves().next().unwrap();
        assert!(t.host_ip(l, 300).is_none());
        let spine = t.spines().next().unwrap();
        assert!(t.host_ip(spine, 0).is_none());
    }
}
