//! Identifiers, addresses, flows and filter formulas shared across the
//! simulator, the Almanac DSL and the FARM runtime.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A switch in the simulated fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// A physical port on a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// IPv4 address as a 32-bit integer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError(pub String);

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {}", self.0)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Ipv4 {
    type Err = ParseAddrError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in octets.iter_mut() {
            *o = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| ParseAddrError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError(s.to_string()));
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// CIDR prefix (`addr/len`); `len == 32` matches a single host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    pub addr: Ipv4,
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix, normalizing host bits to zero.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length out of range");
        Prefix {
            addr: Ipv4(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// A single-host prefix.
    pub fn host(addr: Ipv4) -> Prefix {
        Prefix::new(addr, 32)
    }

    /// The full address space.
    pub const fn any() -> Prefix {
        Prefix {
            addr: Ipv4(0),
            len: 0,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4) -> bool {
        (ip.0 & Self::mask(self.len)) == self.addr.0
    }

    /// True if the two prefixes share any address.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        let len = self.len.min(other.len);
        (self.addr.0 & Self::mask(len)) == (other.addr.0 & Self::mask(len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseAddrError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((a, l)) => {
                let addr: Ipv4 = a.parse()?;
                let len: u8 = l.parse().map_err(|_| ParseAddrError(s.to_string()))?;
                if len > 32 {
                    return Err(ParseAddrError(s.to_string()));
                }
                Ok(Prefix::new(addr, len))
            }
            None => Ok(Prefix::host(s.parse()?)),
        }
    }
}

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Proto {
    Tcp,
    Udp,
    Icmp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
            Proto::Icmp => "icmp",
        };
        f.write_str(s)
    }
}

/// Five-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub src: Ipv4,
    pub dst: Ipv4,
    pub proto: Proto,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FlowKey {
    /// Convenience constructor for a TCP flow.
    pub fn tcp(src: Ipv4, src_port: u16, dst: Ipv4, dst_port: u16) -> FlowKey {
        FlowKey {
            src,
            dst,
            proto: Proto::Tcp,
            src_port,
            dst_port,
        }
    }

    /// Convenience constructor for a UDP flow.
    pub fn udp(src: Ipv4, src_port: u16, dst: Ipv4, dst_port: u16) -> FlowKey {
        FlowKey {
            src,
            dst,
            proto: Proto::Udp,
            src_port,
            dst_port,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// Selection of switch interfaces for polling subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortSel {
    /// Every port of the switch.
    Any,
    /// One specific port.
    Id(u16),
}

/// An atomic filter proposition (the `fil` non-terminal of Almanac's
/// grammar, Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FilterAtom {
    SrcIp(Prefix),
    DstIp(Prefix),
    SrcPort(u16),
    DstPort(u16),
    Proto(Proto),
    /// Switch interface selector (used by `poll`/`probe` subjects).
    IfPort(PortSel),
}

impl FilterAtom {
    /// True if a flow satisfies this atom. [`FilterAtom::IfPort`] atoms
    /// constrain polling subjects rather than flows and always match here.
    pub fn matches_flow(&self, flow: &FlowKey) -> bool {
        match self {
            FilterAtom::SrcIp(p) => p.contains(flow.src),
            FilterAtom::DstIp(p) => p.contains(flow.dst),
            FilterAtom::SrcPort(p) => flow.src_port == *p,
            FilterAtom::DstPort(p) => flow.dst_port == *p,
            FilterAtom::Proto(p) => flow.proto == *p,
            FilterAtom::IfPort(_) => true,
        }
    }
}

impl fmt::Display for FilterAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterAtom::SrcIp(p) => write!(f, "srcIP {p}"),
            FilterAtom::DstIp(p) => write!(f, "dstIP {p}"),
            FilterAtom::SrcPort(p) => write!(f, "srcPort {p}"),
            FilterAtom::DstPort(p) => write!(f, "dstPort {p}"),
            FilterAtom::Proto(p) => write!(f, "proto {p}"),
            FilterAtom::IfPort(PortSel::Any) => write!(f, "port ANY"),
            FilterAtom::IfPort(PortSel::Id(i)) => write!(f, "port {i}"),
        }
    }
}

/// Closed boolean formula over [`FilterAtom`]s — the output of the paper's
/// `φ^s⟦·⟧` evaluation (§ III-B) and the match language of the TCAM.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterFormula {
    True,
    False,
    Atom(FilterAtom),
    And(Box<FilterFormula>, Box<FilterFormula>),
    Or(Box<FilterFormula>, Box<FilterFormula>),
    Not(Box<FilterFormula>),
}

impl FilterFormula {
    /// Conjunction helper.
    pub fn and(self, other: FilterFormula) -> FilterFormula {
        match (self, other) {
            (FilterFormula::True, x) | (x, FilterFormula::True) => x,
            (FilterFormula::False, _) | (_, FilterFormula::False) => FilterFormula::False,
            (a, b) => FilterFormula::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction helper.
    pub fn or(self, other: FilterFormula) -> FilterFormula {
        match (self, other) {
            (FilterFormula::False, x) | (x, FilterFormula::False) => x,
            (FilterFormula::True, _) | (_, FilterFormula::True) => FilterFormula::True,
            (a, b) => FilterFormula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> FilterFormula {
        match self {
            FilterFormula::True => FilterFormula::False,
            FilterFormula::False => FilterFormula::True,
            FilterFormula::Not(inner) => *inner,
            other => FilterFormula::Not(Box::new(other)),
        }
    }

    /// Evaluates the formula against a flow.
    pub fn matches_flow(&self, flow: &FlowKey) -> bool {
        match self {
            FilterFormula::True => true,
            FilterFormula::False => false,
            FilterFormula::Atom(a) => a.matches_flow(flow),
            FilterFormula::And(a, b) => a.matches_flow(flow) && b.matches_flow(flow),
            FilterFormula::Or(a, b) => a.matches_flow(flow) || b.matches_flow(flow),
            FilterFormula::Not(a) => !a.matches_flow(flow),
        }
    }

    /// Collects all atoms appearing in the formula.
    pub fn atoms(&self) -> Vec<FilterAtom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<FilterAtom>) {
        match self {
            FilterFormula::True | FilterFormula::False => {}
            FilterFormula::Atom(a) => out.push(*a),
            FilterFormula::And(a, b) | FilterFormula::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            FilterFormula::Not(a) => a.collect_atoms(out),
        }
    }

    /// First source-prefix constraint in the formula, if any (used by path
    /// resolution; conjunctive filters are by far the common case).
    pub fn src_prefix(&self) -> Option<Prefix> {
        self.atoms().iter().find_map(|a| match a {
            FilterAtom::SrcIp(p) => Some(*p),
            _ => None,
        })
    }

    /// First destination-prefix constraint in the formula, if any.
    pub fn dst_prefix(&self) -> Option<Prefix> {
        self.atoms().iter().find_map(|a| match a {
            FilterAtom::DstIp(p) => Some(*p),
            _ => None,
        })
    }
}

impl fmt::Display for FilterFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterFormula::True => write!(f, "true"),
            FilterFormula::False => write!(f, "false"),
            FilterFormula::Atom(a) => write!(f, "{a}"),
            FilterFormula::And(a, b) => write!(f, "({a} and {b})"),
            FilterFormula::Or(a, b) => write!(f, "({a} or {b})"),
            FilterFormula::Not(a) => write!(f, "(not {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_parse_and_display() {
        let ip: Ipv4 = "10.1.1.4".parse().unwrap();
        assert_eq!(ip, Ipv4::new(10, 1, 1, 4));
        assert_eq!(ip.to_string(), "10.1.1.4");
        assert!("10.1.1".parse::<Ipv4>().is_err());
        assert!("10.1.1.4.5".parse::<Ipv4>().is_err());
        assert!("10.1.1.300".parse::<Ipv4>().is_err());
    }

    #[test]
    fn prefix_contains_and_overlaps() {
        let p: Prefix = "10.0.1.0/24".parse().unwrap();
        assert!(p.contains("10.0.1.200".parse().unwrap()));
        assert!(!p.contains("10.0.2.1".parse().unwrap()));
        let q: Prefix = "10.0.0.0/16".parse().unwrap();
        assert!(p.overlaps(&q));
        let r: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(!p.overlaps(&r));
        assert!(Prefix::any().contains("1.2.3.4".parse().unwrap()));
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let p = Prefix::new(Ipv4::new(10, 0, 1, 77), 24);
        assert_eq!(p.addr, Ipv4::new(10, 0, 1, 0));
        assert_eq!(p.to_string(), "10.0.1.0/24");
    }

    #[test]
    fn filter_formula_evaluation() {
        let flow = FlowKey::tcp(Ipv4::new(10, 1, 1, 4), 5555, Ipv4::new(10, 0, 1, 9), 80);
        let f = FilterFormula::Atom(FilterAtom::SrcIp("10.1.1.4/32".parse().unwrap())).and(
            FilterFormula::Atom(FilterAtom::DstIp("10.0.1.0/24".parse().unwrap())),
        );
        assert!(f.matches_flow(&flow));
        let g = f.clone().and(FilterFormula::Atom(FilterAtom::DstPort(443)));
        assert!(!g.matches_flow(&flow));
        assert!(g.clone().not().matches_flow(&flow));
        assert_eq!(f.src_prefix().unwrap().to_string(), "10.1.1.4/32");
        assert_eq!(f.dst_prefix().unwrap().to_string(), "10.0.1.0/24");
    }

    #[test]
    fn formula_simplification_helpers() {
        let t = FilterFormula::True;
        let atom = FilterFormula::Atom(FilterAtom::DstPort(53));
        assert_eq!(t.clone().and(atom.clone()), atom);
        assert_eq!(FilterFormula::False.or(atom.clone()), atom);
        assert_eq!(FilterFormula::True.not(), FilterFormula::False);
        assert_eq!(atom.clone().not().not(), atom);
    }

    #[test]
    fn ifport_atoms_do_not_constrain_flows() {
        let flow = FlowKey::udp(Ipv4::new(1, 1, 1, 1), 1, Ipv4::new(2, 2, 2, 2), 2);
        assert!(FilterAtom::IfPort(PortSel::Any).matches_flow(&flow));
        assert!(FilterAtom::IfPort(PortSel::Id(3)).matches_flow(&flow));
    }
}
