//! SDN controller view: path queries over filter formulas.
//!
//! The seeder resolves Almanac `place … range …` directives by asking the
//! SDN controller for the set of paths matching a closed filter formula —
//! the paper's `φ_path(·)` helper (§ III-B). This module implements that
//! query against the simulated topology: source/destination prefixes select
//! leaf sets, and the ECMP path enumeration of [`Topology::paths`] supplies
//! the path family.

use crate::topology::Topology;
use crate::types::{FilterFormula, SwitchId};

/// Read-only controller facade over a topology.
#[derive(Debug, Clone)]
pub struct SdnController<'a> {
    topology: &'a Topology,
}

impl<'a> SdnController<'a> {
    /// Wraps a topology.
    pub fn new(topology: &'a Topology) -> Self {
        SdnController { topology }
    }

    /// The topology this controller manages.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// `φ_path(ex_c)`: every switch-level path whose endpoints can carry
    /// traffic matching the formula. A missing src/dst constraint means
    /// "any leaf". Paths are ordered deterministically (by src, dst, and
    /// spine id) so placement interpretation is reproducible.
    pub fn paths_matching(&self, formula: &FilterFormula) -> Vec<Vec<SwitchId>> {
        let src_leaves = match formula.src_prefix() {
            Some(p) => self.topology.leaves_overlapping(&p),
            None => self.topology.leaves().collect(),
        };
        let dst_leaves = match formula.dst_prefix() {
            Some(p) => self.topology.leaves_overlapping(&p),
            None => self.topology.leaves().collect(),
        };
        let mut out = Vec::new();
        for &s in &src_leaves {
            for &d in &dst_leaves {
                if s == d {
                    continue; // same-leaf traffic never crosses the fabric
                }
                out.extend(self.topology.paths(s, d));
            }
        }
        out
    }

    /// All switches (the resolution of `place all` / `place any` without a
    /// constraint).
    pub fn all_switches(&self) -> Vec<SwitchId> {
        self.topology.switches().iter().map(|n| n.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::SwitchModel;
    use crate::types::{FilterAtom, Prefix};

    fn fabric() -> Topology {
        Topology::spine_leaf(2, 3, SwitchModel::test_model(8), SwitchModel::test_model(8))
    }

    #[test]
    fn unconstrained_formula_yields_all_leaf_pairs() {
        let t = fabric();
        let c = SdnController::new(&t);
        let paths = c.paths_matching(&FilterFormula::True);
        // 3 leaves → 6 ordered pairs × 2 spines = 12 paths.
        assert_eq!(paths.len(), 12);
    }

    #[test]
    fn prefix_constraints_narrow_endpoints() {
        let t = fabric();
        let c = SdnController::new(&t);
        let leaves: Vec<_> = t.leaves().collect();
        let src_pfx = t.node(leaves[0]).unwrap().prefix.unwrap();
        let dst_pfx = t.node(leaves[1]).unwrap().prefix.unwrap();
        let f = FilterFormula::Atom(FilterAtom::SrcIp(src_pfx))
            .and(FilterFormula::Atom(FilterAtom::DstIp(dst_pfx)));
        let paths = c.paths_matching(&f);
        assert_eq!(paths.len(), 2); // one per spine
        for p in &paths {
            assert_eq!(p[0], leaves[0]);
            assert_eq!(p[2], leaves[1]);
        }
    }

    #[test]
    fn host_level_prefix_resolves_to_owning_leaf() {
        let t = fabric();
        let c = SdnController::new(&t);
        let leaves: Vec<_> = t.leaves().collect();
        let host = t.host_ip(leaves[2], 4).unwrap();
        let f = FilterFormula::Atom(FilterAtom::SrcIp(Prefix::host(host)));
        let paths = c.paths_matching(&f);
        assert!(!paths.is_empty());
        assert!(paths.iter().all(|p| p[0] == leaves[2]));
    }

    #[test]
    fn unmatched_prefix_yields_no_paths() {
        let t = fabric();
        let c = SdnController::new(&t);
        let f = FilterFormula::Atom(FilterAtom::SrcIp("192.168.0.0/16".parse().unwrap()));
        assert!(c.paths_matching(&f).is_empty());
    }
}
