//! Discrete-event data-center network simulator for the FARM reproduction.
//!
//! The FARM paper evaluates on real switches (Tofino/Accton/Arista) in a
//! production SAP data center. That substrate is not available offline, so
//! this crate rebuilds its *architecture* as a deterministic simulator:
//!
//! * [`topology`] — spine-leaf fabrics with per-leaf subnets,
//! * [`switch`] — switches with port counters, a region-divided [`tcam`],
//!   a bandwidth-limited [`pcie`] polling bus (8 Mbit/s vs a 100 Gbit/s
//!   ASIC — the 1:12500 ratio of the paper's Fig. 8) and a control-plane
//!   [`cpu`] meter,
//! * [`controller`] — the SDN controller's `φ_path` path queries,
//! * [`traffic`] — heavy-hitter / DDoS / port-scan / Zipf workloads with
//!   the statistical features the paper reports,
//! * [`engine`] — a generic virtual-time event queue, and
//! * [`types`] — flows, prefixes and the filter-formula language shared
//!   with the Almanac DSL.
//!
//! Everything is deterministic given workload seeds; no wall-clock time is
//! consulted anywhere.
//!
//! # Example
//!
//! ```
//! use farm_netsim::network::Network;
//! use farm_netsim::switch::SwitchModel;
//! use farm_netsim::topology::Topology;
//! use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig, Workload};
//! use farm_netsim::time::{Dur, Time};
//! use farm_netsim::types::PortSel;
//!
//! let topo = Topology::spine_leaf(2, 4,
//!     SwitchModel::accton_as7712(), SwitchModel::accton_as5712());
//! let mut net = Network::new(topo);
//! let leaf = net.topology().leaves().next().unwrap();
//! let mut hh = HeavyHitterWorkload::new(HhConfig { switch: leaf, ..Default::default() });
//! let events = hh.advance(Time::ZERO, Dur::from_millis(10));
//! net.apply_traffic(&events);
//! let (stats, latency) = net.switch_mut(leaf).unwrap().poll_ports(PortSel::Any);
//! assert!(!stats.is_empty());
//! assert!(latency > Dur::ZERO);
//! ```

pub mod controller;
pub mod cpu;
pub mod engine;
pub mod network;
pub mod pcie;
pub mod switch;
pub mod tcam;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod types;

pub use network::{Network, TrafficEvent};
pub use switch::{ResourceKind, Resources, Switch, SwitchModel};
pub use time::{Dur, Time};
pub use topology::Topology;
pub use types::{
    FilterAtom, FilterFormula, FlowKey, Ipv4, PortId, PortSel, Prefix, Proto, SwitchId,
};
