//! Ternary content-addressable memory (TCAM) model.
//!
//! FARM's soil "carefully divides the ASIC's TCAM between monitoring and
//! packet forwarding such that the switching behavior is not affected when
//! rearranging the TCAM due to FARM operation" (§ II-B, inspired by
//! iSTAMP). This model keeps the two regions separate: forwarding rules
//! decide packet handling; monitoring rules only count and mirror, and their
//! region has its own capacity so monitoring churn can never evict a
//! forwarding entry.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::{FilterFormula, FlowKey, PortId};

/// Identifier of an installed TCAM rule (unique per switch lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule{}", self.0)
    }
}

/// Region of the TCAM a rule lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TcamRegion {
    /// Packet-forwarding entries; never touched by monitoring churn.
    Forwarding,
    /// Monitoring entries installed by seeds (counting, mirroring,
    /// reactions like rate limits).
    Monitoring,
}

/// What a matching rule does to traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuleAction {
    /// Forward out of a port.
    Forward(PortId),
    /// Drop matching traffic.
    Drop,
    /// Cap matching traffic to a byte rate (bytes/s) — the HH example's
    /// typical local reaction.
    RateLimit(u64),
    /// Change QoS class of matching packets.
    SetQos(u8),
    /// Mirror matching packets to the CPU (probing support).
    Mirror,
    /// Count only — the default for polling subjects.
    Count,
}

/// A TCAM entry: match pattern + action + priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcamRule {
    pub id: RuleId,
    pub priority: i32,
    pub pattern: FilterFormula,
    pub action: RuleAction,
    pub region: TcamRegion,
}

/// Per-rule traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleStats {
    pub bytes: u64,
    pub packets: u64,
}

/// Errors from TCAM mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcamError {
    /// The target region is full.
    RegionFull(TcamRegion),
    /// No rule matches the given pattern/id.
    NoSuchRule,
}

impl fmt::Display for TcamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcamError::RegionFull(r) => write!(f, "tcam region {r:?} is full"),
            TcamError::NoSuchRule => write!(f, "no such tcam rule"),
        }
    }
}

impl std::error::Error for TcamError {}

/// The TCAM of one switch.
#[derive(Debug, Clone)]
pub struct Tcam {
    capacity: usize,
    monitoring_reserve: usize,
    rules: Vec<TcamRule>,
    stats: HashMap<RuleId, RuleStats>,
    next_id: u64,
}

impl Tcam {
    /// Creates a TCAM with `capacity` total entries, of which
    /// `monitoring_reserve` are set aside for the monitoring region.
    ///
    /// # Panics
    ///
    /// Panics if the reserve exceeds the capacity.
    pub fn new(capacity: usize, monitoring_reserve: usize) -> Tcam {
        assert!(
            monitoring_reserve <= capacity,
            "monitoring reserve exceeds TCAM capacity"
        );
        Tcam {
            capacity,
            monitoring_reserve,
            rules: Vec::new(),
            stats: HashMap::new(),
            next_id: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries available to the given region.
    pub fn region_capacity(&self, region: TcamRegion) -> usize {
        match region {
            TcamRegion::Monitoring => self.monitoring_reserve,
            TcamRegion::Forwarding => self.capacity - self.monitoring_reserve,
        }
    }

    /// Entries currently used by the given region.
    pub fn region_used(&self, region: TcamRegion) -> usize {
        self.rules.iter().filter(|r| r.region == region).count()
    }

    /// Free monitoring entries — the `TCAM` resource seeds consume.
    pub fn monitoring_free(&self) -> usize {
        self.region_capacity(TcamRegion::Monitoring) - self.region_used(TcamRegion::Monitoring)
    }

    /// Installs a rule into a region.
    ///
    /// # Errors
    ///
    /// [`TcamError::RegionFull`] if the region has no free entries.
    pub fn add_rule(
        &mut self,
        region: TcamRegion,
        priority: i32,
        pattern: FilterFormula,
        action: RuleAction,
    ) -> Result<RuleId, TcamError> {
        if self.region_used(region) >= self.region_capacity(region) {
            return Err(TcamError::RegionFull(region));
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.push(TcamRule {
            id,
            priority,
            pattern,
            action,
            region,
        });
        // Highest priority first; stable so equal priorities keep insertion
        // order (deterministic match resolution).
        self.rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
        self.stats.insert(id, RuleStats::default());
        Ok(id)
    }

    /// Removes a rule by id.
    ///
    /// # Errors
    ///
    /// [`TcamError::NoSuchRule`] if the id is not installed.
    pub fn remove_rule(&mut self, id: RuleId) -> Result<TcamRule, TcamError> {
        let pos = self
            .rules
            .iter()
            .position(|r| r.id == id)
            .ok_or(TcamError::NoSuchRule)?;
        self.stats.remove(&id);
        Ok(self.rules.remove(pos))
    }

    /// Removes the first monitoring rule whose pattern equals `pattern`
    /// (the runtime library's `removeTCAMRule(filter)`).
    ///
    /// # Errors
    ///
    /// [`TcamError::NoSuchRule`] if nothing matches.
    pub fn remove_by_pattern(&mut self, pattern: &FilterFormula) -> Result<TcamRule, TcamError> {
        let pos = self
            .rules
            .iter()
            .position(|r| r.region == TcamRegion::Monitoring && &r.pattern == pattern)
            .ok_or(TcamError::NoSuchRule)?;
        let rule = self.rules.remove(pos);
        self.stats.remove(&rule.id);
        Ok(rule)
    }

    /// Looks up a rule by id.
    pub fn rule(&self, id: RuleId) -> Option<&TcamRule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// First monitoring rule with an equal pattern (`getTCAMRule(filter)`).
    pub fn rule_by_pattern(&self, pattern: &FilterFormula) -> Option<&TcamRule> {
        self.rules
            .iter()
            .find(|r| r.region == TcamRegion::Monitoring && &r.pattern == pattern)
    }

    /// All installed rules, highest priority first.
    pub fn rules(&self) -> &[TcamRule] {
        &self.rules
    }

    /// Highest-priority *forwarding* rule matching the flow. Monitoring
    /// rules never influence forwarding — that is the invariant of the
    /// region division.
    pub fn forwarding_match(&self, flow: &FlowKey) -> Option<&TcamRule> {
        self.rules
            .iter()
            .find(|r| r.region == TcamRegion::Forwarding && r.pattern.matches_flow(flow))
    }

    /// Records observed traffic against every matching rule's counters (in
    /// both regions; counting is what monitoring rules are for) and returns
    /// the effective rate limit, if any monitoring rule imposes one.
    pub fn record_traffic(&mut self, flow: &FlowKey, bytes: u64, packets: u64) -> Option<u64> {
        let mut limit = None;
        for r in &self.rules {
            if r.pattern.matches_flow(flow) {
                let s = self.stats.entry(r.id).or_default();
                s.bytes += bytes;
                s.packets += packets;
                if let RuleAction::RateLimit(bps) = r.action {
                    limit = Some(limit.map_or(bps, |l: u64| l.min(bps)));
                }
            }
        }
        limit
    }

    /// Counter snapshot for one rule.
    pub fn stats(&self, id: RuleId) -> Option<RuleStats> {
        self.stats.get(&id).copied()
    }

    /// Iterates `(rule, stats)` for every installed rule.
    pub fn iter_stats(&self) -> impl Iterator<Item = (&TcamRule, RuleStats)> + '_ {
        self.rules
            .iter()
            .map(|r| (r, self.stats.get(&r.id).copied().unwrap_or_default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FilterAtom, Ipv4, Prefix};

    fn pat(dst: &str) -> FilterFormula {
        FilterFormula::Atom(FilterAtom::DstIp(dst.parse::<Prefix>().unwrap()))
    }

    fn flow(dst: Ipv4) -> FlowKey {
        FlowKey::tcp(Ipv4::new(10, 9, 9, 9), 1234, dst, 80)
    }

    #[test]
    fn region_division_is_enforced() {
        let mut t = Tcam::new(10, 4);
        assert_eq!(t.region_capacity(TcamRegion::Monitoring), 4);
        assert_eq!(t.region_capacity(TcamRegion::Forwarding), 6);
        for _ in 0..4 {
            t.add_rule(
                TcamRegion::Monitoring,
                0,
                pat("10.0.0.0/8"),
                RuleAction::Count,
            )
            .unwrap();
        }
        assert_eq!(
            t.add_rule(
                TcamRegion::Monitoring,
                0,
                pat("10.0.0.0/8"),
                RuleAction::Count
            ),
            Err(TcamError::RegionFull(TcamRegion::Monitoring))
        );
        // Forwarding region unaffected by monitoring being full.
        assert!(t
            .add_rule(
                TcamRegion::Forwarding,
                0,
                pat("0.0.0.0/0"),
                RuleAction::Forward(PortId(1))
            )
            .is_ok());
        assert_eq!(t.monitoring_free(), 0);
    }

    #[test]
    fn monitoring_rules_never_affect_forwarding() {
        let mut t = Tcam::new(10, 5);
        t.add_rule(
            TcamRegion::Monitoring,
            100, // even at a higher priority
            pat("10.0.1.0/24"),
            RuleAction::Drop,
        )
        .unwrap();
        let fwd = t
            .add_rule(
                TcamRegion::Forwarding,
                0,
                pat("10.0.0.0/8"),
                RuleAction::Forward(PortId(7)),
            )
            .unwrap();
        let m = t.forwarding_match(&flow(Ipv4::new(10, 0, 1, 5))).unwrap();
        assert_eq!(m.id, fwd);
        assert_eq!(m.action, RuleAction::Forward(PortId(7)));
    }

    #[test]
    fn priority_orders_matches() {
        let mut t = Tcam::new(10, 0);
        t.add_rule(
            TcamRegion::Forwarding,
            1,
            pat("10.0.0.0/8"),
            RuleAction::Forward(PortId(1)),
        )
        .unwrap();
        let hi = t
            .add_rule(
                TcamRegion::Forwarding,
                9,
                pat("10.0.1.0/24"),
                RuleAction::Forward(PortId(2)),
            )
            .unwrap();
        assert_eq!(
            t.forwarding_match(&flow(Ipv4::new(10, 0, 1, 1)))
                .unwrap()
                .id,
            hi
        );
    }

    #[test]
    fn counters_accumulate_per_rule() {
        let mut t = Tcam::new(10, 5);
        let id = t
            .add_rule(
                TcamRegion::Monitoring,
                0,
                pat("10.0.1.0/24"),
                RuleAction::Count,
            )
            .unwrap();
        t.record_traffic(&flow(Ipv4::new(10, 0, 1, 1)), 1500, 1);
        t.record_traffic(&flow(Ipv4::new(10, 0, 1, 2)), 500, 1);
        t.record_traffic(&flow(Ipv4::new(10, 5, 0, 1)), 999, 1); // no match
        let s = t.stats(id).unwrap();
        assert_eq!(s.bytes, 2000);
        assert_eq!(s.packets, 2);
    }

    #[test]
    fn rate_limit_action_reported() {
        let mut t = Tcam::new(10, 5);
        t.add_rule(
            TcamRegion::Monitoring,
            0,
            pat("10.0.1.0/24"),
            RuleAction::RateLimit(1_000_000),
        )
        .unwrap();
        assert_eq!(
            t.record_traffic(&flow(Ipv4::new(10, 0, 1, 1)), 100, 1),
            Some(1_000_000)
        );
        assert_eq!(
            t.record_traffic(&flow(Ipv4::new(10, 9, 1, 1)), 100, 1),
            None
        );
    }

    #[test]
    fn remove_by_pattern_and_get_by_pattern() {
        let mut t = Tcam::new(10, 5);
        let p = pat("10.0.1.0/24");
        t.add_rule(TcamRegion::Monitoring, 0, p.clone(), RuleAction::Count)
            .unwrap();
        assert!(t.rule_by_pattern(&p).is_some());
        t.remove_by_pattern(&p).unwrap();
        assert!(t.rule_by_pattern(&p).is_none());
        assert_eq!(t.remove_by_pattern(&p), Err(TcamError::NoSuchRule));
    }
}
