//! A runnable network: topology plus instantiated switches.

use std::collections::HashMap;

use crate::switch::Switch;
use crate::topology::Topology;
use crate::types::{FlowKey, PortId, SwitchId};

/// One parcel of traffic applied to a switch during a simulation tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficEvent {
    pub switch: SwitchId,
    pub rx_port: Option<PortId>,
    pub tx_port: Option<PortId>,
    pub flow: FlowKey,
    pub bytes: u64,
    pub packets: u64,
}

/// The simulated fabric with live per-switch state.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    switches: HashMap<SwitchId, Switch>,
}

impl Network {
    /// Instantiates one [`Switch`] per topology node.
    pub fn new(topology: Topology) -> Network {
        let switches = topology
            .switches()
            .iter()
            .map(|n| (n.id, Switch::new(n.id, n.model.clone())))
            .collect();
        Network { topology, switches }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared access to a switch.
    pub fn switch(&self, id: SwitchId) -> Option<&Switch> {
        self.switches.get(&id)
    }

    /// Exclusive access to a switch.
    pub fn switch_mut(&mut self, id: SwitchId) -> Option<&mut Switch> {
        self.switches.get_mut(&id)
    }

    /// Iterates all switches in id order.
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        let mut ids: Vec<SwitchId> = self.switches.keys().copied().collect();
        ids.sort();
        ids.into_iter().map(move |id| &self.switches[&id])
    }

    /// Ids of all switches in order.
    pub fn switch_ids(&self) -> Vec<SwitchId> {
        let mut ids: Vec<SwitchId> = self.switches.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Applies a batch of traffic events to the respective switches.
    ///
    /// # Panics
    ///
    /// Panics if an event references an unknown switch.
    pub fn apply_traffic(&mut self, events: &[TrafficEvent]) {
        for e in events {
            let sw = self
                .switches
                .get_mut(&e.switch)
                .unwrap_or_else(|| panic!("traffic for unknown switch {}", e.switch));
            sw.record_traffic(&e.flow, e.rx_port, e.tx_port, e.bytes, e.packets);
        }
    }

    /// Attaches a telemetry handle to every switch (PCIe and polling
    /// instruments); switches added later must be wired individually.
    pub fn set_telemetry(&mut self, telemetry: &farm_telemetry::Telemetry) {
        for sw in self.switches.values_mut() {
            sw.set_telemetry(telemetry.clone());
        }
    }

    /// Resets the per-window meters (CPU, PCIe) of every switch.
    pub fn reset_meters(&mut self) {
        for sw in self.switches.values_mut() {
            sw.reset_meters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::SwitchModel;
    use crate::types::Ipv4;

    #[test]
    fn network_instantiates_every_node() {
        let topo =
            Topology::spine_leaf(2, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let net = Network::new(topo);
        assert_eq!(net.switch_ids().len(), 4);
        for id in net.switch_ids() {
            assert!(net.switch(id).is_some());
        }
    }

    #[test]
    fn traffic_routes_to_the_right_switch() {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let mut net = Network::new(topo);
        let leaf = net.topology().leaves().next().unwrap();
        let flow = FlowKey::tcp(Ipv4::new(10, 1, 0, 1), 1, Ipv4::new(10, 2, 0, 1), 80);
        net.apply_traffic(&[TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: Some(PortId(1)),
            flow,
            bytes: 900,
            packets: 2,
        }]);
        assert_eq!(
            net.switch(leaf).unwrap().port_counters(PortId(1)).tx_bytes,
            900
        );
        let other = net.topology().leaves().nth(1).unwrap();
        assert_eq!(
            net.switch(other).unwrap().port_counters(PortId(1)).tx_bytes,
            0
        );
    }
}
