//! A runnable network: topology plus instantiated switches, including
//! their failure state (down switches, down links, reachability).

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::switch::Switch;
use crate::topology::Topology;
use crate::types::{FlowKey, PortId, SwitchId};

/// One parcel of traffic applied to a switch during a simulation tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficEvent {
    pub switch: SwitchId,
    pub rx_port: Option<PortId>,
    pub tx_port: Option<PortId>,
    pub flow: FlowKey,
    pub bytes: u64,
    pub packets: u64,
}

/// The simulated fabric with live per-switch state.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    switches: HashMap<SwitchId, Switch>,
    /// Switches currently crashed.
    down: BTreeSet<SwitchId>,
    /// Links currently down, stored with endpoints in sorted order.
    links_down: BTreeSet<(SwitchId, SwitchId)>,
    /// Kept so switches recreated after a crash get re-instrumented.
    telemetry: Option<farm_telemetry::Telemetry>,
}

fn link_key(a: SwitchId, b: SwitchId) -> (SwitchId, SwitchId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Instantiates one [`Switch`] per topology node.
    pub fn new(topology: Topology) -> Network {
        let switches = topology
            .switches()
            .iter()
            .map(|n| (n.id, Switch::new(n.id, n.model.clone())))
            .collect();
        Network {
            topology,
            switches,
            down: BTreeSet::new(),
            links_down: BTreeSet::new(),
            telemetry: None,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared access to a switch.
    pub fn switch(&self, id: SwitchId) -> Option<&Switch> {
        self.switches.get(&id)
    }

    /// Exclusive access to a switch.
    pub fn switch_mut(&mut self, id: SwitchId) -> Option<&mut Switch> {
        self.switches.get_mut(&id)
    }

    /// Iterates all switches in id order.
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        let mut ids: Vec<SwitchId> = self.switches.keys().copied().collect();
        ids.sort();
        ids.into_iter().map(move |id| &self.switches[&id])
    }

    /// Ids of all switches in order.
    pub fn switch_ids(&self) -> Vec<SwitchId> {
        let mut ids: Vec<SwitchId> = self.switches.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Applies a batch of traffic events to the respective switches.
    /// Traffic addressed to a crashed switch is silently discarded (the
    /// ASIC is gone; the fabric reroutes around it).
    ///
    /// # Panics
    ///
    /// Panics if an event references an unknown switch.
    pub fn apply_traffic(&mut self, events: &[TrafficEvent]) {
        for e in events {
            if self.down.contains(&e.switch) {
                continue;
            }
            let sw = self
                .switches
                .get_mut(&e.switch)
                .unwrap_or_else(|| panic!("traffic for unknown switch {}", e.switch));
            sw.record_traffic(&e.flow, e.rx_port, e.tx_port, e.bytes, e.packets);
        }
    }

    /// Attaches a telemetry handle to every switch (PCIe and polling
    /// instruments). The handle is retained so switches recreated after a
    /// crash ([`Network::reset_switch`]) stay instrumented.
    pub fn set_telemetry(&mut self, telemetry: &farm_telemetry::Telemetry) {
        self.telemetry = Some(telemetry.clone());
        for sw in self.switches.values_mut() {
            sw.set_telemetry(telemetry.clone());
        }
    }

    /// True when the switch exists and is not crashed.
    pub fn is_up(&self, id: SwitchId) -> bool {
        self.switches.contains_key(&id) && !self.down.contains(&id)
    }

    /// Marks a switch crashed (`up = false`) or restores it. Restoring a
    /// crashed switch resets it cold — ASIC state (TCAM, counters, meters)
    /// from before the crash is lost.
    pub fn set_switch_up(&mut self, id: SwitchId, up: bool) {
        if !self.switches.contains_key(&id) {
            return;
        }
        if up {
            if self.down.remove(&id) {
                self.reset_switch(id);
            }
        } else {
            self.down.insert(id);
        }
    }

    /// Ids of currently crashed switches, in order.
    pub fn down_switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.down.iter().copied()
    }

    /// True when the (undirected) link between `a` and `b` carries traffic.
    pub fn is_link_up(&self, a: SwitchId, b: SwitchId) -> bool {
        !self.links_down.contains(&link_key(a, b))
    }

    /// Takes the link between `a` and `b` down or restores it.
    pub fn set_link_up(&mut self, a: SwitchId, b: SwitchId, up: bool) {
        if up {
            self.links_down.remove(&link_key(a, b));
        } else {
            self.links_down.insert(link_key(a, b));
        }
    }

    /// Links currently down, endpoints sorted.
    pub fn down_links(&self) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
        self.links_down.iter().copied()
    }

    /// True when `id` is up and reachable from at least one up spine over
    /// up links (spines themselves only need to be up). With no spines in
    /// the topology, reachability degenerates to "switch is up".
    pub fn is_reachable(&self, id: SwitchId) -> bool {
        if !self.is_up(id) {
            return false;
        }
        let spines: Vec<SwitchId> = self.topology.spines().filter(|s| self.is_up(*s)).collect();
        if self.topology.spines().next().is_none() {
            return true;
        }
        if spines.is_empty() {
            return false;
        }
        if spines.contains(&id) {
            return true;
        }
        // BFS over up switches and up links from the live spines.
        let mut seen: BTreeSet<SwitchId> = spines.iter().copied().collect();
        let mut queue: VecDeque<SwitchId> = spines.into();
        while let Some(u) = queue.pop_front() {
            for &v in self.topology.neighbors(u) {
                if !self.is_up(v) || !self.is_link_up(u, v) || !seen.insert(v) {
                    continue;
                }
                if v == id {
                    return true;
                }
                queue.push_back(v);
            }
        }
        false
    }

    /// Replaces a switch with a factory-fresh instance of the same model
    /// (cold boot: empty TCAM, zeroed counters and meters), re-attaching
    /// telemetry when configured.
    pub fn reset_switch(&mut self, id: SwitchId) {
        let Some(node) = self.topology.node(id) else {
            return;
        };
        let mut fresh = Switch::new(id, node.model.clone());
        if let Some(t) = &self.telemetry {
            fresh.set_telemetry(t.clone());
        }
        self.switches.insert(id, fresh);
    }

    /// Resets the per-window meters (CPU, PCIe) of every switch.
    pub fn reset_meters(&mut self) {
        for sw in self.switches.values_mut() {
            sw.reset_meters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::SwitchModel;
    use crate::types::Ipv4;

    #[test]
    fn network_instantiates_every_node() {
        let topo =
            Topology::spine_leaf(2, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let net = Network::new(topo);
        assert_eq!(net.switch_ids().len(), 4);
        for id in net.switch_ids() {
            assert!(net.switch(id).is_some());
        }
    }

    #[test]
    fn traffic_routes_to_the_right_switch() {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let mut net = Network::new(topo);
        let leaf = net.topology().leaves().next().unwrap();
        let flow = FlowKey::tcp(Ipv4::new(10, 1, 0, 1), 1, Ipv4::new(10, 2, 0, 1), 80);
        net.apply_traffic(&[TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: Some(PortId(1)),
            flow,
            bytes: 900,
            packets: 2,
        }]);
        assert_eq!(
            net.switch(leaf).unwrap().port_counters(PortId(1)).tx_bytes,
            900
        );
        let other = net.topology().leaves().nth(1).unwrap();
        assert_eq!(
            net.switch(other).unwrap().port_counters(PortId(1)).tx_bytes,
            0
        );
    }

    #[test]
    fn crashed_switch_drops_traffic_and_restarts_cold() {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let mut net = Network::new(topo);
        let leaf = net.topology().leaves().next().unwrap();
        let flow = FlowKey::tcp(Ipv4::new(10, 1, 0, 1), 1, Ipv4::new(10, 2, 0, 1), 80);
        let ev = TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: Some(PortId(1)),
            flow,
            bytes: 500,
            packets: 1,
        };
        net.apply_traffic(std::slice::from_ref(&ev));
        assert_eq!(
            net.switch(leaf).unwrap().port_counters(PortId(1)).tx_bytes,
            500
        );

        net.set_switch_up(leaf, false);
        assert!(!net.is_up(leaf));
        assert_eq!(net.down_switches().collect::<Vec<_>>(), vec![leaf]);
        net.apply_traffic(std::slice::from_ref(&ev));

        net.set_switch_up(leaf, true);
        assert!(net.is_up(leaf));
        // Cold boot: the pre-crash counters are gone.
        assert_eq!(
            net.switch(leaf).unwrap().port_counters(PortId(1)).tx_bytes,
            0
        );
    }

    #[test]
    fn link_state_is_undirected() {
        let topo =
            Topology::spine_leaf(1, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let mut net = Network::new(topo);
        let spine = net.topology().spines().next().unwrap();
        let leaf = net.topology().leaves().next().unwrap();
        assert!(net.is_link_up(spine, leaf));
        net.set_link_up(leaf, spine, false);
        assert!(!net.is_link_up(spine, leaf));
        assert_eq!(net.down_links().count(), 1);
        net.set_link_up(spine, leaf, true);
        assert!(net.is_link_up(leaf, spine));
    }

    #[test]
    fn reachability_follows_up_links_and_switches() {
        let topo =
            Topology::spine_leaf(2, 2, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let mut net = Network::new(topo);
        let spines: Vec<_> = net.topology().spines().collect();
        let leaves: Vec<_> = net.topology().leaves().collect();
        assert!(net.is_reachable(leaves[0]));

        // Cutting one uplink leaves the other spine as a path.
        net.set_link_up(spines[0], leaves[0], false);
        assert!(net.is_reachable(leaves[0]));

        // Cutting both isolates the leaf even though it is up.
        net.set_link_up(spines[1], leaves[0], false);
        assert!(net.is_up(leaves[0]));
        assert!(!net.is_reachable(leaves[0]));
        assert!(net.is_reachable(leaves[1]));

        // A crashed switch is never reachable.
        net.set_switch_up(leaves[1], false);
        assert!(!net.is_reachable(leaves[1]));

        // With every spine down nothing is reachable.
        net.set_link_up(spines[0], leaves[0], true);
        net.set_switch_up(spines[0], false);
        net.set_switch_up(spines[1], false);
        assert!(!net.is_reachable(leaves[0]));
    }
}
