//! Synthetic traffic workloads.
//!
//! The paper evaluates against production SAP traffic; here every scenario
//! is generated synthetically with the statistical features the paper
//! states: heavy hitters affect 1–10 % of ports and the HH ratio changes up
//! to once a minute (§ VI-B), DDoS floods come from many sources, port
//! scans sweep destination ports, and flow sizes follow a Zipf law.
//!
//! A [`Workload`] produces [`TrafficEvent`]s per simulation tick; callers
//! apply them to a [`crate::network::Network`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::network::TrafficEvent;
use crate::time::{Dur, Time};
use crate::types::{FlowKey, Ipv4, PortId, Proto, SwitchId};

/// Typical MTU-sized payload used to derive packet counts from byte rates.
pub const MTU_BYTES: u64 = 1500;

/// A generator of traffic events over virtual time.
pub trait Workload {
    /// Produces the traffic for the tick `[now, now + dt)`.
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent>;
}

/// Bytes carried in a tick of length `dt` at `rate_bps` bits/s.
pub fn bytes_for(rate_bps: u64, dt: Dur) -> u64 {
    (rate_bps as f64 / 8.0 * dt.as_secs_f64()).round() as u64
}

/// Packet count for `bytes` at the given packet size (at least one
/// packet whenever any bytes flow).
pub fn packets_for(bytes: u64, pkt_size: u64) -> u64 {
    bytes.div_ceil(pkt_size).max(u64::from(bytes > 0))
}

/// Configuration of a [`HeavyHitterWorkload`].
#[derive(Debug, Clone)]
pub struct HhConfig {
    /// Switch whose ports carry the traffic (typically a leaf).
    pub switch: SwitchId,
    /// Number of monitored ports.
    pub n_ports: u16,
    /// Fraction of ports that are heavy at any time (paper: 0.01–0.10).
    pub hh_ratio: f64,
    /// How often the heavy set reshuffles (paper: up to once a minute).
    pub churn_interval: Dur,
    /// Byte rate of a normal port, bits/s.
    pub normal_rate_bps: u64,
    /// Byte rate of a heavy port, bits/s.
    pub hh_rate_bps: u64,
    /// RNG seed (workloads are deterministic given the seed).
    pub seed: u64,
}

impl Default for HhConfig {
    fn default() -> Self {
        HhConfig {
            switch: SwitchId(0),
            n_ports: 48,
            hh_ratio: 0.01,
            churn_interval: Dur::from_secs(60),
            normal_rate_bps: 10_000_000, // 10 Mbit/s
            hh_rate_bps: 5_000_000_000,  // 5 Gbit/s
            seed: 7,
        }
    }
}

/// Heavy-hitter traffic on one switch: most ports carry light traffic, a
/// churning subset transmits at heavy rates.
#[derive(Debug)]
pub struct HeavyHitterWorkload {
    cfg: HhConfig,
    heavy: Vec<bool>,
    rng: StdRng,
    next_churn: Time,
    flows: Vec<FlowKey>,
}

impl HeavyHitterWorkload {
    /// Builds the workload and draws the initial heavy set.
    ///
    /// # Panics
    ///
    /// Panics if `hh_ratio` is outside `[0, 1]` or `n_ports` is zero.
    pub fn new(cfg: HhConfig) -> HeavyHitterWorkload {
        assert!((0.0..=1.0).contains(&cfg.hh_ratio), "hh_ratio out of range");
        assert!(cfg.n_ports > 0, "need at least one port");
        let rng = StdRng::seed_from_u64(cfg.seed);
        // One long-lived flow per port: host behind the port sends to a
        // fixed remote address.
        let flows = (0..cfg.n_ports)
            .map(|p| {
                FlowKey::tcp(
                    Ipv4::new(10, 100, (p >> 8) as u8, (p & 0xff) as u8),
                    40_000 + p,
                    Ipv4::new(10, 200, 0, 1),
                    443,
                )
            })
            .collect();
        let mut w = HeavyHitterWorkload {
            heavy: vec![false; cfg.n_ports as usize],
            next_churn: Time::ZERO + cfg.churn_interval,
            flows,
            cfg,
            rng,
        };
        w.reshuffle();
        w
    }

    fn reshuffle(&mut self) {
        let n_heavy = ((self.cfg.n_ports as f64 * self.cfg.hh_ratio).round() as usize).clamp(
            usize::from(self.cfg.hh_ratio > 0.0),
            self.cfg.n_ports as usize,
        );
        let mut idx: Vec<usize> = (0..self.cfg.n_ports as usize).collect();
        idx.shuffle(&mut self.rng);
        self.heavy.iter_mut().for_each(|h| *h = false);
        for &i in idx.iter().take(n_heavy) {
            self.heavy[i] = true;
        }
    }

    /// Ground truth: ports currently transmitting at the heavy rate.
    pub fn heavy_ports(&self) -> Vec<PortId> {
        self.heavy
            .iter()
            .enumerate()
            .filter(|(_, h)| **h)
            .map(|(i, _)| PortId(i as u16))
            .collect()
    }

    /// The flow carried by a port (for TCAM-level assertions in tests).
    pub fn flow_of(&self, port: PortId) -> FlowKey {
        self.flows[port.0 as usize]
    }
}

impl Workload for HeavyHitterWorkload {
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent> {
        while now >= self.next_churn {
            self.reshuffle();
            self.next_churn += self.cfg.churn_interval;
        }
        let mut out = Vec::with_capacity(self.cfg.n_ports as usize);
        for p in 0..self.cfg.n_ports {
            let rate = if self.heavy[p as usize] {
                self.cfg.hh_rate_bps
            } else {
                self.cfg.normal_rate_bps
            };
            let bytes = bytes_for(rate, dt);
            if bytes == 0 {
                continue;
            }
            out.push(TrafficEvent {
                switch: self.cfg.switch,
                rx_port: None,
                tx_port: Some(PortId(p)),
                flow: self.flows[p as usize],
                bytes,
                packets: packets_for(bytes, MTU_BYTES),
            });
        }
        out
    }
}

/// Configuration of a [`DdosWorkload`].
#[derive(Debug, Clone)]
pub struct DdosConfig {
    /// Switch in front of the victim.
    pub switch: SwitchId,
    /// Victim address.
    pub victim: Ipv4,
    /// Port the victim traffic arrives on.
    pub ingress_port: PortId,
    /// Number of attack sources once the attack starts.
    pub n_sources: u32,
    /// Byte rate per attack source, bits/s.
    pub per_source_bps: u64,
    /// Benign background byte rate toward the victim, bits/s.
    pub background_bps: u64,
    /// Attack onset instant.
    pub onset: Time,
    pub seed: u64,
}

impl Default for DdosConfig {
    fn default() -> Self {
        DdosConfig {
            switch: SwitchId(0),
            victim: Ipv4::new(10, 1, 0, 10),
            ingress_port: PortId(0),
            n_sources: 200,
            per_source_bps: 20_000_000,
            background_bps: 50_000_000,
            onset: Time::from_secs(1),
            seed: 11,
        }
    }
}

/// Volumetric DDoS: after onset, many sources flood one victim.
#[derive(Debug)]
pub struct DdosWorkload {
    cfg: DdosConfig,
    sources: Vec<Ipv4>,
}

impl DdosWorkload {
    /// Builds the workload, drawing the attack source addresses.
    pub fn new(cfg: DdosConfig) -> DdosWorkload {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sources = (0..cfg.n_sources)
            .map(|_| Ipv4(rng.random_range(0xC0000000u32..0xC0FFFFFF)))
            .collect();
        DdosWorkload { cfg, sources }
    }

    /// True once the attack is active at `now`.
    pub fn attack_active(&self, now: Time) -> bool {
        now >= self.cfg.onset
    }

    /// The victim address.
    pub fn victim(&self) -> Ipv4 {
        self.cfg.victim
    }
}

impl Workload for DdosWorkload {
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent> {
        let mut out = Vec::new();
        let bg = bytes_for(self.cfg.background_bps, dt);
        if bg > 0 {
            out.push(TrafficEvent {
                switch: self.cfg.switch,
                rx_port: Some(self.cfg.ingress_port),
                tx_port: None,
                flow: FlowKey::tcp(Ipv4::new(10, 50, 0, 1), 55_555, self.cfg.victim, 80),
                bytes: bg,
                packets: packets_for(bg, MTU_BYTES),
            });
        }
        if self.attack_active(now) {
            let per_src = bytes_for(self.cfg.per_source_bps, dt);
            for (i, src) in self.sources.iter().enumerate() {
                if per_src == 0 {
                    break;
                }
                out.push(TrafficEvent {
                    switch: self.cfg.switch,
                    rx_port: Some(self.cfg.ingress_port),
                    tx_port: None,
                    flow: FlowKey::udp(*src, 10_000 + (i as u16 % 50_000), self.cfg.victim, 80),
                    bytes: per_src,
                    packets: packets_for(per_src, 512), // small-ish flood packets
                });
            }
        }
        out
    }
}

/// Configuration of a [`PortScanWorkload`].
#[derive(Debug, Clone)]
pub struct PortScanConfig {
    pub switch: SwitchId,
    pub scanner: Ipv4,
    pub target: Ipv4,
    pub ingress_port: PortId,
    /// Destination ports probed per second.
    pub ports_per_sec: u64,
    /// Scan start.
    pub onset: Time,
}

impl Default for PortScanConfig {
    fn default() -> Self {
        PortScanConfig {
            switch: SwitchId(0),
            scanner: Ipv4::new(192, 0, 2, 66),
            target: Ipv4::new(10, 1, 0, 20),
            ingress_port: PortId(0),
            ports_per_sec: 500,
            onset: Time::ZERO,
        }
    }
}

/// Sequential TCP SYN port scan: one source, one target, many dst ports,
/// 64-byte probes.
#[derive(Debug)]
pub struct PortScanWorkload {
    cfg: PortScanConfig,
    next_port: u16,
    carry: f64,
}

impl PortScanWorkload {
    pub fn new(cfg: PortScanConfig) -> PortScanWorkload {
        PortScanWorkload {
            cfg,
            next_port: 1,
            carry: 0.0,
        }
    }

    /// Number of distinct ports probed so far.
    pub fn ports_probed(&self) -> u16 {
        self.next_port - 1
    }
}

impl Workload for PortScanWorkload {
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent> {
        if now < self.cfg.onset {
            return Vec::new();
        }
        self.carry += self.cfg.ports_per_sec as f64 * dt.as_secs_f64();
        let n = self.carry as u64;
        self.carry -= n as f64;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(TrafficEvent {
                switch: self.cfg.switch,
                rx_port: Some(self.cfg.ingress_port),
                tx_port: None,
                flow: FlowKey {
                    src: self.cfg.scanner,
                    dst: self.cfg.target,
                    proto: Proto::Tcp,
                    src_port: 54_321,
                    dst_port: self.next_port,
                },
                bytes: 64,
                packets: 1,
            });
            self.next_port = self.next_port.wrapping_add(1).max(1);
        }
        out
    }
}

/// Configuration of a [`ZipfFlowWorkload`].
#[derive(Debug, Clone)]
pub struct ZipfConfig {
    pub switch: SwitchId,
    pub n_flows: u32,
    /// Zipf exponent (1.0 ≈ classic internet flow-size skew).
    pub alpha: f64,
    /// Aggregate byte rate across all flows, bits/s.
    pub total_bps: u64,
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            switch: SwitchId(0),
            n_flows: 1000,
            alpha: 1.0,
            total_bps: 10_000_000_000,
            seed: 23,
        }
    }
}

/// Flows with Zipf-distributed rates (for flow-size-distribution and
/// entropy-estimation tasks).
#[derive(Debug)]
pub struct ZipfFlowWorkload {
    cfg: ZipfConfig,
    flows: Vec<(FlowKey, f64)>, // flow, share of total rate
}

impl ZipfFlowWorkload {
    /// Builds the workload; flow `k` (1-based rank) carries a share
    /// `k^-α / Σ j^-α` of the aggregate rate.
    pub fn new(cfg: ZipfConfig) -> ZipfFlowWorkload {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let harmonics: f64 = (1..=cfg.n_flows).map(|k| (k as f64).powf(-cfg.alpha)).sum();
        let flows = (1..=cfg.n_flows)
            .map(|k| {
                let share = (k as f64).powf(-cfg.alpha) / harmonics;
                let flow = FlowKey::tcp(
                    Ipv4(rng.random_range(0x0A000000u32..0x0AFFFFFF)),
                    rng.random_range(1024..65_000),
                    Ipv4(rng.random_range(0x0A000000u32..0x0AFFFFFF)),
                    rng.random_range(1..1024),
                );
                (flow, share)
            })
            .collect();
        ZipfFlowWorkload { cfg, flows }
    }

    /// The flows and their rate shares (descending).
    pub fn flows(&self) -> &[(FlowKey, f64)] {
        &self.flows
    }
}

impl Workload for ZipfFlowWorkload {
    fn advance(&mut self, _now: Time, dt: Dur) -> Vec<TrafficEvent> {
        let total = bytes_for(self.cfg.total_bps, dt) as f64;
        self.flows
            .iter()
            .filter_map(|(flow, share)| {
                let bytes = (total * share).round() as u64;
                (bytes > 0).then(|| TrafficEvent {
                    switch: self.cfg.switch,
                    rx_port: Some(PortId(0)),
                    tx_port: None,
                    flow: *flow,
                    bytes,
                    packets: packets_for(bytes, MTU_BYTES),
                })
            })
            .collect()
    }
}

/// Composition of several workloads into one event stream — the
/// injection point scenario engines use to overlay attack primitives
/// (floods, scans, bursts) onto background traffic. Parts advance in
/// insertion order, so composed traces are deterministic.
#[derive(Default)]
pub struct CompositeWorkload {
    parts: Vec<Box<dyn Workload>>,
}

impl CompositeWorkload {
    pub fn new() -> CompositeWorkload {
        CompositeWorkload::default()
    }

    /// Adds a component workload (builder style).
    pub fn with(mut self, w: Box<dyn Workload>) -> CompositeWorkload {
        self.parts.push(w);
        self
    }

    /// Adds a component workload.
    pub fn push(&mut self, w: Box<dyn Workload>) {
        self.parts.push(w);
    }

    /// Number of composed parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl std::fmt::Debug for CompositeWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompositeWorkload({} parts)", self.parts.len())
    }
}

impl Workload for CompositeWorkload {
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent> {
        let mut out = Vec::new();
        for w in &mut self.parts {
            out.extend(w.advance(now, dt));
        }
        out
    }
}

/// A pre-recorded timed trace replayed on the workload clock: each event
/// is emitted in the tick that covers its timestamp. This is how
/// externally captured or hand-scheduled traces (e.g. sub-ms microburst
/// schedules) are injected through the same path synthetic workloads
/// use.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    /// Time-sorted (stable, so same-instant events keep their order).
    events: Vec<(Time, TrafficEvent)>,
    cursor: usize,
}

impl TraceWorkload {
    pub fn new(mut events: Vec<(Time, TrafficEvent)>) -> TraceWorkload {
        events.sort_by_key(|(t, _)| *t);
        TraceWorkload { events, cursor: 0 }
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl Workload for TraceWorkload {
    fn advance(&mut self, now: Time, dt: Dur) -> Vec<TrafficEvent> {
        let end = now + dt;
        let mut out = Vec::new();
        while let Some((t, e)) = self.events.get(self.cursor) {
            // Late events (before `now`) flush into the current tick
            // rather than being silently dropped.
            if *t >= end {
                break;
            }
            out.push(e.clone());
            self.cursor += 1;
        }
        out
    }
}

/// Runs a workload over `[Time::ZERO, until)` and records the timed
/// event trace it produced — the capture side of [`TraceWorkload`].
pub fn record_trace(w: &mut dyn Workload, until: Time, tick: Dur) -> Vec<(Time, TrafficEvent)> {
    assert!(!tick.is_zero(), "tick must be positive");
    let mut out = Vec::new();
    let mut now = Time::ZERO;
    while now < until {
        let step = tick.min(until.since(now));
        for e in w.advance(now, step) {
            out.push((now, e));
        }
        now += step;
    }
    out
}

/// Deterministic 1-in-N packet sampler (sFlow-style), carrying remainders
/// across ticks so long-run sampling rates are exact.
#[derive(Debug, Clone)]
pub struct PacketSampler {
    rate: u64,
    credit: u64,
}

impl PacketSampler {
    /// Samples one packet in every `rate` packets.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn new(rate: u64) -> PacketSampler {
        assert!(rate > 0, "sampling rate must be positive");
        PacketSampler { rate, credit: 0 }
    }

    /// Number of samples drawn from `packets` observed packets.
    pub fn sample(&mut self, packets: u64) -> u64 {
        self.credit += packets;
        let n = self.credit / self.rate;
        self.credit %= self.rate;
        n
    }

    /// The configured 1-in-N rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hh_workload_has_requested_ratio() {
        let w = HeavyHitterWorkload::new(HhConfig {
            n_ports: 100,
            hh_ratio: 0.1,
            ..Default::default()
        });
        assert_eq!(w.heavy_ports().len(), 10);
    }

    #[test]
    fn hh_rates_separate_heavy_from_normal() {
        let mut w = HeavyHitterWorkload::new(HhConfig {
            n_ports: 10,
            hh_ratio: 0.1,
            ..Default::default()
        });
        let heavy = w.heavy_ports()[0];
        let events = w.advance(Time::ZERO, Dur::from_millis(10));
        let heavy_bytes = events
            .iter()
            .find(|e| e.tx_port == Some(heavy))
            .unwrap()
            .bytes;
        let normal_bytes = events
            .iter()
            .find(|e| e.tx_port != Some(heavy))
            .unwrap()
            .bytes;
        assert!(heavy_bytes > normal_bytes * 100);
    }

    #[test]
    fn hh_churn_reshuffles_heavy_set() {
        let cfg = HhConfig {
            n_ports: 200,
            hh_ratio: 0.05,
            churn_interval: Dur::from_secs(1),
            seed: 3,
            ..Default::default()
        };
        let mut w = HeavyHitterWorkload::new(cfg);
        let before = w.heavy_ports();
        w.advance(Time::from_secs(10), Dur::from_millis(1));
        let after = w.heavy_ports();
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after, "heavy set should churn over 10 s");
    }

    #[test]
    fn hh_determinism_per_seed() {
        let mk = || {
            HeavyHitterWorkload::new(HhConfig {
                n_ports: 64,
                seed: 42,
                ..Default::default()
            })
        };
        assert_eq!(mk().heavy_ports(), mk().heavy_ports());
    }

    #[test]
    fn ddos_starts_at_onset() {
        let mut w = DdosWorkload::new(DdosConfig {
            onset: Time::from_secs(1),
            n_sources: 5,
            ..Default::default()
        });
        let before = w.advance(Time::from_millis(500), Dur::from_millis(100));
        assert_eq!(before.len(), 1, "only background before onset");
        let after = w.advance(Time::from_secs(2), Dur::from_millis(100));
        assert_eq!(after.len(), 6, "background + 5 sources after onset");
        // All attack flows hit the same victim from distinct sources.
        let victims: std::collections::HashSet<_> = after.iter().map(|e| e.flow.dst).collect();
        assert_eq!(victims.len(), 1);
        let sources: std::collections::HashSet<_> = after.iter().map(|e| e.flow.src).collect();
        assert_eq!(sources.len(), 6);
    }

    #[test]
    fn port_scan_sweeps_distinct_ports() {
        let mut w = PortScanWorkload::new(PortScanConfig {
            ports_per_sec: 1000,
            ..Default::default()
        });
        let events = w.advance(Time::ZERO, Dur::from_millis(100));
        assert_eq!(events.len(), 100);
        let ports: std::collections::HashSet<_> = events.iter().map(|e| e.flow.dst_port).collect();
        assert_eq!(ports.len(), 100, "every probe hits a fresh port");
        assert!(events.iter().all(|e| e.bytes == 64));
    }

    #[test]
    fn zipf_shares_sum_to_one_and_are_skewed() {
        let w = ZipfFlowWorkload::new(ZipfConfig {
            n_flows: 100,
            ..Default::default()
        });
        let total: f64 = w.flows().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(w.flows()[0].1 > w.flows()[99].1 * 10.0);
    }

    #[test]
    fn composite_merges_parts_in_order() {
        let mut c = CompositeWorkload::new()
            .with(Box::new(PortScanWorkload::new(PortScanConfig {
                ports_per_sec: 100,
                ..Default::default()
            })))
            .with(Box::new(DdosWorkload::new(DdosConfig {
                onset: Time::ZERO,
                n_sources: 3,
                ..Default::default()
            })));
        assert_eq!(c.len(), 2);
        let events = c.advance(Time::ZERO, Dur::from_millis(100));
        // 10 scan probes, then background + 3 flood sources.
        assert_eq!(events.len(), 14);
        assert!(events[0].bytes == 64, "scan events come first");
    }

    #[test]
    fn trace_workload_replays_by_timestamp() {
        let ev = |ms: u64| {
            (
                Time::from_millis(ms),
                TrafficEvent {
                    switch: SwitchId(0),
                    rx_port: None,
                    tx_port: Some(PortId(0)),
                    flow: FlowKey::tcp(Ipv4::new(1, 1, 1, 1), 1, Ipv4::new(2, 2, 2, 2), 2),
                    bytes: ms,
                    packets: 1,
                },
            )
        };
        // Out of order on purpose: TraceWorkload sorts.
        let mut t = TraceWorkload::new(vec![ev(25), ev(5), ev(15)]);
        assert_eq!(t.remaining(), 3);
        let first = t.advance(Time::ZERO, Dur::from_millis(10));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].bytes, 5);
        let second = t.advance(Time::from_millis(10), Dur::from_millis(10));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].bytes, 15);
        let third = t.advance(Time::from_millis(20), Dur::from_millis(10));
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].bytes, 25);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn recorded_trace_replays_identically() {
        let mk = || {
            HeavyHitterWorkload::new(HhConfig {
                n_ports: 8,
                seed: 9,
                ..Default::default()
            })
        };
        let until = Time::from_millis(100);
        let tick = Dur::from_millis(10);
        let trace = record_trace(&mut mk(), until, tick);
        let mut replay = TraceWorkload::new(trace.clone());
        let mut live = mk();
        let mut now = Time::ZERO;
        while now < until {
            assert_eq!(replay.advance(now, tick), live.advance(now, tick));
            now += tick;
        }
    }

    #[test]
    fn sampler_is_exact_in_the_long_run() {
        let mut s = PacketSampler::new(128);
        let mut total = 0;
        for _ in 0..1000 {
            total += s.sample(100);
        }
        assert_eq!(total, 100_000 / 128);
    }
}
