//! Switch control-plane CPU model.
//!
//! The paper's Fig. 5/6/9 report switch CPU load as a percentage of one
//! core (so a quad-core switch saturates at 400 %). The model accumulates
//! busy nanoseconds charged by seeds/soil/agents over a measurement window,
//! adds context-switch overhead when more runnable tasks than cores exist
//! (the effect behind Fig. 6c's 150 % jump for parallel ML seeds), and
//! reports load as `busy / window · 100`.

use serde::{Deserialize, Serialize};

use crate::time::Dur;

/// Static description of a switch CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical cores.
    pub cores: u32,
    /// Core frequency in Hz (cycles per second per core).
    pub freq_hz: u64,
}

impl CpuSpec {
    /// Intel Xeon 8-core 2.6 GHz (APS BF2556X-1T).
    pub const fn xeon_8c() -> CpuSpec {
        CpuSpec {
            cores: 8,
            freq_hz: 2_600_000_000,
        }
    }

    /// Intel Atom C2538 quad-core 2.4 GHz (Accton AS5712/AS7712).
    pub const fn atom_4c() -> CpuSpec {
        CpuSpec {
            cores: 4,
            freq_hz: 2_400_000_000,
        }
    }

    /// AMD GX-424CC quad-core 2.4 GHz (Arista 7280QRA-C36S).
    pub const fn amd_gx_4c() -> CpuSpec {
        CpuSpec {
            cores: 4,
            freq_hz: 2_400_000_000,
        }
    }

    /// Wall time one core needs to retire `cycles`.
    pub fn time_for_cycles(&self, cycles: u64) -> Dur {
        Dur::from_secs_f64(cycles as f64 / self.freq_hz as f64)
    }
}

/// Default cost of one context switch, in cycles (~5 µs at 2.4 GHz — the
/// usual control-plane ballpark including cache pollution).
pub const CONTEXT_SWITCH_CYCLES: u64 = 12_000;

/// Accumulates CPU busy time over a measurement window.
#[derive(Debug, Clone)]
pub struct CpuMeter {
    spec: CpuSpec,
    busy: Dur,
    context_switches: u64,
    window: Dur,
}

impl CpuMeter {
    /// A meter with a 1-second reporting window.
    pub fn new(spec: CpuSpec) -> CpuMeter {
        CpuMeter {
            spec,
            busy: Dur::ZERO,
            context_switches: 0,
            window: Dur::from_secs(1),
        }
    }

    /// The CPU this meter models.
    pub fn spec(&self) -> CpuSpec {
        self.spec
    }

    /// Sets the measurement window used by [`CpuMeter::load_percent`].
    pub fn set_window(&mut self, window: Dur) {
        assert!(!window.is_zero(), "CPU window must be non-zero");
        self.window = window;
    }

    /// Charges `cycles` of work (converted via the core frequency).
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.busy += self.spec.time_for_cycles(cycles);
    }

    /// Charges an explicit busy span.
    pub fn charge(&mut self, d: Dur) {
        self.busy += d;
    }

    /// Charges `n` context switches at the default per-switch cost.
    pub fn charge_context_switches(&mut self, n: u64) {
        self.context_switches += n;
        self.busy += self.spec.time_for_cycles(n * CONTEXT_SWITCH_CYCLES);
    }

    /// Context-switch overhead for scheduling `tasks` runnable entities
    /// once per scheduling round: below the core count switching is ~free,
    /// above it every surplus task forces a switch.
    pub fn schedule_round(&mut self, tasks: u64) {
        let cores = self.spec.cores as u64;
        if tasks > cores {
            self.charge_context_switches(tasks - cores);
        }
    }

    /// Busy time accumulated in the current window.
    pub fn busy(&self) -> Dur {
        self.busy
    }

    /// Number of context switches charged in the current window.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Load over the window as a percentage of *one core* (a 4-core switch
    /// tops out at 400 %), matching the paper's plots.
    pub fn load_percent(&self) -> f64 {
        self.busy.as_secs_f64() / self.window.as_secs_f64() * 100.0
    }

    /// True when demanded work exceeds what all cores can retire in the
    /// window.
    pub fn saturated(&self) -> bool {
        self.load_percent() > self.spec.cores as f64 * 100.0
    }

    /// Resets counters for the next window.
    pub fn reset(&mut self) {
        self.busy = Dur::ZERO;
        self.context_switches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_convert_to_time() {
        let spec = CpuSpec::atom_4c();
        let d = spec.time_for_cycles(2_400_000_000);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_is_relative_to_one_core() {
        let mut m = CpuMeter::new(CpuSpec::atom_4c());
        m.charge(Dur::from_millis(2500));
        assert!((m.load_percent() - 250.0).abs() < 1e-9);
        assert!(!m.saturated()); // 250% < 400%
        m.charge(Dur::from_millis(2000));
        assert!(m.saturated()); // 450% > 400%
    }

    #[test]
    fn context_switches_kick_in_above_core_count() {
        let mut m = CpuMeter::new(CpuSpec::atom_4c());
        m.schedule_round(4);
        assert_eq!(m.context_switches(), 0);
        m.schedule_round(10);
        assert_eq!(m.context_switches(), 6);
        assert!(m.busy() > Dur::ZERO);
    }

    #[test]
    fn reset_clears_window() {
        let mut m = CpuMeter::new(CpuSpec::xeon_8c());
        m.charge_cycles(1_000_000);
        m.charge_context_switches(3);
        m.reset();
        assert_eq!(m.busy(), Dur::ZERO);
        assert_eq!(m.context_switches(), 0);
        assert_eq!(m.load_percent(), 0.0);
    }

    #[test]
    fn window_scales_load() {
        let mut m = CpuMeter::new(CpuSpec::atom_4c());
        m.set_window(Dur::from_millis(100));
        m.charge(Dur::from_millis(50));
        assert!((m.load_percent() - 50.0).abs() < 1e-9);
    }
}
