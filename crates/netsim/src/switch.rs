//! Switch model: ports with counters, TCAM, control-plane CPU and PCIe bus.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cpu::{CpuMeter, CpuSpec};
use crate::pcie::{PcieBus, PcieSpec};
use crate::tcam::Tcam;
use crate::time::Dur;
use crate::types::{FlowKey, PortId, PortSel, SwitchId};

/// Resource types tracked by the soil and optimized by the seeder —
/// the set `R` of the paper's optimization model (Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Virtual CPU cores available to seeds.
    VCpu,
    /// Control-plane RAM in megabytes.
    RamMb,
    /// Free monitoring TCAM entries.
    TcamEntries,
    /// Statistics-polling capacity over PCIe, in polls/second — the
    /// special `r_poll` resource subject to aggregation (§ IV-B).
    PciePoll,
}

impl ResourceKind {
    /// All resource kinds in canonical order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::VCpu,
        ResourceKind::RamMb,
        ResourceKind::TcamEntries,
        ResourceKind::PciePoll,
    ];

    /// Canonical index of this kind (stable across the workspace).
    pub fn index(self) -> usize {
        match self {
            ResourceKind::VCpu => 0,
            ResourceKind::RamMb => 1,
            ResourceKind::TcamEntries => 2,
            ResourceKind::PciePoll => 3,
        }
    }

    /// Field name as it appears in Almanac's `res()` structure.
    pub fn field_name(self) -> &'static str {
        match self {
            ResourceKind::VCpu => "vCPU",
            ResourceKind::RamMb => "RAM",
            ResourceKind::TcamEntries => "TCAM",
            ResourceKind::PciePoll => "PCIe",
        }
    }

    /// Parses an Almanac `res()` field name.
    pub fn from_field_name(s: &str) -> Option<ResourceKind> {
        ResourceKind::ALL.into_iter().find(|k| k.field_name() == s)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.field_name())
    }
}

/// A vector of resource amounts, one per [`ResourceKind`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources(pub [f64; 4]);

impl Resources {
    /// All-zero resources.
    pub const ZERO: Resources = Resources([0.0; 4]);

    /// Builds from explicit amounts.
    pub fn new(vcpu: f64, ram_mb: f64, tcam: f64, pcie_poll: f64) -> Resources {
        Resources([vcpu, ram_mb, tcam, pcie_poll])
    }

    /// Amount of one kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.0[kind.index()]
    }

    /// Sets the amount of one kind.
    pub fn set(&mut self, kind: ResourceKind, v: f64) {
        self.0[kind.index()] = v;
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Resources) -> Resources {
        let mut out = *self;
        for i in 0..4 {
            out.0[i] += other.0[i];
        }
        out
    }

    /// Component-wise difference clamped at zero.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        let mut out = *self;
        for i in 0..4 {
            out.0[i] = (out.0[i] - other.0[i]).max(0.0);
        }
        out
    }

    /// True if every component of `self` is ≤ the matching component of
    /// `other` (within `1e-9`).
    pub fn fits_within(&self, other: &Resources) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(a, b)| *a <= *b + 1e-9)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vCPU={:.2} RAM={:.0}MB TCAM={:.0} PCIe={:.1}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Static description of a switch platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchModel {
    pub name: String,
    pub cpu: CpuSpec,
    pub ram_mb: u64,
    pub tcam_capacity: usize,
    /// Entries reserved for the monitoring TCAM region.
    pub tcam_monitoring_reserve: usize,
    pub pcie: PcieSpec,
    pub num_ports: u16,
}

impl SwitchModel {
    /// APS BF2556X-1T: Tofino ASIC, Xeon 8-core, 32 GB (platform (i)).
    pub fn aps_bf2556x() -> SwitchModel {
        SwitchModel {
            name: "APS BF2556X-1T".into(),
            cpu: CpuSpec::xeon_8c(),
            ram_mb: 32 * 1024,
            tcam_capacity: 4096,
            tcam_monitoring_reserve: 1024,
            pcie: PcieSpec::measured(),
            num_ports: 56,
        }
    }

    /// Accton AS5712: Atom quad-core, 8 GB (platform (ii)).
    pub fn accton_as5712() -> SwitchModel {
        SwitchModel {
            name: "Accton AS5712".into(),
            cpu: CpuSpec::atom_4c(),
            ram_mb: 8 * 1024,
            tcam_capacity: 2048,
            tcam_monitoring_reserve: 512,
            pcie: PcieSpec::measured(),
            num_ports: 54,
        }
    }

    /// Accton AS7712: like the AS5712 with twice the RAM (platform (iii)).
    pub fn accton_as7712() -> SwitchModel {
        SwitchModel {
            name: "Accton AS7712".into(),
            ram_mb: 16 * 1024,
            ..SwitchModel::accton_as5712()
        }
    }

    /// Arista 7280QRA-C36S: AMD quad-core, 8 GB (platform (iv)).
    pub fn arista_7280qra() -> SwitchModel {
        SwitchModel {
            name: "Arista 7280QRA-C36S".into(),
            cpu: CpuSpec::amd_gx_4c(),
            ram_mb: 8 * 1024,
            tcam_capacity: 2048,
            tcam_monitoring_reserve: 512,
            pcie: PcieSpec::measured(),
            num_ports: 36,
        }
    }

    /// A tiny model for unit tests.
    pub fn test_model(num_ports: u16) -> SwitchModel {
        SwitchModel {
            name: "test".into(),
            cpu: CpuSpec::atom_4c(),
            ram_mb: 1024,
            tcam_capacity: 64,
            tcam_monitoring_reserve: 32,
            pcie: PcieSpec::measured(),
            num_ports,
        }
    }

    /// Total resources the platform offers to monitoring (the `ares(n, r)`
    /// input of the optimization model).
    pub fn total_resources(&self) -> Resources {
        Resources::new(
            self.cpu.cores as f64,
            self.ram_mb as f64,
            self.tcam_monitoring_reserve as f64,
            // Polling capacity in poll operations per second: each poll
            // transfers ~POLL_STAT_BYTES over the PCIe polling budget.
            self.pcie.poll_capacity_bps as f64 / (POLL_STAT_BYTES as f64 * 8.0),
        )
    }
}

/// Bytes transferred over PCIe per polled counter (a raw counter read,
/// not a full export record).
pub const POLL_STAT_BYTES: u64 = 16;

/// Per-port traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounters {
    pub tx_bytes: u64,
    pub rx_bytes: u64,
    pub tx_packets: u64,
    pub rx_packets: u64,
}

/// Snapshot of one port's counters, as returned by a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStat {
    pub port: PortId,
    pub counters: PortCounters,
}

/// A simulated switch: ASIC state (ports, TCAM) plus control-plane
/// accounting (CPU, PCIe).
#[derive(Debug, Clone)]
pub struct Switch {
    id: SwitchId,
    model: SwitchModel,
    ports: Vec<PortCounters>,
    tcam: Tcam,
    cpu: CpuMeter,
    pcie: PcieBus,
    telemetry: Option<farm_telemetry::Telemetry>,
}

impl Switch {
    /// Instantiates a switch of the given platform.
    pub fn new(id: SwitchId, model: SwitchModel) -> Switch {
        let tcam = Tcam::new(model.tcam_capacity, model.tcam_monitoring_reserve);
        let cpu = CpuMeter::new(model.cpu);
        let pcie = PcieBus::new(model.pcie);
        let ports = vec![PortCounters::default(); model.num_ports as usize];
        Switch {
            id,
            model,
            ports,
            tcam,
            cpu,
            pcie,
            telemetry: None,
        }
    }

    pub fn id(&self) -> SwitchId {
        self.id
    }

    pub fn model(&self) -> &SwitchModel {
        &self.model
    }

    pub fn tcam(&self) -> &Tcam {
        &self.tcam
    }

    pub fn tcam_mut(&mut self) -> &mut Tcam {
        &mut self.tcam
    }

    pub fn cpu(&self) -> &CpuMeter {
        &self.cpu
    }

    pub fn cpu_mut(&mut self) -> &mut CpuMeter {
        &mut self.cpu
    }

    pub fn pcie(&self) -> &PcieBus {
        &self.pcie
    }

    pub fn pcie_mut(&mut self) -> &mut PcieBus {
        &mut self.pcie
    }

    /// Attaches a telemetry handle: PCIe requests and port/rule polls on
    /// this switch start updating `pcie.*`/`switch.*` instruments.
    pub fn set_telemetry(&mut self, telemetry: farm_telemetry::Telemetry) {
        self.telemetry = Some(telemetry.clone());
        self.pcie.set_telemetry(telemetry, self.id.0);
    }

    /// Number of physical ports.
    pub fn num_ports(&self) -> u16 {
        self.model.num_ports
    }

    /// Free resources currently available to monitoring.
    pub fn available_resources(&self) -> Resources {
        let mut r = self.model.total_resources();
        r.set(
            ResourceKind::TcamEntries,
            self.tcam.monitoring_free() as f64,
        );
        r
    }

    /// Nominal platform resources scaled by live fault state: PCIe-poll
    /// capacity shrinks with the bus's injected degradation factor. This
    /// is the budget placement and shedding should plan against.
    pub fn effective_resources(&self) -> Resources {
        let mut r = self.model.total_resources();
        r.set(
            ResourceKind::PciePoll,
            r.get(ResourceKind::PciePoll) * self.pcie.degradation(),
        );
        r
    }

    /// Records traffic of `flow` entering on `rx_port` and leaving on
    /// `tx_port`, updating port and TCAM counters. Either port may be
    /// `None` for traffic originating/terminating off-fabric.
    ///
    /// # Panics
    ///
    /// Panics if a port id is out of range for this switch.
    pub fn record_traffic(
        &mut self,
        flow: &FlowKey,
        rx_port: Option<PortId>,
        tx_port: Option<PortId>,
        bytes: u64,
        packets: u64,
    ) {
        if let Some(p) = rx_port {
            let c = &mut self.ports[p.0 as usize];
            c.rx_bytes += bytes;
            c.rx_packets += packets;
        }
        if let Some(p) = tx_port {
            let c = &mut self.ports[p.0 as usize];
            c.tx_bytes += bytes;
            c.tx_packets += packets;
        }
        self.tcam.record_traffic(flow, bytes, packets);
    }

    /// Raw counters of one port.
    ///
    /// # Panics
    ///
    /// Panics if the port id is out of range.
    pub fn port_counters(&self, port: PortId) -> PortCounters {
        self.ports[port.0 as usize]
    }

    /// Polls port statistics over the PCIe bus, charging its bandwidth.
    /// Returns the snapshots and the transfer latency.
    pub fn poll_ports(&mut self, sel: PortSel) -> (Vec<PortStat>, Dur) {
        let stats: Vec<PortStat> = match sel {
            PortSel::Any => self
                .ports
                .iter()
                .enumerate()
                .map(|(i, c)| PortStat {
                    port: PortId(i as u16),
                    counters: *c,
                })
                .collect(),
            PortSel::Id(i) => vec![PortStat {
                port: PortId(i),
                counters: self.ports[i as usize],
            }],
        };
        let latency = self.pcie.request(stats.len() as u64 * POLL_STAT_BYTES);
        if let Some(t) = &self.telemetry {
            t.counter("switch.port_polls").inc();
            t.counter("switch.port_stats_read").add(stats.len() as u64);
        }
        (stats, latency)
    }

    /// Polls every monitoring-region TCAM rule's counters over PCIe.
    /// Returns `(rule id, stats)` pairs and the transfer latency.
    pub fn poll_monitoring_rules(
        &mut self,
    ) -> (Vec<(crate::tcam::RuleId, crate::tcam::RuleStats)>, Dur) {
        let stats: Vec<_> = self
            .tcam
            .iter_stats()
            .filter(|(r, _)| r.region == crate::tcam::TcamRegion::Monitoring)
            .map(|(r, s)| (r.id, s))
            .collect();
        let latency = self
            .pcie
            .request(stats.len().max(1) as u64 * POLL_STAT_BYTES);
        if let Some(t) = &self.telemetry {
            t.counter("switch.rule_polls").inc();
            t.counter("switch.rule_stats_read").add(stats.len() as u64);
        }
        (stats, latency)
    }

    /// Resets per-window meters (CPU, PCIe) — counters persist.
    pub fn reset_meters(&mut self) {
        self.cpu.reset();
        self.pcie.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcam::{RuleAction, TcamRegion};
    use crate::types::{FilterAtom, FilterFormula, Ipv4, Prefix};

    fn test_switch() -> Switch {
        Switch::new(SwitchId(0), SwitchModel::test_model(4))
    }

    fn a_flow() -> FlowKey {
        FlowKey::tcp(Ipv4::new(10, 1, 0, 1), 999, Ipv4::new(10, 2, 0, 1), 80)
    }

    #[test]
    fn traffic_updates_port_and_tcam_counters() {
        let mut sw = test_switch();
        sw.tcam_mut()
            .add_rule(
                TcamRegion::Monitoring,
                0,
                FilterFormula::Atom(FilterAtom::DstIp(Prefix::new(Ipv4::new(10, 2, 0, 0), 16))),
                RuleAction::Count,
            )
            .unwrap();
        sw.record_traffic(&a_flow(), Some(PortId(0)), Some(PortId(1)), 1500, 1);
        assert_eq!(sw.port_counters(PortId(0)).rx_bytes, 1500);
        assert_eq!(sw.port_counters(PortId(1)).tx_bytes, 1500);
        let (rules, _) = sw.poll_monitoring_rules();
        assert_eq!(rules[0].1.bytes, 1500);
    }

    #[test]
    fn polling_charges_pcie() {
        let mut sw = test_switch();
        let before = sw.pcie().bytes_requested();
        let (stats, latency) = sw.poll_ports(PortSel::Any);
        assert_eq!(stats.len(), 4);
        assert_eq!(sw.pcie().bytes_requested() - before, 4 * POLL_STAT_BYTES);
        assert!(latency > Dur::ZERO);
    }

    #[test]
    fn poll_single_port() {
        let mut sw = test_switch();
        sw.record_traffic(&a_flow(), None, Some(PortId(2)), 100, 1);
        let (stats, _) = sw.poll_ports(PortSel::Id(2));
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].counters.tx_bytes, 100);
    }

    #[test]
    fn available_resources_track_tcam_usage() {
        let mut sw = test_switch();
        let before = sw.available_resources().get(ResourceKind::TcamEntries);
        sw.tcam_mut()
            .add_rule(
                TcamRegion::Monitoring,
                0,
                FilterFormula::True,
                RuleAction::Count,
            )
            .unwrap();
        let after = sw.available_resources().get(ResourceKind::TcamEntries);
        assert_eq!(before - after, 1.0);
    }

    #[test]
    fn effective_resources_shrink_with_pcie_degradation() {
        let mut sw = test_switch();
        let nominal = sw.effective_resources().get(ResourceKind::PciePoll);
        assert_eq!(
            nominal,
            sw.model().total_resources().get(ResourceKind::PciePoll)
        );
        sw.pcie_mut().set_degradation(0.5);
        let degraded = sw.effective_resources().get(ResourceKind::PciePoll);
        assert!((degraded - nominal * 0.5).abs() < 1e-9);
        // Other kinds are untouched.
        assert_eq!(
            sw.effective_resources().get(ResourceKind::VCpu),
            sw.model().total_resources().get(ResourceKind::VCpu)
        );
    }

    #[test]
    fn platform_models_match_paper_specs() {
        assert_eq!(SwitchModel::aps_bf2556x().cpu.cores, 8);
        assert_eq!(SwitchModel::accton_as5712().ram_mb, 8 * 1024);
        assert_eq!(
            SwitchModel::accton_as7712().ram_mb,
            2 * SwitchModel::accton_as5712().ram_mb
        );
        assert_eq!(SwitchModel::arista_7280qra().num_ports, 36);
    }

    #[test]
    fn resources_vector_ops() {
        let a = Resources::new(2.0, 100.0, 10.0, 5.0);
        let b = Resources::new(1.0, 50.0, 20.0, 1.0);
        assert_eq!(a.add(&b).get(ResourceKind::VCpu), 3.0);
        let d = a.saturating_sub(&b);
        assert_eq!(d.get(ResourceKind::TcamEntries), 0.0);
        assert!(b.fits_within(&Resources::new(1.0, 50.0, 20.0, 1.0)));
        assert!(!a.fits_within(&b));
    }

    #[test]
    fn field_names_round_trip() {
        for k in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_field_name(k.field_name()), Some(k));
        }
        assert_eq!(ResourceKind::from_field_name("bogus"), None);
    }
}
