//! Microbenchmark of the dense simplex pivot loop.
//!
//! Guards the scratch-row pivot optimization: each fixture's optimum is
//! asserted inside the measured closure, so a run that regresses the
//! *answers* fails loudly, and the criterion report catches wall-time
//! regressions on the pivot-heavy instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use farm_lp::{Cmp, LinExpr, Problem, Sense};
use std::hint::black_box;

/// A dense-ish random LP with `n` variables and `n` constraints — the
/// same generator family as `crates/bench/benches/solver.rs`.
fn random_lp(n: usize, seed: u64) -> Problem {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_var(format!("x{i}"), 0.0, 10.0 + next() * 10.0))
        .collect();
    for _ in 0..n {
        let mut e = LinExpr::new();
        for &v in &vars {
            if next() < 0.4 {
                e.add_term(v, next() * 3.0);
            }
        }
        p.add_constraint(e, Cmp::Le, 5.0 + next() * 50.0);
    }
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj.add_term(v, next() * 10.0 - 2.0);
    }
    p.set_objective(obj);
    p
}

/// A transportation-style LP whose equality rows force phase-1 pivots
/// and the artificial drive-out path.
fn transport_lp(m: usize, n: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut x = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            x.push(p.add_var(format!("x{i}_{j}"), 0.0, f64::INFINITY));
        }
    }
    for i in 0..m {
        let mut row = LinExpr::new();
        for j in 0..n {
            row.add_term(x[i * n + j], 1.0);
        }
        p.add_constraint(row, Cmp::Eq, (10 + (i * 3) % 7) as f64);
    }
    let supply: f64 = (0..m).map(|i| (10 + (i * 3) % 7) as f64).sum();
    for j in 0..n {
        let mut col = LinExpr::new();
        for i in 0..m {
            col.add_term(x[i * n + j], 1.0);
        }
        p.add_constraint(col, Cmp::Le, supply / n as f64 + 2.0);
    }
    let mut obj = LinExpr::new();
    for i in 0..m {
        for j in 0..n {
            obj.add_term(x[i * n + j], ((i * 5 + j * 11) % 13 + 1) as f64);
        }
    }
    p.set_objective(obj);
    p
}

fn bench_pivots(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_pivots");
    g.sample_size(20);
    for n in [20usize, 60, 120] {
        let p = random_lp(n, 7);
        let expected = farm_lp::simplex::solve(&p).unwrap().objective;
        g.bench_with_input(BenchmarkId::new("random", n), &p, |b, p| {
            b.iter(|| {
                let s = black_box(farm_lp::simplex::solve(p).unwrap());
                assert!((s.objective - expected).abs() < 1e-6, "fixture drifted");
                s
            })
        });
    }
    for (m, n) in [(12usize, 12usize), (24, 24)] {
        let p = transport_lp(m, n);
        let expected = farm_lp::simplex::solve(&p).unwrap().objective;
        g.bench_with_input(
            BenchmarkId::new("transport", format!("{m}x{n}")),
            &p,
            |b, p| {
                b.iter(|| {
                    let s = black_box(farm_lp::simplex::solve(p).unwrap());
                    assert!((s.objective - expected).abs() < 1e-6, "fixture drifted");
                    s
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pivots);
criterion_main!(benches);
