//! Solver results and errors.

use std::fmt;

/// Outcome class of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration or time limit was reached before convergence.
    Limit,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::Limit => "limit reached",
        };
        f.write_str(s)
    }
}

/// A successful LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Always [`Status::Optimal`] for solutions returned by the simplex.
    pub status: Status,
    /// Value per variable, indexed by [`crate::Var::index`].
    pub values: Vec<f64>,
    /// Objective value (including the problem's objective constant).
    pub objective: f64,
}

impl Solution {
    /// Value of a single variable.
    pub fn value(&self, var: crate::Var) -> f64 {
        self.values[var.index()]
    }
}

/// Failure to produce a solution.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded in the optimization direction.
    Unbounded,
    /// Iteration cap or deadline hit before convergence.
    LimitReached,
    /// The model is malformed (e.g. NaN coefficient).
    BadModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::LimitReached => write!(f, "iteration or time limit reached"),
            SolveError::BadModel(m) => write!(f, "malformed model: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}
