//! Linear and mixed-integer linear programming for FARM's placement optimizer.
//!
//! The FARM paper (ICDCS 2024, § IV-D and § V-B) solves its seed-placement
//! model with an off-the-shelf MILP library and compares against Gurobi.
//! Neither is available offline, so this crate provides the solver substrate
//! from scratch:
//!
//! * [`Problem`] — a small modelling API (variables with bounds and
//!   integrality, linear constraints, linear objective),
//! * [`simplex`] — a dense two-phase primal simplex for linear programs,
//! * [`milp`] — branch & bound with a time budget, rounding-based primal
//!   heuristics and incumbent reporting, mirroring the "Gurobi with a 1 s /
//!   10 min timeout" regimes of the paper's Fig. 7.
//!
//! # Example
//!
//! ```
//! use farm_lp::{Problem, Sense, Cmp};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, 10.0);
//! let y = p.add_var("y", 0.0, 10.0);
//! p.add_constraint(x + y, Cmp::Le, 12.0);
//! p.add_constraint(2.0 * x + y, Cmp::Le, 18.0);
//! p.set_objective(3.0 * x + 2.0 * y);
//! let sol = farm_lp::simplex::solve(&p).expect("solvable");
//! assert!((sol.objective - 30.0).abs() < 1e-6);
//! ```

pub mod expr;
pub mod milp;
pub mod problem;
pub mod simplex;
pub mod solution;
pub mod trace;

pub use expr::{LinExpr, Var};
pub use milp::{solve_milp, MilpOptions, MilpResult, MilpStatus};
pub use problem::{Cmp, Problem, Sense, VarKind};
pub use solution::{Solution, SolveError, Status};
pub use trace::{record_phase, solve_milp_traced, solve_traced};

/// Numerical tolerance used throughout the solver for feasibility and
/// integrality tests.
pub const EPS: f64 = 1e-7;
