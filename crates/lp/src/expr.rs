//! Linear expressions over solver variables.
//!
//! [`Var`] is an opaque handle returned by [`crate::Problem`]; [`LinExpr`]
//! is an affine combination of variables built with ordinary `+`, `-` and
//! `*` operators:
//!
//! ```
//! use farm_lp::{Problem, Sense};
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, 1.0);
//! let y = p.add_var("y", 0.0, 1.0);
//! let e = 2.0 * x - y + 1.0;
//! assert_eq!(e.coefficient(x), 2.0);
//! assert_eq!(e.constant(), 1.0);
//! ```

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Handle to a decision variable of a [`crate::Problem`].
///
/// Handles are only meaningful for the problem that created them; using a
/// handle with a different problem is detected at solve time when the index
/// is out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Raw column index of this variable inside its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An affine expression `Σ cᵢ·xᵢ + k`.
///
/// Duplicate variables are merged; zero coefficients are kept out of the
/// term map so `terms()` only yields structurally present variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<Var, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// A constant expression with no variables.
    pub fn constant_expr(k: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: k,
        }
    }

    /// Adds `coeff · var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var);
        }
        self
    }

    /// Coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: Var) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The additive constant `k`.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Sets the additive constant.
    pub fn set_constant(&mut self, k: f64) {
        self.constant = k;
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variables with a non-zero coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression is a bare constant.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for a full assignment of problem variables.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }

    /// Multiplies every coefficient and the constant by `k` in place.
    pub fn scale(&mut self, k: f64) {
        if k == 0.0 {
            self.terms.clear();
            self.constant = 0.0;
            return;
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(k: f64) -> Self {
        LinExpr::constant_expr(k)
    }
}

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl SubAssign<LinExpr> for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

macro_rules! impl_binop {
    ($lhs:ty, $rhs:ty) => {
        impl Add<$rhs> for $lhs {
            type Output = LinExpr;
            fn add(self, rhs: $rhs) -> LinExpr {
                let mut e: LinExpr = self.into();
                e += rhs.into();
                e
            }
        }
        impl Sub<$rhs> for $lhs {
            type Output = LinExpr;
            fn sub(self, rhs: $rhs) -> LinExpr {
                let mut e: LinExpr = self.into();
                e -= rhs.into();
                e
            }
        }
    };
}

impl_binop!(LinExpr, LinExpr);
impl_binop!(LinExpr, Var);
impl_binop!(LinExpr, f64);
impl_binop!(Var, LinExpr);
impl_binop!(Var, Var);
impl_binop!(Var, f64);
impl_binop!(f64, LinExpr);
impl_binop!(f64, Var);

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(self, k);
        e
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, v: Var) -> LinExpr {
        v * self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        self.scale(k);
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, mut e: LinExpr) -> LinExpr {
        e.scale(self);
        e
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for e in iter {
            acc += e;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var(i)
    }

    #[test]
    fn merges_duplicate_terms() {
        let e = v(0) + v(0) + 1.0;
        assert_eq!(e.coefficient(v(0)), 2.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.constant(), 1.0);
    }

    #[test]
    fn cancelled_terms_are_removed() {
        let e = v(1) - v(1);
        assert!(e.is_empty());
        assert_eq!(e.coefficient(v(1)), 0.0);
    }

    #[test]
    fn scaling_and_negation() {
        let e = 2.0 * v(0) + 3.0;
        let d = -e.clone();
        assert_eq!(d.coefficient(v(0)), -2.0);
        assert_eq!(d.constant(), -3.0);
        let s = e * 0.0;
        assert!(s.is_empty());
        assert_eq!(s.constant(), 0.0);
    }

    #[test]
    fn eval_matches_manual_computation() {
        let e = 2.0 * v(0) - 0.5 * v(2) + 4.0;
        let vals = [1.0, 99.0, 2.0];
        assert_eq!(e.eval(&vals), 2.0 - 1.0 + 4.0);
    }

    #[test]
    fn sum_of_expressions() {
        let total: LinExpr = (0..4).map(|i| LinExpr::from(v(i)) * (i as f64)).sum();
        assert_eq!(total.coefficient(v(3)), 3.0);
        assert_eq!(total.coefficient(v(0)), 0.0);
    }
}
