//! Problem modelling: variables, constraints, objective.

use crate::expr::{LinExpr, Var};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    Maximize,
    Minimize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// Integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binary variables use bounds `[0,1]`).
    Integer,
}

/// Definition of a single decision variable.
#[derive(Debug, Clone)]
pub struct VarDef {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub kind: VarKind,
}

/// A single linear constraint in `coeffs · x  cmp  rhs` form.
#[derive(Debug, Clone)]
pub struct ConstraintDef {
    pub coeffs: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

impl ConstraintDef {
    /// Signed violation of the constraint at `values` (0 when satisfied).
    pub fn violation(&self, values: &[f64]) -> f64 {
        let lhs: f64 = self.coeffs.iter().map(|&(i, c)| c * values[i]).sum();
        match self.cmp {
            Cmp::Le => (lhs - self.rhs).max(0.0),
            Cmp::Ge => (self.rhs - lhs).max(0.0),
            Cmp::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// A linear or mixed-integer linear program.
///
/// Build with [`Problem::add_var`] / [`Problem::add_constraint`] /
/// [`Problem::set_objective`], then solve with [`crate::simplex::solve`]
/// (LP relaxation — integrality is ignored) or [`crate::solve_milp`].
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    vars: Vec<VarDef>,
    constraints: Vec<ConstraintDef>,
    objective: Vec<f64>,
    objective_constant: f64,
}

impl Problem {
    /// Creates an empty problem optimizing in the given direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            objective_constant: 0.0,
        }
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a continuous variable with inclusive bounds `[lower, upper]`.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` for free sides.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var_kind(name, lower, upper, VarKind::Continuous)
    }

    /// Adds a continuous variable without a debug name.
    ///
    /// Variable names are only ever read by humans (no solver path
    /// consults them); model builders on hot paths use this to skip the
    /// per-variable `String` formatting and allocation.
    pub fn add_var_unnamed(&mut self, lower: f64, upper: f64) -> Var {
        self.add_var_kind(String::new(), lower, upper, VarKind::Continuous)
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var_kind(name, 0.0, 1.0, VarKind::Integer)
    }

    /// Clears the problem back to an empty model with the given sense,
    /// retaining the variable/constraint buffers' capacity. Lets callers
    /// that solve many small LPs in a loop reuse one `Problem` as an
    /// arena instead of reallocating per model.
    pub fn reset(&mut self, sense: Sense) {
        self.sense = sense;
        self.vars.clear();
        self.constraints.clear();
        self.objective.clear();
        self.objective_constant = 0.0;
    }

    /// Adds a general integer variable with inclusive bounds.
    pub fn add_integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.add_var_kind(name, lower, upper, VarKind::Integer)
    }

    fn add_var_kind(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        kind: VarKind,
    ) -> Var {
        assert!(!lower.is_nan() && !upper.is_nan(), "variable bound is NaN");
        assert!(lower <= upper, "variable lower bound exceeds upper bound");
        let idx = self.vars.len();
        self.vars.push(VarDef {
            name: name.into(),
            lower,
            upper,
            kind,
        });
        self.objective.push(0.0);
        Var(idx)
    }

    /// Adds the constraint `lhs cmp rhs`.
    ///
    /// Any constant inside `lhs` is moved to the right-hand side, so
    /// `add_constraint(x + 1.0, Cmp::Le, 3.0)` stores `x ≤ 2`.
    pub fn add_constraint(&mut self, lhs: impl Into<LinExpr>, cmp: Cmp, rhs: f64) {
        let lhs = lhs.into();
        let coeffs: Vec<(usize, f64)> = lhs.terms().map(|(v, c)| (v.0, c)).collect();
        for &(i, _) in &coeffs {
            assert!(i < self.vars.len(), "constraint uses unknown variable");
        }
        self.constraints.push(ConstraintDef {
            coeffs,
            cmp,
            rhs: rhs - lhs.constant(),
        });
    }

    /// Sets the objective to optimize (replacing any previous one).
    ///
    /// A constant term is kept and added to reported objective values.
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        let expr = expr.into();
        self.objective = vec![0.0; self.vars.len()];
        for (v, c) in expr.terms() {
            assert!(v.0 < self.vars.len(), "objective uses unknown variable");
            self.objective[v.0] = c;
        }
        self.objective_constant = expr.constant();
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable definitions, indexed by [`Var::index`].
    pub fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    /// Constraint definitions.
    pub fn constraints(&self) -> &[ConstraintDef] {
        &self.constraints
    }

    /// Objective coefficients, indexed by variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constant part of the objective.
    pub fn objective_constant(&self) -> f64 {
        self.objective_constant
    }

    /// Indices of integer variables.
    pub fn integer_vars(&self) -> impl Iterator<Item = usize> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == VarKind::Integer)
            .map(|(i, _)| i)
    }

    /// True if the problem has at least one integer variable.
    pub fn is_mip(&self) -> bool {
        self.integer_vars().next().is_some()
    }

    /// Tightens a variable's bounds (used by branch & bound).
    ///
    /// # Panics
    ///
    /// Panics if the variable is unknown.
    pub fn set_bounds(&mut self, var: Var, lower: f64, upper: f64) {
        let d = &mut self.vars[var.0];
        d.lower = lower;
        d.upper = upper;
    }

    /// Objective value at a full assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective_constant
            + self
                .objective
                .iter()
                .zip(values)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// Maximum violation of bounds, constraints and integrality at `values`.
    ///
    /// Returns 0 for a feasible point (within `tol`).
    pub fn max_violation(&self, values: &[f64], tol: f64) -> f64 {
        let mut worst: f64 = 0.0;
        for (d, &v) in self.vars.iter().zip(values) {
            worst = worst.max(d.lower - v).max(v - d.upper);
            if d.kind == VarKind::Integer {
                worst = worst.max((v - v.round()).abs());
            }
        }
        for c in &self.constraints {
            worst = worst.max(c.violation(values));
        }
        if worst <= tol {
            0.0
        } else {
            worst
        }
    }

    /// True if `values` satisfies all bounds, constraints and integrality
    /// requirements within a fixed `1e-6` tolerance.
    pub fn is_feasible(&self, values: &[f64]) -> bool {
        values.len() == self.vars.len() && self.max_violation(values, 1e-6) <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_move_to_rhs() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0);
        p.add_constraint(x + 1.0, Cmp::Le, 3.0);
        assert_eq!(p.constraints()[0].rhs, 2.0);
    }

    #[test]
    fn feasibility_check_covers_bounds_constraints_integrality() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0);
        let b = p.add_binary("b");
        p.add_constraint(x + b, Cmp::Le, 5.0);
        assert!(p.is_feasible(&[4.0, 1.0]));
        assert!(!p.is_feasible(&[4.5, 0.7])); // fractional binary
        assert!(!p.is_feasible(&[11.0, 0.0])); // bound violated
        assert!(!p.is_feasible(&[5.0, 1.0])); // constraint violated
    }

    #[test]
    fn objective_value_includes_constant() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        p.set_objective(2.0 * x + 7.0);
        assert_eq!(p.objective_value(&[0.5]), 8.0);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn rejects_inverted_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        p.add_var("x", 1.0, 0.0);
    }

    #[test]
    fn reset_yields_an_empty_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var_unnamed(0.0, 10.0);
        p.add_constraint(x + 1.0, Cmp::Le, 3.0);
        p.set_objective(2.0 * x + 1.0);
        p.reset(Sense::Minimize);
        assert_eq!(p.sense(), Sense::Minimize);
        assert_eq!(p.num_vars(), 0);
        assert_eq!(p.num_constraints(), 0);
        assert_eq!(p.objective_constant(), 0.0);
        // The reset arena builds a fresh model identical to a new one.
        let y = p.add_var_unnamed(0.0, 1.0);
        p.set_objective(LinExpr::from(y));
        assert_eq!(p.num_vars(), 1);
    }
}
