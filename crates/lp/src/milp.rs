//! Branch & bound for mixed-integer linear programs.
//!
//! Depth-first branch & bound over the integer variables of a
//! [`Problem`], using the two-phase simplex of [`crate::simplex`] for node
//! relaxations. A rounding-and-fix primal heuristic runs at every node so a
//! feasible incumbent usually exists long before the tree is exhausted —
//! this is what makes the "MILP with a short timeout" baseline of the FARM
//! paper's Fig. 7 behave like Gurobi-with-deadline: it returns the best
//! incumbent found so far together with the remaining optimality gap.

use std::time::{Duration, Instant};

use crate::problem::{Problem, Sense};
use crate::simplex::{self, Limits};
use crate::solution::SolveError;
use crate::EPS;

/// Options controlling a branch & bound run.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Wall-clock budget; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of explored nodes.
    pub max_nodes: usize,
    /// Relative optimality gap at which the search stops early.
    pub rel_gap: f64,
    /// Per-node simplex iteration cap.
    pub node_iterations: usize,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            time_limit: None,
            max_nodes: 100_000,
            rel_gap: 1e-6,
            node_iterations: 200_000,
        }
    }
}

impl MilpOptions {
    /// Convenience constructor with only a time budget set.
    pub fn with_time_limit(limit: Duration) -> Self {
        MilpOptions {
            time_limit: Some(limit),
            ..Default::default()
        }
    }
}

/// Outcome class of a branch & bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MilpStatus {
    /// Proven optimal (tree exhausted or gap closed).
    Optimal,
    /// A feasible incumbent exists but optimality was not proven in budget.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// LP relaxation unbounded at the root.
    Unbounded,
    /// Budget exhausted with no feasible point found (and no infeasibility
    /// proof).
    Unknown,
}

/// Result of [`solve_milp`].
#[derive(Debug, Clone)]
pub struct MilpResult {
    pub status: MilpStatus,
    /// Objective of the best incumbent, if any.
    pub objective: Option<f64>,
    /// Variable values of the best incumbent, if any.
    pub values: Option<Vec<f64>>,
    /// Best proven bound on the optimum (sense-relative: an upper bound for
    /// maximization, lower for minimization). `NaN` when the root relaxation
    /// never solved.
    pub best_bound: f64,
    /// Number of explored branch & bound nodes.
    pub nodes: usize,
    /// Wall time spent.
    pub elapsed: Duration,
}

impl MilpResult {
    /// Relative gap between incumbent and bound (0 when proven optimal,
    /// `f64::INFINITY` when either side is missing).
    pub fn gap(&self) -> f64 {
        match self.objective {
            Some(obj) if self.best_bound.is_finite() => {
                let denom = obj.abs().max(1e-9);
                ((self.best_bound - obj).abs() / denom).max(0.0)
            }
            _ => f64::INFINITY,
        }
    }
}

struct SearchState {
    best_values: Option<Vec<f64>>,
    best_obj: f64,
    nodes: usize,
    deadline: Option<Instant>,
    hit_limit: bool,
    sense: Sense,
    opts: MilpOptions,
}

impl SearchState {
    fn is_better(&self, obj: f64) -> bool {
        match self.sense {
            Sense::Maximize => obj > self.best_obj + EPS,
            Sense::Minimize => obj < self.best_obj - EPS,
        }
    }

    fn can_beat(&self, bound: f64) -> bool {
        if self.best_values.is_none() {
            return true;
        }
        match self.sense {
            Sense::Maximize => bound > self.best_obj + EPS,
            Sense::Minimize => bound < self.best_obj - EPS,
        }
    }

    fn out_of_budget(&self) -> bool {
        self.hit_limit
            || self.nodes >= self.opts.max_nodes
            || self.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
    }
}

/// Solves a mixed-integer linear program by branch & bound.
///
/// Works on a clone of `problem`; bounds are tightened in place during the
/// search and restored on backtrack. Pure LPs (no integer variables) are
/// handed straight to the simplex.
pub fn solve_milp(problem: &Problem, opts: &MilpOptions) -> MilpResult {
    let start = Instant::now();
    let deadline = opts.time_limit.map(|d| start + d);
    let mut work = problem.clone();
    let int_vars: Vec<usize> = problem.integer_vars().collect();

    let limits = Limits {
        max_iterations: opts.node_iterations,
        deadline,
    };

    // Root relaxation.
    let root = simplex::solve_with_limits(&work, limits);
    let root_bound = match &root {
        Ok(s) => s.objective,
        Err(SolveError::Infeasible) => {
            return MilpResult {
                status: MilpStatus::Infeasible,
                objective: None,
                values: None,
                best_bound: f64::NAN,
                nodes: 1,
                elapsed: start.elapsed(),
            };
        }
        Err(SolveError::Unbounded) => {
            return MilpResult {
                status: MilpStatus::Unbounded,
                objective: None,
                values: None,
                best_bound: f64::NAN,
                nodes: 1,
                elapsed: start.elapsed(),
            };
        }
        Err(_) => {
            return MilpResult {
                status: MilpStatus::Unknown,
                objective: None,
                values: None,
                best_bound: f64::NAN,
                nodes: 1,
                elapsed: start.elapsed(),
            };
        }
    };

    let mut state = SearchState {
        best_values: None,
        best_obj: match problem.sense() {
            Sense::Maximize => f64::NEG_INFINITY,
            Sense::Minimize => f64::INFINITY,
        },
        nodes: 0,
        deadline,
        hit_limit: false,
        sense: problem.sense(),
        opts: opts.clone(),
    };

    if int_vars.is_empty() {
        let s = root.expect("checked above");
        return MilpResult {
            status: MilpStatus::Optimal,
            objective: Some(s.objective),
            best_bound: s.objective,
            values: Some(s.values),
            nodes: 1,
            elapsed: start.elapsed(),
        };
    }

    branch(&mut work, &int_vars, &limits, &mut state, root.ok());

    let status = if state.best_values.is_some() {
        if state.hit_limit {
            MilpStatus::Feasible
        } else {
            MilpStatus::Optimal
        }
    } else if state.hit_limit {
        MilpStatus::Unknown
    } else {
        MilpStatus::Infeasible
    };
    MilpResult {
        status,
        objective: state.best_values.is_some().then_some(state.best_obj),
        values: state.best_values,
        best_bound: root_bound,
        nodes: state.nodes,
        elapsed: start.elapsed(),
    }
}

/// Most fractional integer variable in `values`, if any exceeds tolerance.
fn most_fractional(int_vars: &[usize], values: &[f64]) -> Option<(usize, f64)> {
    let mut pick = None;
    let mut best_dist = 1e-6;
    for &vi in int_vars {
        let v = values[vi];
        let frac = (v - v.round()).abs();
        if frac > best_dist {
            best_dist = frac;
            pick = Some((vi, v));
        }
    }
    pick
}

/// Rounding heuristic: fix all integer variables to the rounded relaxation
/// values and re-solve the continuous part. Updates the incumbent on success.
fn try_rounding(
    work: &mut Problem,
    int_vars: &[usize],
    limits: &Limits,
    state: &mut SearchState,
    relax_values: &[f64],
) {
    let saved: Vec<(usize, f64, f64)> = int_vars
        .iter()
        .map(|&vi| {
            let d = &work.vars()[vi];
            (vi, d.lower, d.upper)
        })
        .collect();
    for &(vi, lo, hi) in &saved {
        let r = relax_values[vi].round().clamp(lo, hi);
        work.set_bounds(crate::Var(vi), r, r);
    }
    if let Ok(sol) = simplex::solve_with_limits(work, *limits) {
        if state.is_better(sol.objective) && work.max_violation(&sol.values, 1e-6) <= 0.0 {
            state.best_obj = sol.objective;
            state.best_values = Some(sol.values);
        }
    }
    for &(vi, lo, hi) in &saved {
        work.set_bounds(crate::Var(vi), lo, hi);
    }
}

fn branch(
    work: &mut Problem,
    int_vars: &[usize],
    limits: &Limits,
    state: &mut SearchState,
    presolved: Option<crate::Solution>,
) {
    if state.out_of_budget() {
        state.hit_limit = true;
        return;
    }
    state.nodes += 1;

    let sol = match presolved {
        Some(s) => s,
        None => match simplex::solve_with_limits(work, *limits) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => return,
            Err(SolveError::Unbounded) => {
                // An unbounded node relaxation cannot prune; treat as limit.
                state.hit_limit = true;
                return;
            }
            Err(_) => {
                state.hit_limit = true;
                return;
            }
        },
    };

    if !state.can_beat(sol.objective) {
        return; // bound prune
    }

    match most_fractional(int_vars, &sol.values) {
        None => {
            // Integral relaxation: new incumbent.
            if state.is_better(sol.objective) {
                state.best_obj = sol.objective;
                state.best_values = Some(sol.values);
            }
        }
        Some((vi, v)) => {
            // Primal heuristic before branching so deadline hits still leave
            // an incumbent behind.
            if state.best_values.is_none() {
                try_rounding(work, int_vars, limits, state, &sol.values);
            }
            let d = &work.vars()[vi];
            let (lo, hi) = (d.lower, d.upper);
            let floor = v.floor();
            let ceil = v.ceil();
            // Explore the side closer to the relaxation value first.
            let down_first = v - floor <= ceil - v;
            let sides: [(f64, f64); 2] = if down_first {
                [(lo, floor), (ceil, hi)]
            } else {
                [(ceil, hi), (lo, floor)]
            };
            for &(new_lo, new_hi) in &sides {
                if new_lo > new_hi + EPS {
                    continue;
                }
                work.set_bounds(crate::Var(vi), new_lo, new_hi);
                branch(work, int_vars, limits, state, None);
                work.set_bounds(crate::Var(vi), lo, hi);
                if state.out_of_budget() {
                    state.hit_limit = true;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Problem, Sense};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, Cmp::Le, 6.0);
        p.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(
            (r.objective.unwrap() - 20.0).abs() < 1e-6,
            "{:?}",
            r.objective
        );
        let v = r.values.unwrap();
        assert!((v[1] - 1.0).abs() < 1e-6 && (v[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 5.0);
        p.set_objective(x + 0.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn integer_rounding_not_trusted() {
        // LP optimum is fractional; integer optimum differs from naive
        // rounding. max x + y s.t. 2x + 2y <= 3 integer → optimum 1.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer("x", 0.0, 10.0);
        let y = p.add_integer("y", 0.0, 10.0);
        p.add_constraint(2.0 * x + 2.0 * y, Cmp::Le, 3.0);
        p.set_objective(x + y);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary("x");
        p.add_constraint(2.0 * x, Cmp::Ge, 3.0);
        p.set_objective(x + 0.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 5b + x, x <= 2b (big-M link), x <= 1.5
        let mut p = Problem::new(Sense::Maximize);
        let b = p.add_binary("b");
        let x = p.add_var("x", 0.0, 1.5);
        p.add_constraint(x - 2.0 * b, Cmp::Le, 0.0);
        p.set_objective(5.0 * b + x);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 6.5).abs() < 1e-6);
    }

    #[test]
    fn respects_time_limit_and_reports_incumbent() {
        // A slightly bigger knapsack: with an absurdly small deadline the
        // solver must still not panic and must report a coherent status.
        let mut p = Problem::new(Sense::Maximize);
        let mut obj = crate::LinExpr::new();
        let mut weight = crate::LinExpr::new();
        for i in 0..24 {
            let v = p.add_binary(format!("v{i}"));
            obj.add_term(v, (i % 7 + 1) as f64);
            weight.add_term(v, (i % 5 + 1) as f64);
        }
        p.add_constraint(weight, Cmp::Le, 20.0);
        p.set_objective(obj);
        let r = solve_milp(&p, &MilpOptions::with_time_limit(Duration::from_millis(5)));
        match r.status {
            MilpStatus::Optimal | MilpStatus::Feasible => {
                assert!(r.objective.is_some());
                assert!(p.is_feasible(r.values.as_ref().unwrap()));
            }
            MilpStatus::Unknown => assert!(r.objective.is_none()),
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn gap_is_zero_when_proven_optimal() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer("x", 0.0, 9.0);
        p.add_constraint(2.0 * x, Cmp::Ge, 5.0);
        p.set_objective(x + 0.0);
        let r = solve_milp(&p, &MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 3.0).abs() < 1e-6);
    }
}
