//! Dense two-phase primal simplex.
//!
//! The solver converts a [`Problem`] (ignoring integrality) to standard form
//! `min c·x  s.t.  Ax = b, x ≥ 0` by shifting variable lower bounds to zero,
//! splitting free variables, turning finite upper bounds into rows, and
//! adding slack/surplus/artificial columns. Phase 1 minimizes the sum of
//! artificials; phase 2 optimizes the user objective carried along in a
//! second cost row.
//!
//! Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
//! (which guarantees termination) once the iteration count grows, plus an
//! overall iteration cap and optional deadline for use inside branch & bound.

use std::time::Instant;

use crate::problem::{Cmp, Problem, Sense};
use crate::solution::{Solution, SolveError, Status};
use crate::EPS;

/// Hard limits for a simplex run.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of pivots across both phases.
    pub max_iterations: usize,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_iterations: 200_000,
            deadline: None,
        }
    }
}

/// Solves the LP relaxation of `problem` with default limits.
///
/// # Errors
///
/// [`SolveError::Infeasible`] / [`SolveError::Unbounded`] for the respective
/// outcomes, [`SolveError::LimitReached`] if the iteration cap is hit, and
/// [`SolveError::BadModel`] for NaN/infinite coefficients.
pub fn solve(problem: &Problem) -> Result<Solution, SolveError> {
    solve_with_limits(problem, Limits::default())
}

/// Mapping from an original variable to standard-form columns.
#[derive(Debug, Clone, Copy)]
enum ColMap {
    /// `x = lower + col`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - col`
    Mirrored { col: usize, upper: f64 },
    /// `x = pos - neg` (free variable)
    Split { pos: usize, neg: usize },
}

/// Solves the LP relaxation of `problem` under explicit limits.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_limits(problem: &Problem, limits: Limits) -> Result<Solution, SolveError> {
    let n = problem.num_vars();

    for def in problem.vars() {
        if def.lower.is_nan() || def.upper.is_nan() {
            return Err(SolveError::BadModel("NaN variable bound".into()));
        }
    }
    for c in problem.constraints() {
        if c.rhs.is_nan() || c.coeffs.iter().any(|&(_, v)| !v.is_finite()) {
            return Err(SolveError::BadModel("non-finite constraint data".into()));
        }
    }
    if problem.objective().iter().any(|v| !v.is_finite()) {
        return Err(SolveError::BadModel("non-finite objective".into()));
    }

    // --- Map original variables to non-negative standard-form columns. ---
    let mut maps: Vec<ColMap> = Vec::with_capacity(n);
    let mut ncols = 0usize;
    // (col, upper-bound-in-col-space) rows to add.
    let mut ub_rows: Vec<(usize, f64)> = Vec::new();
    for def in problem.vars() {
        let (l, u) = (def.lower, def.upper);
        if l.is_finite() {
            let col = ncols;
            ncols += 1;
            maps.push(ColMap::Shifted { col, lower: l });
            if u.is_finite() {
                ub_rows.push((col, u - l));
            }
        } else if u.is_finite() {
            let col = ncols;
            ncols += 1;
            maps.push(ColMap::Mirrored { col, upper: u });
        } else {
            let pos = ncols;
            let neg = ncols + 1;
            ncols += 2;
            maps.push(ColMap::Split { pos, neg });
        }
    }
    let nstruct = ncols;

    // --- Build rows: (dense coeffs over struct cols, cmp, rhs). ---
    struct Row {
        coeffs: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.num_constraints() + ub_rows.len());
    for c in problem.constraints() {
        let mut coeffs = vec![0.0; nstruct];
        let mut rhs = c.rhs;
        for &(vi, a) in &c.coeffs {
            match maps[vi] {
                ColMap::Shifted { col, lower } => {
                    coeffs[col] += a;
                    rhs -= a * lower;
                }
                ColMap::Mirrored { col, upper } => {
                    coeffs[col] -= a;
                    rhs -= a * upper;
                }
                ColMap::Split { pos, neg } => {
                    coeffs[pos] += a;
                    coeffs[neg] -= a;
                }
            }
        }
        rows.push(Row {
            coeffs,
            cmp: c.cmp,
            rhs,
        });
    }
    for &(col, ub) in &ub_rows {
        let mut coeffs = vec![0.0; nstruct];
        coeffs[col] = 1.0;
        rows.push(Row {
            coeffs,
            cmp: Cmp::Le,
            rhs: ub,
        });
    }

    // Normalize rhs ≥ 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for a in r.coeffs.iter_mut() {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [struct | slack/surplus | artificial].
    let mut nslack = 0usize;
    for r in &rows {
        if r.cmp != Cmp::Eq {
            nslack += 1;
        }
    }
    let mut nart = 0usize;
    for r in &rows {
        if r.cmp != Cmp::Le {
            nart += 1;
        }
    }
    let total = nstruct + nslack + nart;
    let art_start = nstruct + nslack;

    // Tableau: m rows × (total + 1); last column is rhs.
    let width = total + 1;
    let mut tab = vec![0.0f64; m * width];
    let mut basis = vec![usize::MAX; m];
    {
        let mut next_slack = nstruct;
        let mut next_art = art_start;
        for (i, r) in rows.iter().enumerate() {
            let row = &mut tab[i * width..(i + 1) * width];
            row[..nstruct].copy_from_slice(&r.coeffs);
            row[total] = r.rhs;
            match r.cmp {
                Cmp::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
    }

    // Objective in minimization form over struct columns.
    let sense_factor = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut phase2 = vec![0.0f64; width]; // cost row: c_j, last entry tracks -obj
    let mut obj_shift = 0.0; // constant from bound shifting
    for (vi, &c) in problem.objective().iter().enumerate() {
        let c = sense_factor * c;
        if c == 0.0 {
            continue;
        }
        match maps[vi] {
            ColMap::Shifted { col, lower } => {
                phase2[col] += c;
                obj_shift += c * lower;
            }
            ColMap::Mirrored { col, upper } => {
                phase2[col] -= c;
                obj_shift += c * upper;
            }
            ColMap::Split { pos, neg } => {
                phase2[pos] += c;
                phase2[neg] -= c;
            }
        }
    }

    // Phase-1 cost row: sum of artificials, reduced by the initial basis.
    let mut phase1 = vec![0.0f64; width];
    phase1[art_start..total].fill(1.0);
    for (i, &b) in basis.iter().enumerate().take(m) {
        if b >= art_start {
            // Subtract the basic artificial's row to zero its reduced cost.
            let (head, tail) = tab.split_at(i * width);
            let _ = head;
            let row = &tail[..width];
            for j in 0..width {
                phase1[j] -= row[j];
            }
        }
    }

    let mut iterations = 0usize;
    // Normalized pivot row, copied out once per pivot. Reused across all
    // pivots of both phases; updating rows against this aliasing-free
    // slice (instead of indexing back into `tab`) lets the row updates
    // vectorize and saves a per-iteration allocation.
    let mut scratch = vec![0.0f64; width];

    // Runs the simplex loop on cost row `cost`, restricting entering columns
    // to `..col_limit`. Returns Ok(true) on optimality, Err on unbounded.
    let pivot_loop = |tab: &mut Vec<f64>,
                      basis: &mut Vec<usize>,
                      cost: &mut Vec<f64>,
                      other_cost: &mut Option<&mut Vec<f64>>,
                      scratch: &mut [f64],
                      col_limit: usize,
                      iterations: &mut usize|
     -> Result<(), SolveError> {
        loop {
            if *iterations >= limits.max_iterations {
                return Err(SolveError::LimitReached);
            }
            if let Some(dl) = limits.deadline {
                if iterations.is_multiple_of(64) && Instant::now() >= dl {
                    return Err(SolveError::LimitReached);
                }
            }
            let bland = *iterations > limits.max_iterations / 2;
            // Entering column.
            let mut enter = usize::MAX;
            let mut best = -EPS;
            for (j, &c) in cost.iter().enumerate().take(col_limit) {
                if c < -EPS {
                    if bland {
                        enter = j;
                        break;
                    }
                    if c < best {
                        best = c;
                        enter = j;
                    }
                }
            }
            if enter == usize::MAX {
                return Ok(()); // optimal for this phase
            }
            // Ratio test.
            let mut leave = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = tab[i * width + enter];
                if a > EPS {
                    let ratio = tab[i * width + total] / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave != usize::MAX
                            && basis[i] < basis[leave])
                    {
                        best_ratio = ratio;
                        leave = i;
                    }
                }
            }
            if leave == usize::MAX {
                return Err(SolveError::Unbounded);
            }
            // Pivot on (leave, enter).
            let piv = tab[leave * width + enter];
            let lrow_start = leave * width;
            {
                let lrow = &mut tab[lrow_start..lrow_start + width];
                for v in lrow.iter_mut() {
                    *v /= piv;
                }
                scratch.copy_from_slice(lrow);
            }
            for i in 0..m {
                if i == leave {
                    continue;
                }
                let row = &mut tab[i * width..(i + 1) * width];
                let f = row[enter];
                if f != 0.0 {
                    for (x, &s) in row.iter_mut().zip(scratch.iter()) {
                        *x -= f * s;
                    }
                }
            }
            let f = cost[enter];
            if f != 0.0 {
                for (x, &s) in cost.iter_mut().zip(scratch.iter()) {
                    *x -= f * s;
                }
            }
            if let Some(oc) = other_cost.as_deref_mut() {
                let f = oc[enter];
                if f != 0.0 {
                    for (x, &s) in oc.iter_mut().zip(scratch.iter()) {
                        *x -= f * s;
                    }
                }
            }
            basis[leave] = enter;
            *iterations += 1;
        }
    };

    // --- Phase 1 ---
    if nart > 0 {
        let mut p2 = Some(&mut phase2);
        // Artificial columns never re-enter the basis: restrict entering
        // columns to the structural + slack range.
        pivot_loop(
            &mut tab,
            &mut basis,
            &mut phase1,
            &mut p2,
            &mut scratch,
            art_start,
            &mut iterations,
        )
        .map_err(|e| match e {
            // Phase-1 objective is bounded below by 0; "unbounded" here means
            // numerical trouble, surface as limit.
            SolveError::Unbounded => SolveError::LimitReached,
            other => other,
        })?;
        // -phase1[width-1] is the phase-1 objective value.
        let p1_obj = -phase1[total];
        if p1_obj > 1e-6 {
            return Err(SolveError::Infeasible);
        }
        // Drive remaining artificials out of the basis when possible.
        for i in 0..m {
            if basis[i] >= art_start {
                let mut pivot_col = usize::MAX;
                for j in 0..art_start {
                    if tab[i * width + j].abs() > 1e-9 {
                        pivot_col = j;
                        break;
                    }
                }
                if let Some(j) = (pivot_col != usize::MAX).then_some(pivot_col) {
                    let piv = tab[i * width + j];
                    {
                        let row = &mut tab[i * width..(i + 1) * width];
                        for v in row.iter_mut() {
                            *v /= piv;
                        }
                        scratch.copy_from_slice(row);
                    }
                    for i2 in 0..m {
                        if i2 != i {
                            let row = &mut tab[i2 * width..(i2 + 1) * width];
                            let f = row[j];
                            if f != 0.0 {
                                for (x, &s) in row.iter_mut().zip(scratch.iter()) {
                                    *x -= f * s;
                                }
                            }
                        }
                    }
                    let f = phase2[j];
                    if f != 0.0 {
                        for (x, &s) in phase2.iter_mut().zip(scratch.iter()) {
                            *x -= f * s;
                        }
                    }
                    basis[i] = j;
                }
                // else: redundant row; artificial stays basic at value 0.
            }
        }
    }

    // --- Phase 2 (entering columns restricted to non-artificials). ---
    // `phase2` already has reduced costs w.r.t. the current basis for all
    // columns that entered during phase 1; re-reduce basic columns that were
    // basic from the start (slacks) — their cost is 0, so nothing to do.
    // However, struct columns basic in the initial basis are impossible, and
    // phase2 was updated on every pivot, so it is consistent.
    for i in 0..m {
        let b = basis[i];
        if b < art_start && phase2[b].abs() > EPS {
            let f = phase2[b];
            for k in 0..width {
                phase2[k] -= f * tab[i * width + k];
            }
        }
    }
    let mut none_cost: Option<&mut Vec<f64>> = None;
    pivot_loop(
        &mut tab,
        &mut basis,
        &mut phase2,
        &mut none_cost,
        &mut scratch,
        art_start,
        &mut iterations,
    )?;

    // --- Extract solution. ---
    let mut col_values = vec![0.0f64; total];
    for i in 0..m {
        if basis[i] < total {
            col_values[basis[i]] = tab[i * width + total];
        }
    }
    let mut values = vec![0.0f64; n];
    for (vi, map) in maps.iter().enumerate() {
        values[vi] = match *map {
            ColMap::Shifted { col, lower } => lower + col_values[col],
            ColMap::Mirrored { col, upper } => upper - col_values[col],
            ColMap::Split { pos, neg } => col_values[pos] - col_values[neg],
        };
    }
    let _ = obj_shift;
    let objective = problem.objective_value(&values);
    Ok(Solution {
        status: Status::Optimal,
        values,
        objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Problem, Sense};

    #[test]
    fn textbook_two_variable_max() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.add_constraint(x + y, Cmp::Le, 4.0);
        p.add_constraint(x + 3.0 * y, Cmp::Le, 6.0);
        p.set_objective(3.0 * x + 2.0 * y);
        let s = solve(&p).unwrap();
        assert!(
            (s.objective - 12.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.add_constraint(x + y, Cmp::Eq, 10.0);
        p.add_constraint(x - y, Cmp::Ge, 2.0);
        p.set_objective(2.0 * x + y);
        let s = solve(&p).unwrap();
        // optimum at x=6, y=4 → 16
        assert!((s.objective - 16.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.add_constraint(x, Cmp::Le, 1.0);
        p.add_constraint(x, Cmp::Ge, 2.0);
        p.set_objective(x + 0.0);
        assert_eq!(solve(&p), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective(x + 0.0);
        assert_eq!(solve(&p), Err(SolveError::Unbounded));
    }

    #[test]
    fn honors_variable_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 1.0, 3.0);
        let y = p.add_var("y", -2.0, 2.0);
        p.add_constraint(x + y, Cmp::Le, 4.0);
        p.set_objective(x + y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert!(s.value(x) <= 3.0 + 1e-9 && s.value(x) >= 1.0 - 1e-9);
    }

    #[test]
    fn free_variable_split() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        p.add_constraint(x + 0.0, Cmp::Ge, -5.0);
        p.set_objective(x + 0.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) + 5.0).abs() < 1e-6);
    }

    #[test]
    fn mirrored_variable_upper_bound_only() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 7.0);
        p.set_objective(x + 0.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.add_constraint(-1.0 * x - y, Cmp::Le, -3.0); // x + y >= 3
        p.set_objective(x + 2.0 * y);
        let s = solve(&p).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic cycling-prone structure; Bland fallback must terminate.
        let mut p = Problem::new(Sense::Maximize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY);
        p.add_constraint(0.5 * x1 - 5.5 * x2 - 2.5 * x3 + 9.0 * x4, Cmp::Le, 0.0);
        p.add_constraint(0.5 * x1 - 1.5 * x2 - 0.5 * x3 + x4, Cmp::Le, 0.0);
        p.add_constraint(LinExprFrom(x1), Cmp::Le, 1.0);
        p.set_objective(10.0 * x1 - 57.0 * x2 - 9.0 * x3 - 24.0 * x4);
        let s = solve(&p).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-5);
    }

    // Helper so the test above can pass a bare Var where an expression is
    // needed without relying on trait inference gymnastics.
    #[allow(non_snake_case)]
    fn LinExprFrom(v: crate::Var) -> crate::LinExpr {
        crate::LinExpr::from(v)
    }

    #[test]
    fn objective_constant_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 2.0);
        p.set_objective(x + 100.0);
        let s = solve(&p).unwrap();
        assert!((s.objective - 102.0).abs() < 1e-9);
    }
}
