//! Telemetry-instrumented solver entry points.
//!
//! Thin wrappers around [`simplex::solve`](crate::simplex::solve) and
//! [`solve_milp`](crate::milp::solve_milp) that time the solve, sample
//! the `solver.phase_us` histogram and emit a
//! [`Event::SolverPhase`](farm_telemetry::Event::SolverPhase). The
//! untraced functions stay unchanged for callers without telemetry.

use std::time::Instant;

use farm_telemetry::{Event, Telemetry};

use crate::milp::{solve_milp, MilpOptions, MilpResult};
use crate::problem::Problem;
use crate::simplex;
use crate::solution::{Solution, SolveError};

/// Records one finished solver phase into `telemetry`: a
/// `solver.phases` counter tick, samples of the aggregate
/// `solver.phase_us` and the per-phase `solver.phase.<phase>_us`
/// histograms (so per-phase p50/p95 survive aggregation), and a
/// [`Event::SolverPhase`].
pub fn record_phase(telemetry: &Telemetry, phase: &'static str, elapsed_ns: u64, items: u64) {
    telemetry.counter("solver.phases").inc();
    let us = elapsed_ns / 1_000;
    telemetry.latency_histogram("solver.phase_us").record(us);
    telemetry
        .latency_histogram(&format!("solver.phase.{phase}_us"))
        .record(us);
    telemetry.emit_with(|| Event::SolverPhase {
        phase,
        elapsed_ns,
        items,
    });
}

/// [`simplex::solve`] with phase telemetry (`phase = "simplex"`, items =
/// number of variables).
pub fn solve_traced(
    problem: &Problem,
    telemetry: Option<&Telemetry>,
) -> Result<Solution, SolveError> {
    let start = Instant::now();
    let result = simplex::solve(problem);
    if let Some(t) = telemetry {
        record_phase(
            t,
            "simplex",
            start.elapsed().as_nanos() as u64,
            problem.num_vars() as u64,
        );
    }
    result
}

/// [`solve_milp`] with phase telemetry (`phase = "milp"`, items =
/// explored branch & bound nodes).
pub fn solve_milp_traced(
    problem: &Problem,
    opts: &MilpOptions,
    telemetry: Option<&Telemetry>,
) -> MilpResult {
    let result = solve_milp(problem, opts);
    if let Some(t) = telemetry {
        record_phase(
            t,
            "milp",
            result.elapsed.as_nanos() as u64,
            result.nodes as u64,
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Sense};

    #[test]
    fn traced_solve_matches_untraced_and_records_phase() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", 0.0, 10.0);
        p.add_constraint(x + y, Cmp::Le, 12.0);
        p.set_objective(2.0 * x + y);

        let telemetry = Telemetry::new();
        let traced = solve_traced(&p, Some(&telemetry)).unwrap();
        let plain = simplex::solve(&p).unwrap();
        assert!((traced.objective - plain.objective).abs() < 1e-9);

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("solver.phases"), 1);
        assert_eq!(snap.histogram("solver.phase_us").unwrap().count, 1);
    }
}
