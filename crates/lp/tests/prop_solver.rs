//! Property-based validation of the simplex and branch & bound solvers.
//!
//! Strategy: generate small random problems whose feasibility is guaranteed
//! by construction (non-negative constraint coefficients with the origin
//! feasible), then check solver invariants:
//!
//! * returned points are feasible,
//! * LP objectives dominate any sampled feasible point (optimality witness),
//! * MILP objectives match brute-force enumeration on all-binary problems.

use farm_lp::{solve_milp, Cmp, LinExpr, MilpOptions, MilpStatus, Problem, Sense};
use proptest::prelude::*;

/// A randomly generated bounded-feasible LP instance.
#[derive(Debug, Clone)]
struct RandomLp {
    nvars: usize,
    upper: Vec<f64>,
    obj: Vec<f64>,
    // rows of (coeffs >= 0, rhs >= 0)
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..5)
        .prop_flat_map(|nvars| {
            let upper = proptest::collection::vec(1.0f64..20.0, nvars);
            let obj = proptest::collection::vec(-5.0f64..10.0, nvars);
            let rows = proptest::collection::vec(
                (proptest::collection::vec(0.0f64..4.0, nvars), 1.0f64..30.0),
                1..5,
            );
            (Just(nvars), upper, obj, rows)
        })
        .prop_map(|(nvars, upper, obj, rows)| RandomLp {
            nvars,
            upper,
            obj,
            rows,
        })
}

fn build(lp: &RandomLp, integer: bool) -> (Problem, Vec<farm_lp::Var>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..lp.nvars)
        .map(|i| {
            if integer {
                p.add_integer(format!("x{i}"), 0.0, lp.upper[i].floor().max(1.0))
            } else {
                p.add_var(format!("x{i}"), 0.0, lp.upper[i])
            }
        })
        .collect();
    for (coeffs, rhs) in &lp.rows {
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            e.add_term(*v, *c);
        }
        p.add_constraint(e, Cmp::Le, *rhs);
    }
    let mut o = LinExpr::new();
    for (v, c) in vars.iter().zip(&lp.obj) {
        o.add_term(*v, *c);
    }
    p.set_objective(o);
    (p, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The simplex always returns a feasible point on feasible instances.
    #[test]
    fn lp_solution_is_feasible(lp in random_lp()) {
        let (p, _) = build(&lp, false);
        let sol = farm_lp::simplex::solve(&p).expect("origin is feasible");
        prop_assert!(p.is_feasible(&sol.values),
            "solver returned infeasible point {:?}", sol.values);
        prop_assert!((p.objective_value(&sol.values) - sol.objective).abs() < 1e-6);
    }

    /// The LP objective dominates sampled feasible points (approximate
    /// optimality witness: grid + vertex-ish samples can never beat it).
    #[test]
    fn lp_objective_dominates_samples(lp in random_lp(), seeds in proptest::collection::vec(0u64..1000, 32)) {
        let (p, _) = build(&lp, false);
        let sol = farm_lp::simplex::solve(&p).expect("feasible");
        for s in seeds {
            // Deterministic pseudo-random candidate scaled back into the
            // feasible region along the ray from the origin.
            let mut cand: Vec<f64> = (0..lp.nvars)
                .map(|i| {
                    let h = s.wrapping_mul(6364136223846793005).wrapping_add(i as u64 * 1442695040888963407);
                    (h >> 11) as f64 / (1u64 << 53) as f64 * lp.upper[i]
                })
                .collect();
            // Shrink until feasible (origin is feasible so this terminates).
            let mut scale = 1.0;
            for _ in 0..60 {
                let scaled: Vec<f64> = cand.iter().map(|v| v * scale).collect();
                if p.is_feasible(&scaled) {
                    cand = scaled;
                    break;
                }
                scale *= 0.7;
            }
            if p.is_feasible(&cand) {
                prop_assert!(p.objective_value(&cand) <= sol.objective + 1e-5,
                    "sampled point beats 'optimal' objective: {} > {}",
                    p.objective_value(&cand), sol.objective);
            }
        }
    }

    /// Branch & bound equals brute-force enumeration on small binary models.
    #[test]
    fn milp_matches_bruteforce_on_binaries(
        obj in proptest::collection::vec(-6.0f64..10.0, 3..7),
        w in proptest::collection::vec(0.5f64..5.0, 3..7),
        cap in 2.0f64..12.0,
    ) {
        let n = obj.len().min(w.len());
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_binary(format!("b{i}"))).collect();
        let mut we = LinExpr::new();
        let mut oe = LinExpr::new();
        for i in 0..n {
            we.add_term(vars[i], w[i]);
            oe.add_term(vars[i], obj[i]);
        }
        p.add_constraint(we, Cmp::Le, cap);
        p.set_objective(oe);

        let r = solve_milp(&p, &MilpOptions::default());
        prop_assert_eq!(r.status, MilpStatus::Optimal);
        let got = r.objective.unwrap();

        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            let weight: f64 = (0..n).filter(|i| mask >> i & 1 == 1).map(|i| w[i]).sum();
            if weight <= cap + 1e-9 {
                let val: f64 = (0..n).filter(|i| mask >> i & 1 == 1).map(|i| obj[i]).sum();
                best = best.max(val);
            }
        }
        prop_assert!((got - best).abs() < 1e-6,
            "milp {} != bruteforce {}", got, best);
    }

    /// MILP incumbents are always feasible, whatever the status.
    #[test]
    fn milp_incumbent_feasible(lp in random_lp()) {
        let (p, _) = build(&lp, true);
        let r = solve_milp(&p, &MilpOptions::default());
        if let Some(values) = &r.values {
            prop_assert!(p.is_feasible(values));
        }
        // Origin is integral-feasible, so a solution must exist.
        prop_assert!(matches!(r.status, MilpStatus::Optimal | MilpStatus::Feasible));
    }
}
