//! Baseline monitoring systems FARM is evaluated against (§ VI-B, § VII).
//!
//! * [`sflow`] — the collection-centric RFC 3176 architecture: sampling
//!   agents plus a centralized collector doing all analysis; export load
//!   grows linearly with port count.
//! * [`sonata`] — query-driven streaming telemetry (and Newton's dynamic
//!   variant): data-plane pre-aggregation feeding a micro-batch stream
//!   processor, with seconds-scale detection pipelines.
//! * [`specialized`] — Planck and Helios latency models, the fast
//!   purpose-built detectors of Tab. 4.
//!
//! All three operate against the same `farm-netsim` fabric as FARM so the
//! comparisons in `farm-bench` measure architecture, not substrate.

pub mod sflow;
pub mod sonata;
pub mod specialized;

pub use sflow::{SflowConfig, SflowSystem};
pub use sonata::{NewtonSystem, SonataConfig, SonataSystem};
pub use specialized::{HeliosModel, PlanckModel};
