//! Specialized link-utilization monitors: Planck and Helios.
//!
//! Both systems are purpose-built detectors the paper cites in Tab. 4 as
//! the fastest non-FARM baselines. They are not generic frameworks, so we
//! model them at the level the comparison needs: the structural latency
//! of their detection paths, parameterized by their published designs.
//!
//! * **Planck** (SIGCOMM'14): mirrors traffic through an oversubscribed
//!   monitoring port to a collector sampling at line rate; milliseconds-
//!   scale detection (≈ 4 ms at 10 Gb/s per the paper's Tab. 4).
//! * **Helios** (SIGCOMM'10): a hybrid electrical/optical architecture
//!   whose topology manager polls transceiver counters on a scheduling
//!   loop (≈ 77 ms detection in Tab. 4).

use farm_netsim::time::{Dur, Time};

/// Planck's detection path: mirror-port serialization + sampling window +
/// collector processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanckModel {
    /// Mirror-port drain/serialization delay.
    pub mirror_delay: Dur,
    /// Sampling window the collector needs to confirm a heavy flow.
    pub sample_window: Dur,
    /// Collector processing time.
    pub processing: Dur,
}

impl PlanckModel {
    /// The 10 Gb/s configuration of the paper's Tab. 4.
    pub fn at_10gbps() -> PlanckModel {
        PlanckModel {
            mirror_delay: Dur::from_micros(500),
            sample_window: Dur::from_millis(3),
            processing: Dur::from_micros(500),
        }
    }

    /// End-to-end detection latency.
    pub fn detection_latency(&self) -> Dur {
        self.mirror_delay + self.sample_window + self.processing
    }

    /// Instant a heavy flow starting at `onset` is detected.
    pub fn detect(&self, onset: Time) -> Time {
        onset + self.detection_latency()
    }
}

/// Helios' detection path: transceiver counter polling on the topology
/// manager's scheduling loop plus demand estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeliosModel {
    /// Counter polling period of the topology manager.
    pub poll_period: Dur,
    /// Demand estimation + scheduling computation.
    pub estimation: Dur,
}

impl HeliosModel {
    /// The configuration matching the paper's Tab. 4 (≈ 77 ms).
    pub fn published() -> HeliosModel {
        HeliosModel {
            poll_period: Dur::from_millis(70),
            estimation: Dur::from_millis(7),
        }
    }

    /// End-to-end detection latency (worst case: a full polling period
    /// plus estimation).
    pub fn detection_latency(&self) -> Dur {
        self.poll_period + self.estimation
    }

    /// Instant a heavy flow starting at `onset` is detected.
    pub fn detect(&self, onset: Time) -> Time {
        onset + self.detection_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planck_is_in_the_milliseconds_band() {
        let lat = PlanckModel::at_10gbps().detection_latency();
        assert_eq!(lat.as_millis(), 4);
    }

    #[test]
    fn helios_matches_tab4() {
        let lat = HeliosModel::published().detection_latency();
        assert_eq!(lat.as_millis(), 77);
    }

    #[test]
    fn detection_is_onset_plus_latency() {
        let onset = Time::from_secs(2);
        assert_eq!(
            PlanckModel::at_10gbps().detect(onset),
            onset + Dur::from_millis(4)
        );
        assert!(HeliosModel::published().detect(onset) > PlanckModel::at_10gbps().detect(onset));
    }
}
