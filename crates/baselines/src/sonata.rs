//! Sonata/Newton baseline: stream-processing telemetry.
//!
//! Sonata partially compiles queries into the data plane and offloads the
//! rest to a Spark Streaming backend; detection latency is dominated by
//! query windowing plus micro-batch scheduling and shuffle stages —
//! the source of the 3 427 ms HH figure in Tab. 4. Newton inherits the
//! same architecture with dynamic query loading (modelled as a flag that
//! removes the redeploy delay, § VII). Because Sonata cannot merge
//! streams from several switches, its HH query is switch-local (noted in
//! the paper's Tab. 4 footnote); stream tuples still cross the network to
//! the stream processor, reduced by the achievable data-plane
//! aggregation factor (75 % at the paper's HH churn).

use std::collections::HashMap;

use farm_netsim::network::{Network, TrafficEvent};
use farm_netsim::time::{Dur, Time};
use farm_netsim::types::{PortId, SwitchId};

/// Sonata deployment parameters.
#[derive(Debug, Clone)]
pub struct SonataConfig {
    /// Query window length.
    pub window: Dur,
    /// Spark micro-batch interval (tuples wait for batch alignment).
    pub batch_interval: Dur,
    /// Number of shuffle/processing stages of the compiled query plan.
    pub stages: u32,
    /// Scheduling plus processing latency per stage.
    pub stage_latency: Dur,
    /// Fraction of tuples reduced in the data plane before export
    /// (paper: 0.75 is the best achievable with the HH ratio changing up
    /// to once a minute).
    pub aggregation_factor: f64,
    /// Bytes per exported stream tuple.
    pub tuple_bytes: u64,
    /// Collector HH threshold in bytes/s.
    pub hh_threshold_bps: u64,
    /// Packet mirroring rate to the stream pipeline (1-in-N); Sonata's
    /// switch-side bottleneck is the PCIe sampling path (§ VI-B c).
    pub mirror_rate: u64,
}

impl Default for SonataConfig {
    fn default() -> Self {
        SonataConfig {
            window: Dur::from_millis(1000),
            batch_interval: Dur::from_millis(500),
            stages: 4,
            stage_latency: Dur::from_millis(600),
            aggregation_factor: 0.75,
            tuple_bytes: 64,
            hh_threshold_bps: 1_000_000_000,
            mirror_rate: 64,
        }
    }
}

impl SonataConfig {
    /// Worst-case detection latency of the pipeline: a full window, batch
    /// alignment, then the staged computation. With the defaults:
    /// 1000 + 500 + 4·600 = 3900 ms (typical case ≈ 3400 ms — the Tab. 4
    /// regime).
    pub fn pipeline_latency(&self) -> Dur {
        self.window
            + self.batch_interval
            + Dur::from_nanos(self.stage_latency.as_nanos() * self.stages as u64)
    }

    /// Minimum detection latency (window close straight into a batch).
    pub fn min_latency(&self) -> Dur {
        self.window + Dur::from_nanos(self.stage_latency.as_nanos() * self.stages as u64)
    }
}

/// A detection produced by the stream backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SonataDetection {
    /// When the result left the last stage.
    pub at: Time,
    pub switch: SwitchId,
    pub port: PortId,
}

/// Stream-backend accounting.
#[derive(Debug, Default, Clone)]
pub struct StreamStats {
    pub tuples_received: u64,
    pub bytes_received: u64,
    pub batches: u64,
}

/// A Sonata deployment over the simulated fabric.
#[derive(Debug)]
pub struct SonataSystem {
    cfg: SonataConfig,
    /// Per (switch, port) bytes accumulated in the open window.
    window_bytes: HashMap<(SwitchId, PortId), u64>,
    window_close: Time,
    pub stream: StreamStats,
    pub detections: Vec<SonataDetection>,
    switches: Vec<SwitchId>,
}

impl SonataSystem {
    pub fn new(switches: &[SwitchId], cfg: SonataConfig) -> SonataSystem {
        SonataSystem {
            window_close: Time::ZERO + cfg.window,
            cfg,
            window_bytes: HashMap::new(),
            stream: StreamStats::default(),
            detections: Vec::new(),
            switches: switches.to_vec(),
        }
    }

    /// Feeds the tick's traffic into the per-window aggregation and
    /// charges the mirroring path (PCIe + switch CPU).
    pub fn observe_traffic(&mut self, events: &[TrafficEvent], net: &mut Network) {
        for e in events {
            if !self.switches.contains(&e.switch) {
                continue;
            }
            if let Some(port) = e.tx_port.or(e.rx_port) {
                *self.window_bytes.entry((e.switch, port)).or_insert(0) += e.bytes;
            }
            // Mirror a 1-in-N share of packets over PCIe to the streaming
            // pipeline.
            let mirrored = e.packets / self.cfg.mirror_rate;
            if mirrored > 0 {
                if let Some(sw) = net.switch_mut(e.switch) {
                    sw.pcie_mut().request(mirrored * 256);
                    sw.cpu_mut().charge_cycles(mirrored * 800);
                }
            }
        }
    }

    /// Advances to `to`, closing windows and emitting detections after
    /// the full pipeline latency.
    pub fn advance(&mut self, to: Time) {
        while self.window_close <= to {
            let close = self.window_close;
            let threshold =
                (self.cfg.hh_threshold_bps as f64 / 8.0 * self.cfg.window.as_secs_f64()) as u64;
            // Tuples exported to the stream backend, post data-plane
            // aggregation.
            let tuples = self.window_bytes.len() as u64;
            let exported = ((tuples as f64) * (1.0 - self.cfg.aggregation_factor)).ceil() as u64;
            self.stream.tuples_received += exported;
            self.stream.bytes_received += exported * self.cfg.tuple_bytes;
            self.stream.batches += 1;
            // Micro-batch alignment: the window's tuples wait for the next
            // batch boundary, then traverse the stages.
            let batch_ns = self.cfg.batch_interval.as_nanos().max(1);
            let aligned = close.as_nanos().div_ceil(batch_ns) * batch_ns;
            let done = Time(aligned)
                + Dur::from_nanos(self.cfg.stage_latency.as_nanos() * self.cfg.stages as u64);
            for (&(sw, port), &bytes) in &self.window_bytes {
                if bytes >= threshold.max(1) {
                    self.detections.push(SonataDetection {
                        at: done,
                        switch: sw,
                        port,
                    });
                }
            }
            self.window_bytes.clear();
            self.window_close = close + self.cfg.window;
        }
    }

    /// First detection completed at or after `t` for a heavy port whose
    /// traffic began at `t`.
    pub fn first_detection_after(&self, t: Time, switch: SwitchId) -> Option<Time> {
        self.detections
            .iter()
            .filter(|d| d.switch == switch && d.at >= t)
            .map(|d| d.at)
            .min()
    }

    /// Stream-export bandwidth in bits/s for `total_ports` active ports —
    /// the Fig. 4 Sonata line (post-aggregation tuple stream).
    pub fn export_bps(&self, total_ports: u64) -> f64 {
        let tuples_per_window = total_ports as f64 * (1.0 - self.cfg.aggregation_factor);
        tuples_per_window * self.cfg.tuple_bytes as f64 * 8.0 / self.cfg.window.as_secs_f64()
    }
}

/// Newton: Sonata's architecture plus dynamic query loading. Detection
/// latency matches Sonata; query (re)deployment avoids the switch reboot.
#[derive(Debug)]
pub struct NewtonSystem {
    pub inner: SonataSystem,
    /// Time to load a new query dynamically (vs Sonata's full recompile
    /// and reboot).
    pub query_load_latency: Dur,
}

impl NewtonSystem {
    pub fn new(switches: &[SwitchId], cfg: SonataConfig) -> NewtonSystem {
        NewtonSystem {
            inner: SonataSystem::new(switches, cfg),
            query_load_latency: Dur::from_millis(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;
    use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig, Workload};

    #[test]
    fn pipeline_latency_matches_tab4_regime() {
        let ms = SonataConfig::default().min_latency().as_millis();
        assert!(
            (3000..4000).contains(&ms),
            "Sonata pipeline should be in the ~3.4 s regime, got {ms} ms"
        );
        assert!(
            SonataConfig::default().pipeline_latency() >= SonataConfig::default().min_latency()
        );
    }

    #[test]
    fn detects_hh_only_after_the_pipeline() {
        let topo = Topology::spine_leaf(
            1,
            2,
            SwitchModel::test_model(16),
            SwitchModel::test_model(16),
        );
        let mut net = Network::new(topo);
        let leaf = net.topology().leaves().next().unwrap();
        let ids = net.switch_ids();
        let mut sonata = SonataSystem::new(&ids, SonataConfig::default());
        let mut hh = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 16,
            hh_ratio: 0.1,
            hh_rate_bps: 5_000_000_000,
            ..Default::default()
        });
        let tick = Dur::from_millis(100);
        let mut now = Time::ZERO;
        while now < Time::from_secs(6) {
            let events = hh.advance(now, tick);
            net.apply_traffic(&events);
            sonata.observe_traffic(&events, &mut net);
            now += tick;
            sonata.advance(now);
        }
        let det = sonata.first_detection_after(Time::ZERO, leaf).unwrap();
        let expected_min = SonataConfig::default().min_latency();
        assert!(
            det >= Time::ZERO + expected_min,
            "detection {det} earlier than the pipeline allows ({expected_min})"
        );
    }

    #[test]
    fn aggregation_factor_scales_export() {
        let full = SonataSystem::new(
            &[SwitchId(0)],
            SonataConfig {
                aggregation_factor: 0.0,
                ..Default::default()
            },
        );
        let reduced = SonataSystem::new(&[SwitchId(0)], SonataConfig::default());
        let ports = 1000;
        assert!(
            (full.export_bps(ports) * 0.25 - reduced.export_bps(ports)).abs() < 1e-6,
            "75% aggregation must cut export to a quarter"
        );
    }

    #[test]
    fn mirroring_pressures_the_pcie_bus() {
        let topo =
            Topology::spine_leaf(1, 1, SwitchModel::test_model(4), SwitchModel::test_model(4));
        let mut net = Network::new(topo);
        let leaf = net.topology().leaves().next().unwrap();
        let mut sonata = SonataSystem::new(&[leaf], SonataConfig::default());
        let events = vec![TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: None,
            flow: farm_netsim::types::FlowKey::udp(
                farm_netsim::types::Ipv4::new(1, 1, 1, 1),
                1,
                farm_netsim::types::Ipv4::new(2, 2, 2, 2),
                2,
            ),
            bytes: 150_000_000,
            packets: 100_000,
        }];
        net.apply_traffic(&events);
        sonata.observe_traffic(&events, &mut net);
        assert!(
            net.switch(leaf).unwrap().pcie().bytes_requested() > 0,
            "mirroring must consume PCIe budget"
        );
    }

    #[test]
    fn newton_loads_queries_without_reboot() {
        let n = NewtonSystem::new(&[SwitchId(0)], SonataConfig::default());
        assert!(n.query_load_latency < Dur::from_secs(1));
        assert_eq!(n.inner.detections.len(), 0);
    }
}
