//! sFlow baseline (RFC 3176): collection-centric monitoring.
//!
//! Agents on every switch sample packets (1-in-N) and export port
//! counters on a fixed probing period; *all* analysis happens at a
//! logically centralized collector. This is the architecture whose
//! bandwidth and collector-CPU scaling FARM's Fig. 4/5 compare against:
//! export load grows linearly with the port count regardless of whether
//! anything interesting is happening.

use std::collections::HashMap;

use farm_netsim::network::{Network, TrafficEvent};
use farm_netsim::time::{Dur, Time};
use farm_netsim::traffic::PacketSampler;
use farm_netsim::types::{PortId, PortSel, SwitchId};

/// sFlow deployment parameters.
#[derive(Debug, Clone)]
pub struct SflowConfig {
    /// Counter-export (probing) period — the paper evaluates 1 ms and
    /// 10 ms variants against FARM, and the RFC-typical 100 ms for
    /// detection latency.
    pub counter_interval: Dur,
    /// 1-in-N packet sampling rate.
    pub sampling_rate: u64,
    /// Bytes per exported counter record.
    pub counter_record_bytes: u64,
    /// Bytes per packet-sample datagram.
    pub sample_bytes: u64,
    /// Collector HH threshold (bytes per interval scaled to bytes/s).
    pub hh_threshold_bps: u64,
    /// Collector CPU cost per processed record, cycles.
    pub collector_cycles_per_record: u64,
    /// Agent CPU cost per exported record/sample, cycles (sFlow agents
    /// are deliberately lightweight: sample-and-forward, no filtering).
    pub agent_cycles_per_record: u64,
}

impl Default for SflowConfig {
    fn default() -> Self {
        SflowConfig {
            counter_interval: Dur::from_millis(100),
            sampling_rate: 128,
            counter_record_bytes: 88,
            sample_bytes: 144,
            hh_threshold_bps: 1_000_000_000,
            collector_cycles_per_record: 4_000,
            agent_cycles_per_record: 1_200,
        }
    }
}

/// A heavy-hitter detection made by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SflowDetection {
    pub at: Time,
    pub switch: SwitchId,
    pub port: PortId,
}

#[derive(Debug)]
struct Agent {
    switch: SwitchId,
    sampler: PacketSampler,
    next_export: Time,
}

/// The centralized collector's accounting.
#[derive(Debug, Default, Clone)]
pub struct CollectorStats {
    pub records_received: u64,
    pub samples_received: u64,
    pub bytes_received: u64,
    /// CPU cycles burned processing records.
    pub cpu_cycles: u64,
}

/// A full sFlow deployment over the simulated fabric.
#[derive(Debug)]
pub struct SflowSystem {
    cfg: SflowConfig,
    agents: Vec<Agent>,
    /// Collector-side last-seen tx counters per (switch, port).
    last_counters: HashMap<(SwitchId, PortId), u64>,
    pub collector: CollectorStats,
    pub detections: Vec<SflowDetection>,
    /// Ports currently flagged as heavy (for churn tracking).
    flagged: HashMap<(SwitchId, PortId), bool>,
}

impl SflowSystem {
    /// Deploys agents on the given switches.
    pub fn new(switches: &[SwitchId], cfg: SflowConfig) -> SflowSystem {
        let agents = switches
            .iter()
            .map(|&s| Agent {
                switch: s,
                sampler: PacketSampler::new(cfg.sampling_rate),
                next_export: Time::ZERO + cfg.counter_interval,
            })
            .collect();
        SflowSystem {
            cfg,
            agents,
            last_counters: HashMap::new(),
            collector: CollectorStats::default(),
            detections: Vec::new(),
            flagged: HashMap::new(),
        }
    }

    /// Offers the tick's traffic to the packet samplers (the sampled
    /// datagrams go straight to the collector).
    pub fn observe_traffic(&mut self, events: &[TrafficEvent], net: &mut Network) {
        for agent in &mut self.agents {
            let packets: u64 = events
                .iter()
                .filter(|e| e.switch == agent.switch)
                .map(|e| e.packets)
                .sum();
            let samples = agent.sampler.sample(packets);
            if samples > 0 {
                self.collector.samples_received += samples;
                self.collector.bytes_received += samples * self.cfg.sample_bytes;
                self.collector.cpu_cycles += samples * self.cfg.collector_cycles_per_record;
                if let Some(sw) = net.switch_mut(agent.switch) {
                    sw.cpu_mut()
                        .charge_cycles(samples * self.cfg.agent_cycles_per_record);
                }
            }
        }
    }

    /// Advances to `to`, exporting counters at every elapsed interval and
    /// running the collector's HH analysis.
    pub fn advance(&mut self, to: Time, net: &mut Network) {
        loop {
            let Some(due) = self.agents.iter().map(|a| a.next_export).min() else {
                return;
            };
            if due > to {
                return;
            }
            for ai in 0..self.agents.len() {
                if self.agents[ai].next_export > due {
                    continue;
                }
                let swid = self.agents[ai].switch;
                let interval = self.cfg.counter_interval;
                self.agents[ai].next_export = due + interval;
                let Some(sw) = net.switch_mut(swid) else {
                    continue;
                };
                // The agent reads counters (over the same PCIe path FARM
                // uses) and forwards one record per port — no filtering.
                let (stats, _latency) = sw.poll_ports(PortSel::Any);
                sw.cpu_mut()
                    .charge_cycles(stats.len() as u64 * self.cfg.agent_cycles_per_record);
                self.collector.records_received += stats.len() as u64;
                self.collector.bytes_received += stats.len() as u64 * self.cfg.counter_record_bytes;
                self.collector.cpu_cycles +=
                    stats.len() as u64 * self.cfg.collector_cycles_per_record;
                // Collector-side HH detection from counter deltas.
                let per_interval_threshold =
                    (self.cfg.hh_threshold_bps as f64 / 8.0 * interval.as_secs_f64()) as u64;
                for ps in stats {
                    let key = (swid, ps.port);
                    // Agents boot with the switch, so the first export's
                    // baseline is zero.
                    let prev = self.last_counters.insert(key, ps.counters.tx_bytes);
                    let delta = ps.counters.tx_bytes - prev.unwrap_or(0);
                    let was = self.flagged.get(&key).copied().unwrap_or(false);
                    let is_heavy = delta >= per_interval_threshold.max(1);
                    if is_heavy && !was {
                        self.detections.push(SflowDetection {
                            at: due,
                            switch: swid,
                            port: ps.port,
                        });
                    }
                    self.flagged.insert(key, is_heavy);
                }
            }
        }
    }

    /// First detection at or after `t` on a switch.
    pub fn first_detection_after(&self, t: Time, switch: SwitchId) -> Option<Time> {
        self.detections
            .iter()
            .filter(|d| d.switch == switch && d.at >= t)
            .map(|d| d.at)
            .min()
    }

    /// Export bandwidth in bits/s for a fabric with `total_ports` ports —
    /// the closed-form line of Fig. 4 (load is traffic-independent).
    pub fn export_bps(&self, total_ports: u64) -> f64 {
        total_ports as f64 * self.cfg.counter_record_bytes as f64 * 8.0
            / self.cfg.counter_interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_netsim::switch::SwitchModel;
    use farm_netsim::topology::Topology;
    use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig, Workload};

    fn rig() -> (Network, SwitchId) {
        let topo = Topology::spine_leaf(
            1,
            2,
            SwitchModel::test_model(16),
            SwitchModel::test_model(16),
        );
        let net = Network::new(topo);
        let leaf = net.topology().leaves().next().unwrap();
        (net, leaf)
    }

    #[test]
    fn detects_heavy_hitters_at_export_granularity() {
        let (mut net, leaf) = rig();
        let ids = net.switch_ids();
        let mut sflow = SflowSystem::new(
            &ids,
            SflowConfig {
                counter_interval: Dur::from_millis(100),
                hh_threshold_bps: 1_000_000_000,
                ..Default::default()
            },
        );
        let mut hh = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 16,
            hh_ratio: 0.1,
            hh_rate_bps: 5_000_000_000,
            ..Default::default()
        });
        let tick = Dur::from_millis(10);
        let mut now = Time::ZERO;
        for _ in 0..30 {
            let events = hh.advance(now, tick);
            net.apply_traffic(&events);
            sflow.observe_traffic(&events, &mut net);
            now += tick;
            sflow.advance(now, &mut net);
        }
        let det = sflow.first_detection_after(Time::ZERO, leaf);
        assert!(det.is_some(), "sFlow must find the heavy port");
        // Detection cannot be faster than the export interval.
        assert!(det.unwrap() >= Time::from_millis(100));
    }

    #[test]
    fn export_load_scales_linearly_with_ports() {
        let cfg = SflowConfig {
            counter_interval: Dur::from_millis(10),
            ..Default::default()
        };
        let s = SflowSystem::new(&[SwitchId(0)], cfg);
        let at_100 = s.export_bps(100);
        let at_1000 = s.export_bps(1000);
        assert!((at_1000 / at_100 - 10.0).abs() < 1e-9);
        // 1 ms export is 10× the load of 10 ms export.
        let fast = SflowSystem::new(
            &[SwitchId(0)],
            SflowConfig {
                counter_interval: Dur::from_millis(1),
                ..Default::default()
            },
        );
        assert!((fast.export_bps(100) / at_100 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn collector_pays_for_every_record() {
        let (mut net, leaf) = rig();
        let ids = net.switch_ids();
        let mut sflow = SflowSystem::new(&ids, SflowConfig::default());
        let mut hh = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 16,
            ..Default::default()
        });
        let events = hh.advance(Time::ZERO, Dur::from_millis(200));
        net.apply_traffic(&events);
        sflow.observe_traffic(&events, &mut net);
        sflow.advance(Time::from_millis(200), &mut net);
        assert!(sflow.collector.records_received > 0);
        assert_eq!(
            sflow.collector.cpu_cycles,
            (sflow.collector.records_received + sflow.collector.samples_received)
                * SflowConfig::default().collector_cycles_per_record
        );
        // Agents burned switch CPU without any local analysis.
        assert!(net.switch(leaf).unwrap().cpu().busy() > Dur::ZERO);
    }

    #[test]
    fn sampling_respects_rate() {
        let (mut net, leaf) = rig();
        let mut sflow = SflowSystem::new(
            &[leaf],
            SflowConfig {
                sampling_rate: 100,
                ..Default::default()
            },
        );
        let events = vec![TrafficEvent {
            switch: leaf,
            rx_port: None,
            tx_port: Some(PortId(0)),
            flow: farm_netsim::types::FlowKey::tcp(
                farm_netsim::types::Ipv4::new(1, 1, 1, 1),
                1,
                farm_netsim::types::Ipv4::new(2, 2, 2, 2),
                2,
            ),
            bytes: 1_500_000,
            packets: 1000,
        }];
        net.apply_traffic(&events);
        sflow.observe_traffic(&events, &mut net);
        assert_eq!(sflow.collector.samples_received, 10);
    }
}
