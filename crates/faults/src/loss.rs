//! Lossy control-channel model.
//!
//! The management network between switches and the seeder/harvesters is
//! not assumed reliable: reports can be dropped, delayed or duplicated.
//! [`LossSpec`] describes the impairment; [`LossModel`] rolls the
//! per-message dice from a deterministic stream so an impaired run is
//! replayable end to end.

use farm_netsim::time::Dur;

use crate::rng::DetRng;

/// Impairment parameters of a control channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossSpec {
    /// Probability a delivery attempt is dropped, `[0, 1]`.
    pub drop: f64,
    /// Probability a delivered message arrives twice, `[0, 1]`.
    pub duplicate: f64,
    /// Extra one-way latency added to every delivered message.
    pub delay: Dur,
}

impl LossSpec {
    /// A perfectly healthy channel.
    pub const HEALTHY: LossSpec = LossSpec {
        drop: 0.0,
        duplicate: 0.0,
        delay: Dur::ZERO,
    };

    /// Pure loss with the given drop probability.
    pub fn dropping(drop: f64) -> LossSpec {
        LossSpec {
            drop,
            ..LossSpec::HEALTHY
        }
    }

    /// True when the channel impairs nothing.
    pub fn is_healthy(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.delay.is_zero()
    }
}

impl Default for LossSpec {
    fn default() -> Self {
        LossSpec::HEALTHY
    }
}

/// Outcome of one delivery attempt over a lossy channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The attempt was dropped in transit.
    Dropped,
    /// The message arrives `copies` times after `delay`.
    Delivered {
        /// 1 normally, 2 when the channel duplicated the message.
        copies: u8,
    },
}

/// A [`LossSpec`] paired with its own deterministic decision stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LossModel {
    spec: LossSpec,
    rng: DetRng,
}

impl LossModel {
    /// A model rolling decisions from `seed`.
    pub fn new(spec: LossSpec, seed: u64) -> LossModel {
        LossModel {
            spec,
            rng: DetRng::new(seed),
        }
    }

    /// Current impairment parameters.
    pub fn spec(&self) -> LossSpec {
        self.spec
    }

    /// Replaces the impairment parameters, keeping the decision stream.
    pub fn set_spec(&mut self, spec: LossSpec) {
        self.spec = spec;
    }

    /// Rolls the fate of one delivery attempt.
    pub fn roll(&mut self) -> Delivery {
        if self.rng.chance(self.spec.drop) {
            return Delivery::Dropped;
        }
        let copies = if self.rng.chance(self.spec.duplicate) {
            2
        } else {
            1
        };
        Delivery::Delivered { copies }
    }

    /// Extra latency applied to delivered messages.
    pub fn delay(&self) -> Dur {
        self.spec.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_channel_delivers_everything_once() {
        let mut m = LossModel::new(LossSpec::HEALTHY, 3);
        for _ in 0..100 {
            assert_eq!(m.roll(), Delivery::Delivered { copies: 1 });
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut m = LossModel::new(LossSpec::dropping(1.0), 3);
        for _ in 0..100 {
            assert_eq!(m.roll(), Delivery::Dropped);
        }
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let mut m = LossModel::new(LossSpec::dropping(0.3), 99);
        let drops = (0..10_000)
            .filter(|_| m.roll() == Delivery::Dropped)
            .count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let spec = LossSpec {
            drop: 0.4,
            duplicate: 0.2,
            delay: Dur::from_micros(50),
        };
        let mut a = LossModel::new(spec, 1234);
        let mut b = LossModel::new(spec, 1234);
        for _ in 0..200 {
            assert_eq!(a.roll(), b.roll());
        }
    }
}
