//! # farm-faults — deterministic fault injection
//!
//! FARM's monitoring plane has to keep working through the same churn it is
//! supposed to observe: switches crash and come back cold, links flap, the
//! management network drops and duplicates control messages, and PCIe
//! bandwidth between ASIC and switch CPU degrades under load. This crate
//! describes those failures as *data* so the rest of the system can apply
//! them at simulated time and — crucially — replay them bit-for-bit:
//!
//! - [`FaultPlan`] / [`FaultEvent`] / [`FaultKind`]: an ordered schedule of
//!   failures and repairs, written explicitly or generated from a seed with
//!   [`FaultPlan::churn`].
//! - [`FaultInjector`]: a cursor the runtime drains as virtual time
//!   advances ([`FaultInjector::take_due`]).
//! - [`LossSpec`] / [`LossModel`] / [`Delivery`]: per-message
//!   drop/duplicate/delay decisions for lossy control channels, rolled from
//!   a deterministic stream.
//! - [`DetRng`]: the dependency-free SplitMix64 generator behind both.
//!
//! Everything here is pure and deterministic: equal seeds and inputs yield
//! identical schedules and decisions on every platform, so any failure found
//! under churn reproduces from a single integer.
//!
//! ```
//! use farm_faults::{FaultKind, FaultPlan, FaultInjector};
//! use farm_netsim::time::{Dur, Time};
//! use farm_netsim::types::SwitchId;
//!
//! let plan = FaultPlan::new()
//!     .crash_and_restart(SwitchId(2), Time::from_millis(10), Dur::from_millis(40))
//!     .link_flap(SwitchId(0), SwitchId(4), Time::from_millis(25), Dur::from_millis(5));
//! let mut injector = FaultInjector::new(plan);
//! let due = injector.take_due(Time::from_millis(10));
//! assert!(matches!(due[0].kind, FaultKind::SwitchCrash { .. }));
//! ```

pub mod loss;
pub mod plan;
pub mod rng;

pub use loss::{Delivery, LossModel, LossSpec};
pub use plan::{ChurnProfile, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use rng::DetRng;
