//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] is an explicit list of timed [`FaultEvent`]s, optionally
//! generated from a seed by [`FaultPlan::churn`]. Plans are data, not
//! behaviour: the runtime pulls due events out of a [`FaultInjector`] as
//! virtual time advances and applies them to the network/runtime itself.
//! Because schedules are fully determined by their inputs, any failure found
//! under churn can be replayed from the plan seed alone.

use farm_netsim::time::{Dur, Time};
use farm_netsim::types::SwitchId;

use crate::loss::LossSpec;
use crate::rng::DetRng;

/// One kind of injected failure (or the matching repair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The switch dies: its ASIC/CPU state and the Soil runtime on it are
    /// lost; seeds hosted there become orphans.
    SwitchCrash { switch: SwitchId },
    /// The switch comes back cold (empty TCAM, no seeds).
    SwitchRestart { switch: SwitchId },
    /// The link between `a` and `b` stops carrying traffic.
    LinkDown { a: SwitchId, b: SwitchId },
    /// The link between `a` and `b` is restored.
    LinkUp { a: SwitchId, b: SwitchId },
    /// Control-channel impairment for one switch (`Some`) or the whole
    /// management network (`None`).
    ControlLoss {
        switch: Option<SwitchId>,
        spec: LossSpec,
    },
    /// Clears a previous [`FaultKind::ControlLoss`] for the same scope.
    ControlHeal { switch: Option<SwitchId> },
    /// PCIe bandwidth between ASIC and switch CPU degrades to
    /// `factor` × nominal (`0 < factor <= 1`).
    PcieDegrade { switch: SwitchId, factor: f64 },
    /// Restores nominal PCIe bandwidth.
    PcieRestore { switch: SwitchId },
}

impl FaultKind {
    /// Stable ordering key so simultaneous events apply in a reproducible
    /// order (repairs before new failures at the same instant).
    fn order_key(&self) -> (u8, u64, u64) {
        match *self {
            FaultKind::SwitchRestart { switch } => (0, switch.0 as u64, 0),
            FaultKind::LinkUp { a, b } => (1, a.0 as u64, b.0 as u64),
            FaultKind::ControlHeal { switch } => (2, switch.map_or(u64::MAX, |s| s.0 as u64), 0),
            FaultKind::PcieRestore { switch } => (3, switch.0 as u64, 0),
            FaultKind::SwitchCrash { switch } => (4, switch.0 as u64, 0),
            FaultKind::LinkDown { a, b } => (5, a.0 as u64, b.0 as u64),
            FaultKind::ControlLoss { switch, .. } => {
                (6, switch.map_or(u64::MAX, |s| s.0 as u64), 0)
            }
            FaultKind::PcieDegrade { switch, .. } => (7, switch.0 as u64, 0),
        }
    }
}

/// A failure scheduled at a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: Time,
    pub kind: FaultKind,
}

/// Knobs for the seeded churn generator ([`FaultPlan::churn`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProfile {
    /// Mean gap between consecutive injected faults.
    pub mean_gap: Dur,
    /// How long a crashed switch stays down before restarting.
    pub crash_outage: Dur,
    /// How long a downed link stays down.
    pub link_outage: Dur,
    /// Relative weight of switch crashes vs. link flaps vs. PCIe
    /// degradation, in that order. Zero disables a class.
    pub weights: [u32; 3],
    /// Degradation factor applied by PCIe faults.
    pub pcie_factor: f64,
    /// How long PCIe degradation lasts.
    pub pcie_outage: Dur,
}

impl Default for ChurnProfile {
    fn default() -> Self {
        ChurnProfile {
            mean_gap: Dur::from_millis(40),
            crash_outage: Dur::from_millis(60),
            link_outage: Dur::from_millis(30),
            weights: [2, 2, 1],
            pcie_factor: 0.25,
            pcie_outage: Dur::from_millis(50),
        }
    }
}

/// An ordered, deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one event; events may be pushed in any order.
    pub fn push(&mut self, at: Time, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, at: Time, kind: FaultKind) -> FaultPlan {
        self.push(at, kind);
        self
    }

    /// Convenience: crash at `at`, restart `outage` later.
    pub fn crash_and_restart(mut self, switch: SwitchId, at: Time, outage: Dur) -> FaultPlan {
        self.push(at, FaultKind::SwitchCrash { switch });
        self.push(at + outage, FaultKind::SwitchRestart { switch });
        self
    }

    /// Convenience: link down at `at`, back up `outage` later.
    pub fn link_flap(mut self, a: SwitchId, b: SwitchId, at: Time, outage: Dur) -> FaultPlan {
        self.push(at, FaultKind::LinkDown { a, b });
        self.push(at + outage, FaultKind::LinkUp { a, b });
        self
    }

    /// Generates a randomized-but-deterministic churn schedule over
    /// `switches` within `[start, end)`. Equal inputs yield equal plans.
    pub fn churn(
        seed: u64,
        switches: &[SwitchId],
        start: Time,
        end: Time,
        profile: ChurnProfile,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if switches.is_empty() || end <= start || profile.mean_gap.is_zero() {
            return plan.sorted();
        }
        let mut rng = DetRng::new(seed);
        let total: u32 = profile.weights.iter().sum();
        if total == 0 {
            return plan.sorted();
        }
        let mut t = start;
        loop {
            // Exponential-ish gap: uniform in [0.5, 1.5) × mean keeps the
            // schedule aperiodic without needing a log().
            let gap = profile.mean_gap.mul_f64(0.5 + rng.next_f64());
            t += gap;
            if t >= end {
                break;
            }
            let mut pick = rng.below(total as u64) as u32;
            let sw = switches[rng.below(switches.len() as u64) as usize];
            if pick < profile.weights[0] {
                plan = plan.crash_and_restart(sw, t, profile.crash_outage);
                continue;
            }
            pick -= profile.weights[0];
            if pick < profile.weights[1] {
                let other = switches[rng.below(switches.len() as u64) as usize];
                if other != sw {
                    plan = plan.link_flap(sw, other, t, profile.link_outage);
                }
                continue;
            }
            plan.push(
                t,
                FaultKind::PcieDegrade {
                    switch: sw,
                    factor: profile.pcie_factor,
                },
            );
            plan.push(
                t + profile.pcie_outage,
                FaultKind::PcieRestore { switch: sw },
            );
        }
        plan.sorted()
    }

    /// Events in application order (time, then stable kind key).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn sorted(mut self) -> FaultPlan {
        self.sort();
        self
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.at, e.kind.order_key()));
    }
}

/// Cursor over a [`FaultPlan`] that hands out events as time advances.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    next: usize,
}

impl FaultInjector {
    /// Wraps a plan; the plan is (re-)sorted into application order.
    pub fn new(mut plan: FaultPlan) -> FaultInjector {
        plan.sort();
        FaultInjector { plan, next: 0 }
    }

    /// All events with `at <= now` that have not been handed out yet,
    /// in application order.
    pub fn take_due(&mut self, now: Time) -> Vec<FaultEvent> {
        let start = self.next;
        while self.next < self.plan.events.len() && self.plan.events[self.next].at <= now {
            self.next += 1;
        }
        self.plan.events[start..self.next].to_vec()
    }

    /// Instant of the next pending event, if any.
    pub fn next_at(&self) -> Option<Time> {
        self.plan.events.get(self.next).map(|e| e.at)
    }

    /// True when every event has been handed out.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(n: u32) -> SwitchId {
        SwitchId(n)
    }

    #[test]
    fn plan_sorts_events_by_time_then_kind() {
        let plan = FaultPlan::new()
            .with(
                Time::from_millis(9),
                FaultKind::SwitchCrash { switch: sw(2) },
            )
            .with(
                Time::from_millis(3),
                FaultKind::SwitchCrash { switch: sw(1) },
            )
            .with(
                Time::from_millis(9),
                FaultKind::SwitchRestart { switch: sw(1) },
            );
        let mut inj = FaultInjector::new(plan);
        let due = inj.take_due(Time::from_millis(10));
        assert_eq!(due.len(), 3);
        assert_eq!(due[0].at, Time::from_millis(3));
        // At t=9 the restart (repair) applies before the crash.
        assert_eq!(due[1].kind, FaultKind::SwitchRestart { switch: sw(1) });
        assert_eq!(due[2].kind, FaultKind::SwitchCrash { switch: sw(2) });
    }

    #[test]
    fn injector_hands_out_each_event_once() {
        let plan =
            FaultPlan::new().crash_and_restart(sw(0), Time::from_millis(5), Dur::from_millis(10));
        let mut inj = FaultInjector::new(plan);
        assert!(inj.take_due(Time::from_millis(1)).is_empty());
        assert_eq!(inj.take_due(Time::from_millis(5)).len(), 1);
        assert!(inj.take_due(Time::from_millis(5)).is_empty());
        assert_eq!(inj.take_due(Time::from_millis(60)).len(), 1);
        assert!(inj.exhausted());
        assert_eq!(inj.next_at(), None);
    }

    #[test]
    fn churn_is_deterministic_in_seed() {
        let switches: Vec<SwitchId> = (0..6).map(sw).collect();
        let a = FaultPlan::churn(
            77,
            &switches,
            Time::ZERO,
            Time::from_secs(1),
            ChurnProfile::default(),
        );
        let b = FaultPlan::churn(
            77,
            &switches,
            Time::ZERO,
            Time::from_secs(1),
            ChurnProfile::default(),
        );
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::churn(
            78,
            &switches,
            Time::ZERO,
            Time::from_secs(1),
            ChurnProfile::default(),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn churn_pairs_failures_with_repairs() {
        let switches: Vec<SwitchId> = (0..4).map(sw).collect();
        let plan = FaultPlan::churn(
            5,
            &switches,
            Time::ZERO,
            Time::from_secs(2),
            ChurnProfile::default(),
        );
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::SwitchCrash { .. }))
            .count();
        let restarts = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::SwitchRestart { .. }))
            .count();
        assert_eq!(crashes, restarts);
        let degrades = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PcieDegrade { .. }))
            .count();
        let restores = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PcieRestore { .. }))
            .count();
        assert_eq!(degrades, restores);
    }

    #[test]
    fn empty_inputs_yield_empty_plans() {
        assert!(FaultPlan::churn(
            1,
            &[],
            Time::ZERO,
            Time::from_secs(1),
            ChurnProfile::default()
        )
        .is_empty());
        assert!(FaultPlan::churn(
            1,
            &[sw(0)],
            Time::from_secs(1),
            Time::from_secs(1),
            ChurnProfile::default()
        )
        .is_empty());
    }
}
