//! A tiny, dependency-free deterministic RNG.
//!
//! Fault injection must be *replayable*: the same plan seed has to yield
//! bit-identical fault schedules and loss decisions across runs and
//! platforms, so failures found under churn can be reproduced from a
//! single integer. SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators") is enough: statistically solid for
//! simulation, trivially portable, and stable forever — unlike external
//! RNG crates whose streams may change between versions.

/// SplitMix64 generator with convenience helpers for fault decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::below(0)");
        // Multiply-shift bound (Lemire); bias is negligible for the small
        // ranges fault plans draw from.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Forks an independent stream (for per-subsystem decision making
    /// that must not perturb the parent's sequence).
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_yield_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_is_independent_of_parent_continuation() {
        let mut a = DetRng::new(11);
        let mut fork = a.fork();
        let after_fork = a.next_u64();
        // The fork's stream differs from the parent's continuation.
        assert_ne!(fork.next_u64(), after_fork);
    }
}
