//! Connection-scale soak: the event loop must hold thousands of mostly
//! idle connections while a chattering subset keeps doing correct RPCs,
//! and must stay healthy after the whole fleet hangs up at once.
//!
//! The test needs ~2 file descriptors per connection (client and
//! accepted side live in this process). It probes `RLIMIT_NOFILE`,
//! tries to raise the soft limit, and skips — loudly, not silently
//! red — when the environment cannot cover the fleet.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_net::{encode_envelope, Decoded, Envelope, Frame, FrameDecoder, NetServer};
use farm_telemetry::Telemetry;

const IDLE_CONNS: usize = 2_000;
const CHATTY_CONNS: usize = 32;
const RPCS_PER_CHATTER: u64 = 25;

mod fd_limit {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Tries to make `need` descriptors available; returns the soft
    /// limit in force afterwards.
    pub fn ensure(need: u64) -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: plain out-pointer syscall wrappers on a stack value.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        if lim.cur >= need {
            return lim.cur;
        }
        let want = Rlimit {
            cur: need.min(lim.max),
            max: lim.max,
        };
        // SAFETY: raising the soft limit within the hard limit.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return want.cur;
        }
        lim.cur
    }
}

fn gauge(telemetry: &Telemetry) -> f64 {
    telemetry
        .snapshot()
        .gauge("net.server_conns")
        .unwrap_or(0.0)
}

/// Polls the connection gauge until it crosses `want` (from above or
/// below per `rising`) or the deadline passes.
fn await_gauge(telemetry: &Telemetry, want: f64, rising: bool) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = gauge(telemetry);
        if (rising && now >= want) || (!rising && now <= want) || Instant::now() > deadline {
            return now;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One request → response round trip over a raw blocking socket,
/// checking the echo payload comes back intact.
fn echo_rpc(stream: &mut TcpStream, decoder: &mut FrameDecoder, corr: u64) {
    let request = Frame::Heartbeat {
        switch: 7,
        seq: corr,
        at_ns: corr * 3,
    };
    let mut buf = Vec::with_capacity(32);
    encode_envelope(
        &Envelope {
            corr,
            response: false,
            frame: request.clone(),
        },
        &mut buf,
    );
    stream.write_all(&buf).expect("request write");
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(Decoded::Frame(env, _)) = decoder.next().expect("clean stream") {
            assert!(env.response, "only responses expected on this socket");
            assert_eq!(env.corr, corr, "responses must match request order");
            assert_eq!(env.frame, request, "echo handler must return the payload");
            return;
        }
        let n = stream.read(&mut chunk).expect("response read");
        assert_ne!(n, 0, "server hung up mid-RPC");
        decoder.extend(&chunk[..n]);
    }
}

#[test]
fn thousands_of_connections_soak() {
    let total = IDLE_CONNS + CHATTY_CONNS;
    let need = (total as u64) * 2 + 64;
    let avail = fd_limit::ensure(need);
    if avail < need {
        eprintln!(
            "soak_scale: skipping — RLIMIT_NOFILE {avail} cannot hold {total} connections \
             (need {need})"
        );
        return;
    }

    let telemetry = Telemetry::new();
    let handler = Arc::new(|env: &Envelope| Some(env.frame.clone()));
    let mut server =
        NetServer::bind("127.0.0.1:0".parse().unwrap(), &telemetry, handler).expect("bind server");
    let addr: SocketAddr = server.local_addr();

    let mut idle = Vec::with_capacity(IDLE_CONNS);
    for i in 0..IDLE_CONNS {
        idle.push(TcpStream::connect(addr).expect("idle connect"));
        if i % 256 == 255 {
            // Let the accept loop keep pace with the ramp.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let mut chatters: Vec<(TcpStream, FrameDecoder)> = (0..CHATTY_CONNS)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("chatty connect");
            s.set_nodelay(true).expect("nodelay");
            s.set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            (s, FrameDecoder::new())
        })
        .collect();

    let seen = await_gauge(&telemetry, total as f64, true);
    assert!(
        seen >= total as f64,
        "event loop should hold all {total} connections, gauge says {seen}"
    );

    // The chattering subset keeps the request path busy while the idle
    // fleet sits on the poller.
    let mut corr = 1u64;
    for _ in 0..RPCS_PER_CHATTER {
        for (stream, decoder) in &mut chatters {
            echo_rpc(stream, decoder, corr);
            corr += 1;
        }
    }

    // Mass hangup: the loop must reap every idle session and keep
    // serving the survivors.
    drop(idle);
    let left = await_gauge(&telemetry, CHATTY_CONNS as f64, false);
    assert!(
        left <= CHATTY_CONNS as f64,
        "idle sessions should be reaped after hangup, gauge says {left}"
    );
    for (stream, decoder) in &mut chatters {
        echo_rpc(stream, decoder, corr);
        corr += 1;
    }

    drop(chatters);
    server.shutdown();
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("net.decode_errors"), 0);
    assert!(
        snap.counter("net.frames_received") >= RPCS_PER_CHATTER * CHATTY_CONNS as u64,
        "server should have decoded every RPC request"
    );
}
