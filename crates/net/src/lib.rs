//! # farm-net — the wire-protocol transport
//!
//! A dependency-light TCP transport carrying FARM's control traffic
//! (poll reports, harvester directives, heartbeats, seed messages,
//! migration snapshots) as length-prefixed, versioned binary frames.
//!
//! Layer map, bottom-up:
//!
//! * [`wire`] — varints, zigzag, length prefixes, a bounds-checked
//!   reader. Every decoder is total: corrupt input yields a
//!   [`WireError`], never a panic or unbounded allocation.
//! * [`frame`] — the typed [`Frame`] enum and the [`Envelope`] that
//!   adds multiplexing metadata (correlation id + response flag).
//!   `encode(decode(bytes))` is byte-exact.
//! * [`snapshot`] — the versioned [`VSeedSnapshot`] payload riding
//!   `Migrate` frames and checkpoint files, with `From` upgrades from
//!   every older revision.
//! * [`buf`] / [`poll`] — event-loop plumbing: a growable [`ByteRing`],
//!   the incremental [`FrameDecoder`] (equivalent to the one-shot
//!   decoder on any byte split), and the [`Poller`] readiness
//!   abstraction (raw epoll on Linux, `poll(2)` on other unixes).
//! * [`interceptor`] — the [`Interceptor`] send-path hook;
//!   [`LossInterceptor`] applies `farm-faults`' deterministic loss
//!   model (drop / duplicate / delay) to real frames.
//! * [`conn`] / [`server`] — the runtime: a blocking [`Connection`]
//!   with a bounded send queue (backpressure), batched poll-report
//!   flushing, request/response multiplexing and exponential-backoff
//!   reconnect; a [`NetServer`] serving every session from one
//!   readiness-polling reactor thread plus a sticky worker pool.
//!
//! Every endpoint reports into `farm-telemetry` under the `net.*`
//! namespace: `net.bytes`, `net.frames_sent` / `net.frames_received`,
//! `net.dropped_frames`, `net.dead_letters`, `net.connects` /
//! `net.reconnects` / `net.connect_failures`, `net.rpcs`,
//! `net.rpc_timeouts`, `net.decode_errors`, the `net.rpc_latency_us`
//! histogram and the `net.server_conns` gauge.

pub mod buf;
pub mod conn;
pub mod frame;
pub mod interceptor;
pub mod poll;
#[cfg(unix)]
mod reactor;
pub mod server;
pub mod snapshot;
mod sock;
pub mod wire;

pub use buf::{ByteRing, Decoded, FrameDecoder};
pub use conn::{Connection, NetConfig, NetError};
pub use frame::{
    decode_body, decode_envelope, decode_request_corr, encode_envelope, ControlOp, ControlReply,
    Diagnostic, Envelope, Frame, PodInfo, Report, SeedDescriptor,
};
pub use interceptor::{Interceptor, LossInterceptor, Passthrough, Verdict};
pub use poll::{Interest, PollEvent, Poller, Readiness, Token};
pub use server::{FrameHandler, NetServer};
pub use snapshot::{
    decode_checkpoint_any, decode_checkpoint_file, encode_checkpoint_doc, encode_checkpoint_file,
    CheckpointDoc, CheckpointLoad, VSeedSnapshot,
};
pub use wire::{crc32, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};

// The snapshot payload type carried by `Migrate` frames and the fed
// snapshot-bearing ops, re-exported so wire-level consumers don't need
// a direct farm-soil dependency.
pub use farm_soil::SeedSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use farm_telemetry::Telemetry;
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};
    use std::sync::Arc;
    use std::time::Duration;

    fn loopback() -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
    }

    #[test]
    fn request_response_round_trip_over_loopback() {
        let telemetry = Telemetry::new();
        let server = NetServer::bind(
            loopback(),
            &telemetry,
            Arc::new(|env: &Envelope| match &env.frame {
                Frame::Heartbeat { seq, switch, at_ns } => Some(Frame::Heartbeat {
                    switch: *switch,
                    seq: seq + 1,
                    at_ns: *at_ns,
                }),
                _ => None,
            }),
        )
        .expect("bind");

        let conn = Connection::connect(server.local_addr(), NetConfig::default(), &telemetry);
        let reply = conn
            .request(Frame::Heartbeat {
                switch: 7,
                seq: 41,
                at_ns: 3,
            })
            .expect("rpc");
        assert_eq!(
            reply,
            Frame::Heartbeat {
                switch: 7,
                seq: 42,
                at_ns: 3
            }
        );

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("net.rpcs"), 1);
        assert!(snap.counter("net.bytes") > 0);
        let h = snap.histogram("net.rpc_latency_us").expect("latency hist");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn client_queues_frames_until_server_appears() {
        let telemetry = Telemetry::new();
        // Reserve a port, then connect before anything listens on it.
        let probe = std::net::TcpListener::bind(loopback()).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let cfg = NetConfig {
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
            max_reconnects: 200,
            ..NetConfig::default()
        };
        let conn = Connection::connect(addr, cfg, &telemetry);
        conn.send(Frame::Heartbeat {
            switch: 1,
            seq: 1,
            at_ns: 0,
        })
        .expect("queued while down");
        assert!(!conn.is_connected());
        // Let the supervisor fail at least one dial before the server
        // exists, so the reconnect path is genuinely exercised.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while telemetry.snapshot().counter("net.connect_failures") == 0 {
            assert!(std::time::Instant::now() < deadline, "no dial attempted");
            std::thread::sleep(Duration::from_millis(2));
        }

        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let got_h = Arc::clone(&got);
        let server = NetServer::bind(
            addr,
            &telemetry,
            Arc::new(move |env: &Envelope| {
                if let Frame::Heartbeat { seq, .. } = env.frame {
                    got_h.store(seq, std::sync::atomic::Ordering::Relaxed);
                }
                None
            }),
        )
        .expect("bind");
        assert!(conn.wait_connected(Duration::from_secs(5)), "reconnected");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.load(std::sync::atomic::Ordering::Relaxed) != 1 {
            assert!(std::time::Instant::now() < deadline, "frame never arrived");
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(server);
        let snap = telemetry.snapshot();
        assert!(snap.counter("net.connect_failures") >= 1);
        assert_eq!(snap.counter("net.connects"), 1);
    }

    #[test]
    fn rpc_through_full_loss_times_out_and_is_counted() {
        let telemetry = Telemetry::new();
        let server =
            NetServer::bind(loopback(), &telemetry, Arc::new(|_: &Envelope| None)).expect("bind");
        let cfg = NetConfig {
            request_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        };
        let conn = Connection::connect_with(
            server.local_addr(),
            cfg,
            &telemetry,
            Box::new(LossInterceptor::from_spec(
                farm_faults::LossSpec::dropping(1.0),
                1,
            )),
        );
        let got = conn.request(Frame::Ack);
        assert_eq!(got, Err(NetError::Timeout));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("net.rpc_timeouts"), 1);
        assert!(snap.counter("net.dropped_frames") >= 1);
    }

    #[test]
    fn close_flushes_queued_frames_before_disconnecting() {
        let telemetry = Telemetry::new();
        let seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen_h = Arc::clone(&seen);
        let server = NetServer::bind(
            loopback(),
            &telemetry,
            Arc::new(move |env: &Envelope| {
                if matches!(env.frame, Frame::Heartbeat { .. }) {
                    seen_h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                None
            }),
        )
        .expect("bind");
        let mut conn = Connection::connect(server.local_addr(), NetConfig::default(), &telemetry);
        for seq in 0..64 {
            conn.send(Frame::Heartbeat {
                switch: 0,
                seq,
                at_ns: 0,
            })
            .expect("send");
        }
        conn.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.load(std::sync::atomic::Ordering::Relaxed) < 64 {
            assert!(
                std::time::Instant::now() < deadline,
                "close dropped queued frames: {}/64",
                seen.load(std::sync::atomic::Ordering::Relaxed)
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn connection_gives_up_after_max_reconnects() {
        let telemetry = Telemetry::new();
        let probe = std::net::TcpListener::bind(loopback()).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let cfg = NetConfig {
            connect_timeout: Duration::from_millis(50),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            max_reconnects: 3,
            ..NetConfig::default()
        };
        let conn = Connection::connect(addr, cfg, &telemetry);
        conn.try_send(Frame::Ack).expect("queued");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            // Once the supervisor gives up, sends fail with Closed and
            // the queued frame has been dead-lettered.
            match conn.try_send(Frame::Ack) {
                Err(NetError::Closed) => break,
                _ => {
                    assert!(std::time::Instant::now() < deadline, "never gave up");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("net.connect_failures"), 4);
        assert!(snap.counter("net.dead_letters") >= 1);
    }
}
