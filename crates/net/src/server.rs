//! The accepting side of the transport: a readiness-polling event-loop
//! server (see [`crate::reactor`]) behind the same public surface the
//! old thread-per-connection server exposed — `TcpBridge`, farmd and
//! the integration tests run unchanged on it.
//!
//! One reactor thread multiplexes every session over the [`Poller`]
//! abstraction; frames are decoded incrementally off a growable ring
//! and handed to the [`FrameHandler`] on a sticky worker pool (frames
//! from one connection always hit the same worker, preserving arrival
//! order), so a handler that blocks never stalls the event loop.
//!
//! [`Poller`]: crate::poll::Poller

use std::net::SocketAddr;
use std::sync::Arc;

use farm_telemetry::Telemetry;

use crate::frame::{Envelope, Frame};

/// Server-side frame dispatch. Called once per inbound frame from a
/// worker thread; frames from one connection arrive in order, frames
/// from different connections call concurrently.
///
/// Return `Some(frame)` to answer a request; `None` defers to the
/// default `Ack` for requests and is ignored for one-way frames.
pub trait FrameHandler: Send + Sync {
    fn handle(&self, env: &Envelope) -> Option<Frame>;
}

impl<F> FrameHandler for F
where
    F: Fn(&Envelope) -> Option<Frame> + Send + Sync,
{
    fn handle(&self, env: &Envelope) -> Option<Frame> {
        self(env)
    }
}

/// A listening endpoint: one event-loop thread serves every client.
pub struct NetServer {
    local_addr: SocketAddr,
    #[cfg(unix)]
    inner: crate::reactor::ReactorHandle,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`local_addr`](Self::local_addr)) and starts the event loop.
    ///
    /// On targets without a readiness poller (non-unix) this fails with
    /// [`std::io::ErrorKind::Unsupported`]; the blocking client side of
    /// the crate still works there.
    pub fn bind(
        addr: SocketAddr,
        telemetry: &Telemetry,
        handler: Arc<dyn FrameHandler>,
    ) -> std::io::Result<NetServer> {
        #[cfg(unix)]
        {
            let inner = crate::reactor::spawn(addr, telemetry, handler)?;
            Ok(NetServer {
                local_addr: inner.local_addr(),
                inner,
            })
        }
        #[cfg(not(unix))]
        {
            let _ = (addr, telemetry, handler);
            Err(std::io::ErrorKind::Unsupported.into())
        }
    }

    /// The bound address — the port actually chosen when binding :0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the event loop, severs open sessions, joins every thread.
    pub fn shutdown(&mut self) {
        #[cfg(unix)]
        self.inner.shutdown();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
