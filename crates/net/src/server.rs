//! The accepting side of the transport: a thread-per-connection TCP
//! server that decodes frames, hands them to a [`FrameHandler`], and
//! writes the handler's answer back for request frames.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use farm_telemetry::Telemetry;

use crate::frame::{encode_envelope, Envelope, Frame};
use crate::sock::{read_envelope, NetCounters, ReadFrame};

/// Server-side frame dispatch. Called once per inbound frame, from the
/// per-connection thread (so concurrent connections call concurrently).
///
/// Return `Some(frame)` to answer a request; `None` defers to the
/// default `Ack` for requests and is ignored for one-way frames.
pub trait FrameHandler: Send + Sync {
    fn handle(&self, env: &Envelope) -> Option<Frame>;
}

impl<F> FrameHandler for F
where
    F: Fn(&Envelope) -> Option<Frame> + Send + Sync,
{
    fn handle(&self, env: &Envelope) -> Option<Frame> {
        self(env)
    }
}

struct ServerShared {
    stop: AtomicBool,
    counters: NetCounters,
    handler: Arc<dyn FrameHandler>,
    /// Open client sockets, for a hard shutdown of lingering sessions.
    conns: Mutex<Vec<TcpStream>>,
}

/// A listening endpoint. One OS thread accepts; each accepted client
/// gets its own service thread.
pub struct NetServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`local_addr`](Self::local_addr)) and starts accepting.
    pub fn bind(
        addr: SocketAddr,
        telemetry: &Telemetry,
        handler: Arc<dyn FrameHandler>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            counters: NetCounters::new(telemetry),
            handler,
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("farm-net-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address — the port actually chosen when binding :0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, severs open sessions, joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // The accept thread sits in blocking accept(); a throwaway
        // connection to ourselves wakes it so it can observe `stop`.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for s in self.shared.conns.lock().expect("conns lock").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut service_threads = Vec::new();
    for incoming in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(_) => continue,
        };
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(clone);
        }
        let shared_conn = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("farm-net-serve".into())
            .spawn(move || serve_conn(stream, shared_conn));
        if let Ok(h) = spawned {
            service_threads.push(h);
        }
    }
    for h in service_threads {
        let _ = h.join();
    }
}

/// One client session: read frames until the peer says goodbye (or
/// vanishes, or sends garbage), answering requests inline.
fn serve_conn(stream: TcpStream, shared: Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_envelope(&mut reader, &shared.stop) {
            Ok(Some(ReadFrame::Frame(env, nbytes))) => {
                shared.counters.bytes.add(nbytes as u64);
                shared.counters.frames_received.inc();
                if matches!(env.frame, Frame::Shutdown) {
                    return;
                }
                let answer = shared.handler.handle(&env);
                if env.corr != 0 && !env.response {
                    let reply = Envelope::response(env.corr, answer.unwrap_or(Frame::Ack));
                    if !send_reply(&shared, &mut writer, &reply) {
                        return;
                    }
                }
            }
            // An undecodable body whose bytes were still fully framed:
            // the session survives. A recovered request corr gets a
            // structured Error response (the client sees `Rejected`
            // instead of a timeout); one-way garbage is just counted.
            Ok(Some(ReadFrame::Bad {
                corr,
                error,
                nbytes,
            })) => {
                shared.counters.bytes.add(nbytes as u64);
                shared.counters.decode_errors.inc();
                if let Some(corr) = corr {
                    let reply = Envelope::response(
                        corr,
                        Frame::Error {
                            message: format!("undecodable frame: {error}"),
                        },
                    );
                    if !send_reply(&shared, &mut writer, &reply) {
                        return;
                    }
                }
            }
            Ok(None) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(e) => {
                // Broken framing (oversized or overlong length prefix):
                // resync is impossible, so say why and hang up rather
                // than silently wedging the peer.
                if e.kind() == std::io::ErrorKind::InvalidData {
                    shared.counters.decode_errors.inc();
                    let bye = Envelope::one_way(Frame::Error {
                        message: format!("unrecoverable frame: {e}"),
                    });
                    send_reply(&shared, &mut writer, &bye);
                }
                return;
            }
        }
    }
}

/// Writes one envelope back to the client, accounting the send. Returns
/// false when the connection is gone.
fn send_reply(shared: &ServerShared, writer: &mut TcpStream, env: &Envelope) -> bool {
    let mut buf = Vec::with_capacity(64);
    encode_envelope(env, &mut buf);
    if writer.write_all(&buf).is_err() {
        return false;
    }
    shared.counters.bytes.add(buf.len() as u64);
    shared.counters.frames_sent.inc();
    true
}
