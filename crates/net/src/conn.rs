//! The multiplexed client connection.
//!
//! A [`Connection`] owns a supervisor thread that dials the peer
//! (retrying with exponential backoff), then runs a writer loop while
//! a companion reader thread decodes inbound frames. Outgoing frames
//! pass through a bounded send queue — the backpressure boundary — and
//! an [`Interceptor`] that may drop, duplicate or delay them.
//! Request/response multiplexing uses correlation ids: any number of
//! requests may be in flight; responses resolve them in any order.
//!
//! Delivery semantics: one-way frames are at-most-once (a session drop
//! loses whatever was in flight); requests are at-least-once *if the
//! caller retries on timeout* — the transport itself never re-sends.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use farm_soil::SharedRingBuffer;
use farm_telemetry::Telemetry;

use crate::frame::{encode_envelope, Envelope, Frame, Report};
use crate::interceptor::{Interceptor, Passthrough, Verdict};
use crate::sock::{read_envelope, NetCounters, ReadFrame};
use crate::wire::PROTOCOL_VERSION;

/// Transport knobs. The defaults suit loopback control traffic.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Name announced in the `Hello` preamble.
    pub node: String,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout — the granularity at which reader/writer
    /// threads notice shutdown; not a frame deadline.
    pub read_timeout: Duration,
    /// Default deadline for [`Connection::request`].
    pub request_timeout: Duration,
    /// Bounded send-queue capacity, frames. Full queue = backpressure:
    /// `send` blocks, `try_send` dead-letters.
    pub send_queue: usize,
    /// Queued poll reports per [`Frame::PollReport`] flush.
    pub batch_max: usize,
    /// Max age of a queued poll report before the next queue operation
    /// flushes the batch.
    pub batch_linger: Duration,
    /// First reconnect backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive failed dials before the connection gives up.
    pub max_reconnects: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            node: "farm-node".into(),
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(20),
            request_timeout: Duration::from_secs(2),
            send_queue: 1024,
            batch_max: 32,
            batch_linger: Duration::from_millis(2),
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(1),
            max_reconnects: 10,
        }
    }
}

/// Transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The connection was closed (locally) or gave up reconnecting.
    Closed,
    /// `try_send` found the bounded send queue full.
    QueueFull,
    /// A request got no response within its deadline.
    Timeout,
    /// The session died while a request was in flight.
    Disconnected,
    /// The peer answered with an `Error` frame.
    Rejected(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "net: connection closed"),
            NetError::QueueFull => write!(f, "net: send queue full"),
            NetError::Timeout => write!(f, "net: request timed out"),
            NetError::Disconnected => write!(f, "net: peer disconnected mid-request"),
            NetError::Rejected(m) => write!(f, "net: peer rejected request: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

struct BatchState {
    reports: Vec<Report>,
    oldest: Option<Instant>,
}

struct Shared {
    addr: SocketAddr,
    cfg: NetConfig,
    outbox: SharedRingBuffer<Envelope>,
    inbound: SharedRingBuffer<Envelope>,
    pending: Mutex<HashMap<u64, mpsc::SyncSender<Frame>>>,
    next_corr: AtomicU64,
    closed: AtomicBool,
    connected: AtomicBool,
    counters: NetCounters,
    batch: Mutex<BatchState>,
}

impl Shared {
    fn fail_pending(&self) {
        // Dropping the senders makes every waiting `request` observe a
        // disconnect instead of running out its full timeout.
        self.pending.lock().expect("pending lock").clear();
    }
}

/// A client connection to one peer. Cheap to move; dropping it flushes
/// the send queue (best effort) and tears the threads down.
pub struct Connection {
    shared: Arc<Shared>,
    supervisor: Option<thread::JoinHandle<()>>,
}

impl Connection {
    /// Opens a connection with no interceptor.
    pub fn connect(addr: SocketAddr, cfg: NetConfig, telemetry: &Telemetry) -> Connection {
        Connection::connect_with(addr, cfg, telemetry, Box::new(Passthrough))
    }

    /// Opens a connection whose outgoing frames pass through
    /// `interceptor`. Dialing happens on the supervisor thread, so this
    /// returns immediately even when the peer is down — frames queue
    /// (up to the bound) until the dial succeeds.
    pub fn connect_with(
        addr: SocketAddr,
        cfg: NetConfig,
        telemetry: &Telemetry,
        interceptor: Box<dyn Interceptor>,
    ) -> Connection {
        let shared = Arc::new(Shared {
            addr,
            outbox: SharedRingBuffer::new(cfg.send_queue),
            inbound: SharedRingBuffer::new(cfg.send_queue),
            pending: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            closed: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            counters: NetCounters::new(telemetry),
            batch: Mutex::new(BatchState {
                reports: Vec::new(),
                oldest: None,
            }),
            cfg,
        });
        let sup = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("farm-net-conn".into())
                .spawn(move || supervise(shared, interceptor))
                .expect("spawn connection supervisor")
        };
        Connection {
            shared,
            supervisor: Some(sup),
        }
    }

    /// True while a live TCP session exists.
    pub fn is_connected(&self) -> bool {
        self.shared.connected.load(Ordering::Relaxed)
    }

    /// Blocks until a session is up or `timeout` elapses.
    pub fn wait_connected(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_connected() {
                return true;
            }
            thread::sleep(Duration::from_millis(1));
        }
        self.is_connected()
    }

    /// Frames currently waiting in the send queue.
    pub fn queued(&self) -> usize {
        self.shared.outbox.len()
    }

    /// Queues a one-way frame, blocking while the send queue is full
    /// (the backpressure path).
    pub fn send(&self, frame: Frame) -> Result<(), NetError> {
        if self.shared.closed.load(Ordering::Relaxed) {
            return Err(NetError::Closed);
        }
        self.shared
            .outbox
            .push(Envelope::one_way(frame))
            .map_err(|_| NetError::Closed)
    }

    /// Queues a one-way frame without blocking; a full queue
    /// dead-letters the frame (counted in `net.dead_letters`).
    pub fn try_send(&self, frame: Frame) -> Result<(), NetError> {
        if self.shared.closed.load(Ordering::Relaxed) {
            return Err(NetError::Closed);
        }
        match self.shared.outbox.try_push(Envelope::one_way(frame)) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.shared.counters.dead_letters.inc();
                if self.shared.outbox.is_closed() {
                    Err(NetError::Closed)
                } else {
                    Err(NetError::QueueFull)
                }
            }
        }
    }

    /// Sends a request and blocks for its response (default deadline).
    pub fn request(&self, frame: Frame) -> Result<Frame, NetError> {
        self.request_timeout(frame, self.shared.cfg.request_timeout)
    }

    /// Sends a request and blocks for the response with `corr`elated
    /// id until `timeout`. Concurrent requests multiplex freely.
    pub fn request_timeout(&self, frame: Frame, timeout: Duration) -> Result<Frame, NetError> {
        if self.shared.closed.load(Ordering::Relaxed) {
            return Err(NetError::Closed);
        }
        let corr = self.shared.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel(1);
        self.shared
            .pending
            .lock()
            .expect("pending lock")
            .insert(corr, tx);
        let start = Instant::now();
        if let Err(e) = self
            .shared
            .outbox
            .push(Envelope::request(corr, frame))
            .map_err(|_| NetError::Closed)
        {
            self.shared
                .pending
                .lock()
                .expect("pending lock")
                .remove(&corr);
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(Frame::Error { message }) => Err(NetError::Rejected(message)),
            Ok(frame) => {
                self.shared.counters.rpcs.inc();
                self.shared
                    .counters
                    .rpc_latency_us
                    .record(start.elapsed().as_micros() as u64);
                Ok(frame)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.shared
                    .pending
                    .lock()
                    .expect("pending lock")
                    .remove(&corr);
                self.shared.counters.rpc_timeouts.inc();
                Err(NetError::Timeout)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Adds a poll report to the aggregation buffer, flushing a
    /// [`Frame::PollReport`] batch when it reaches `batch_max` entries
    /// or the oldest entry exceeds `batch_linger`.
    pub fn queue_report(&self, report: Report) -> Result<(), NetError> {
        let due = {
            let mut b = self.shared.batch.lock().expect("batch lock");
            b.reports.push(report);
            b.oldest.get_or_insert_with(Instant::now);
            b.reports.len() >= self.shared.cfg.batch_max
                || b.oldest
                    .map(|t| t.elapsed() >= self.shared.cfg.batch_linger)
                    .unwrap_or(false)
        };
        if due {
            self.flush_reports()?;
        }
        Ok(())
    }

    /// Flushes any buffered poll reports as one batched frame.
    pub fn flush_reports(&self) -> Result<(), NetError> {
        let reports = {
            let mut b = self.shared.batch.lock().expect("batch lock");
            b.oldest = None;
            std::mem::take(&mut b.reports)
        };
        if reports.is_empty() {
            return Ok(());
        }
        self.send(Frame::PollReport { reports })
    }

    /// Next one-way frame pushed by the peer, if any arrives in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.shared.inbound.pop_timeout(timeout)
    }

    /// Flushes the send queue (best effort) and stops the threads. The
    /// supervisor drains queued frames to the wire before closing the
    /// socket when a session is up.
    pub fn close(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        self.shared.outbox.close();
        self.shared.fail_pending();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        self.shared.inbound.close();
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

impl fmt::Debug for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connection")
            .field("addr", &self.shared.addr)
            .field("connected", &self.is_connected())
            .field("queued", &self.queued())
            .finish()
    }
}

fn backoff(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(10);
    base.checked_mul(factor).unwrap_or(cap).min(cap)
}

/// Sleeps in small slices so a close() interrupts the backoff quickly.
fn sleep_interruptible(total: Duration, closed: &AtomicBool) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !closed.load(Ordering::Relaxed) {
        thread::sleep(Duration::from_millis(2).min(total));
    }
}

fn supervise(shared: Arc<Shared>, mut interceptor: Box<dyn Interceptor>) {
    let mut consecutive_failures = 0u32;
    let mut ever_connected = false;
    loop {
        if shared.closed.load(Ordering::Relaxed) && shared.outbox.is_empty() {
            break;
        }
        match TcpStream::connect_timeout(&shared.addr, shared.cfg.connect_timeout) {
            Ok(stream) => {
                consecutive_failures = 0;
                if ever_connected {
                    shared.counters.reconnects.inc();
                } else {
                    shared.counters.connects.inc();
                }
                ever_connected = true;
                run_session(&shared, stream, interceptor.as_mut());
                shared.fail_pending();
                if shared.closed.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => {
                shared.counters.connect_failures.inc();
                consecutive_failures += 1;
                // A close() while the peer is unreachable gives up at
                // once instead of riding out the backoff schedule.
                if consecutive_failures > shared.cfg.max_reconnects
                    || shared.closed.load(Ordering::Relaxed)
                {
                    break;
                }
                sleep_interruptible(
                    backoff(
                        shared.cfg.backoff_base,
                        shared.cfg.backoff_max,
                        consecutive_failures - 1,
                    ),
                    &shared.closed,
                );
            }
        }
    }
    // Whatever is still queued can never be delivered.
    shared.closed.store(true, Ordering::Relaxed);
    shared.outbox.close();
    while shared.outbox.pop_timeout(Duration::ZERO).is_some() {
        shared.counters.dead_letters.inc();
    }
    shared.fail_pending();
    shared.connected.store(false, Ordering::Relaxed);
}

/// One TCP session: writer loop on this thread, reader on a companion.
/// Returns when the session dies or the connection closes.
fn run_session(shared: &Arc<Shared>, stream: TcpStream, interceptor: &mut dyn Interceptor) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let dead = Arc::new(AtomicBool::new(false));
    let reader = match stream.try_clone() {
        Ok(rs) => {
            let shared = Arc::clone(shared);
            let dead = Arc::clone(&dead);
            thread::Builder::new()
                .name("farm-net-read".into())
                .spawn(move || reader_loop(shared, rs, dead))
                .ok()
        }
        Err(_) => None,
    };
    if reader.is_some() {
        shared.connected.store(true, Ordering::Relaxed);
        writer_loop(shared, &stream, interceptor, &dead);
        shared.connected.store(false, Ordering::Relaxed);
    }
    dead.store(true, Ordering::Relaxed);
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(h) = reader {
        let _ = h.join();
    }
}

fn write_frame(
    shared: &Shared,
    stream: &TcpStream,
    env: &Envelope,
    interceptor: &mut dyn Interceptor,
) -> bool {
    match interceptor.on_send(env) {
        Verdict::Drop => {
            shared.counters.dropped_frames.inc();
            true
        }
        Verdict::Deliver { copies, delay } => {
            if !delay.is_zero() {
                thread::sleep(delay);
            }
            let mut buf = Vec::with_capacity(128);
            encode_envelope(env, &mut buf);
            let mut w = stream;
            for _ in 0..copies {
                if w.write_all(&buf).is_err() {
                    return false;
                }
                shared.counters.bytes.add(buf.len() as u64);
                shared.counters.frames_sent.inc();
            }
            true
        }
    }
}

fn writer_loop(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    interceptor: &mut dyn Interceptor,
    dead: &AtomicBool,
) {
    // Session preamble (not subject to interception).
    let hello = Envelope::one_way(Frame::Hello {
        node: shared.cfg.node.clone(),
        protocol: PROTOCOL_VERSION as u32,
    });
    if !write_frame(shared, stream, &hello, &mut Passthrough) {
        return;
    }
    loop {
        if dead.load(Ordering::Relaxed) {
            return;
        }
        match shared.outbox.pop_timeout(Duration::from_millis(2)) {
            Some(env) => {
                if !write_frame(shared, stream, &env, interceptor) {
                    return;
                }
            }
            None => {
                if shared.outbox.is_closed() && shared.outbox.is_empty() {
                    // Graceful goodbye so the peer can drop the
                    // connection without logging an error.
                    let bye = Envelope::one_way(Frame::Shutdown);
                    write_frame(shared, stream, &bye, &mut Passthrough);
                    return;
                }
            }
        }
    }
}

fn reader_loop(shared: Arc<Shared>, stream: TcpStream, dead: Arc<AtomicBool>) {
    let mut reader = std::io::BufReader::new(stream);
    loop {
        if dead.load(Ordering::Relaxed) {
            return;
        }
        match read_envelope(&mut reader, &dead) {
            // A frame with an undecodable body: count it and keep the
            // connection — the stream is still aligned.
            Ok(Some(ReadFrame::Bad { nbytes })) => {
                shared.counters.bytes.add(nbytes as u64);
                shared.counters.decode_errors.inc();
            }
            Ok(Some(ReadFrame::Frame(env, nbytes))) => {
                shared.counters.bytes.add(nbytes as u64);
                shared.counters.frames_received.inc();
                if env.response {
                    let waiter = shared
                        .pending
                        .lock()
                        .expect("pending lock")
                        .remove(&env.corr);
                    if let Some(tx) = waiter {
                        let _ = tx.try_send(env.frame);
                    }
                } else if matches!(env.frame, Frame::Shutdown) {
                    dead.store(true, Ordering::Relaxed);
                    return;
                } else {
                    // Peer-initiated one-way traffic; a full inbound
                    // queue sheds the oldest-unread semantics by
                    // dropping the newcomer.
                    let _ = shared.inbound.try_push(env);
                }
            }
            Ok(None) => continue,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    shared.counters.decode_errors.inc();
                }
                dead.store(true, Ordering::Relaxed);
                return;
            }
        }
    }
}
