//! Growable byte ring and the incremental frame decoder built on it.
//!
//! The reactor reads whatever the kernel has into a [`ByteRing`] and
//! peels complete frames off the front with [`FrameDecoder::next`];
//! partial frames simply stay buffered until more bytes arrive. The
//! decoder mirrors the blocking reader in `sock.rs` exactly: a fully
//! framed but undecodable body is surfaced as [`Decoded::Bad`] with the
//! recovered request correlation id (the session survives), while a
//! broken length prefix is a hard error because resync is impossible.

use std::io;

use crate::frame::{decode_body, decode_request_corr, Envelope};
use crate::wire::{WireError, MAX_FRAME_LEN};

/// An append-at-the-back, consume-at-the-front byte buffer. Consumed
/// bytes are reclaimed by shifting only when the dead prefix dominates
/// the allocation, so steady-state streaming does no per-frame moves.
#[derive(Debug, Default)]
pub struct ByteRing {
    buf: Vec<u8>,
    start: usize,
}

impl ByteRing {
    pub fn new() -> ByteRing {
        ByteRing::default()
    }

    pub fn with_capacity(n: usize) -> ByteRing {
        ByteRing {
            buf: Vec::with_capacity(n),
            start: 0,
        }
    }

    /// Live (unconsumed) bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len()
    }

    /// The live bytes, front first.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Discards `n` bytes off the front.
    pub fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.buf.len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

/// One frame peeled off the stream — same shape as the blocking
/// reader's result: decoded, or consumed-but-undecodable.
#[derive(Debug)]
pub enum Decoded {
    /// A well-formed envelope plus its wire size (prefix included).
    Frame(Envelope, usize),
    /// The frame's bytes were fully consumed but the body is invalid.
    /// `corr` is the recovered request correlation id when the header
    /// still parsed, so servers can answer with a structured error.
    Bad {
        corr: Option<u64>,
        error: WireError,
        nbytes: usize,
    },
}

/// Incremental decoder: feed arbitrary byte chunks with [`extend`]
/// (any split, down to one byte at a time), harvest complete frames
/// with [`next`]. Equivalent to the one-shot [`decode_body`] path on
/// every input — the property tests pin that equivalence.
///
/// [`extend`]: FrameDecoder::extend
/// [`next`]: FrameDecoder::next
#[derive(Debug, Default)]
pub struct FrameDecoder {
    ring: ByteRing,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.ring.extend(bytes);
    }

    /// Bytes buffered but not yet peeled into frames.
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }

    /// Peels the next complete frame off the front.
    ///
    /// * `Ok(Some(_))` — one frame's bytes were consumed (decoded or
    ///   [`Decoded::Bad`]); call again, more may be buffered.
    /// * `Ok(None)` — the buffer holds only part of a frame; feed more.
    /// * `Err(_)` — broken framing (overlong or oversized length
    ///   prefix); resync is impossible, hang up.
    // Not `Iterator`: the fallible `io::Result<Option<_>>` shape is the
    // point (a stream can end in "wait for more" or "hang up").
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> io::Result<Option<Decoded>> {
        let buf = self.ring.as_slice();
        // Length prefix, byte at a time (varint, ≤ 10 bytes).
        let mut len: u64 = 0;
        let mut header = 0usize;
        loop {
            if header >= 10 {
                return Err(io::ErrorKind::InvalidData.into());
            }
            let Some(&byte) = buf.get(header) else {
                return Ok(None);
            };
            len |= ((byte & 0x7f) as u64) << (header * 7);
            header += 1;
            if byte & 0x80 == 0 {
                break;
            }
        }
        if len > MAX_FRAME_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds cap"),
            ));
        }
        let total = header + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let body = &buf[header..total];
        let peeled = match decode_body(body) {
            Ok(env) => Decoded::Frame(env, total),
            Err(e) => Decoded::Bad {
                corr: decode_request_corr(body),
                error: e,
                nbytes: total,
            },
        };
        self.ring.consume(total);
        Ok(Some(peeled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_envelope, Frame};
    use crate::wire::put_varint;

    #[test]
    fn ring_reclaims_consumed_prefix() {
        let mut ring = ByteRing::new();
        ring.extend(&[1, 2, 3, 4, 5]);
        ring.consume(2);
        assert_eq!(ring.as_slice(), &[3, 4, 5]);
        ring.consume(3);
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
        ring.extend(&[9]);
        assert_eq!(ring.as_slice(), &[9]);
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let mut wire = Vec::new();
        for seq in 0..3u64 {
            encode_envelope(
                &Envelope::one_way(Frame::Heartbeat {
                    switch: 1,
                    seq,
                    at_ns: 0,
                }),
                &mut wire,
            );
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(d) = dec.next().expect("framing") {
                match d {
                    Decoded::Frame(env, _) => got.push(env),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(dec.buffered(), 0);
        for (seq, env) in got.iter().enumerate() {
            assert!(
                matches!(env.frame, Frame::Heartbeat { seq: s, .. } if s == seq as u64),
                "frame {seq} out of order"
            );
        }
    }

    #[test]
    fn bad_body_keeps_the_stream_aligned() {
        let mut bad_body = vec![crate::wire::PROTOCOL_VERSION, 200, 0];
        put_varint(&mut bad_body, 9);
        let mut wire = Vec::new();
        put_varint(&mut wire, bad_body.len() as u64);
        wire.extend_from_slice(&bad_body);
        encode_envelope(&Envelope::one_way(Frame::Ack), &mut wire);

        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        match dec.next().expect("framing").expect("first frame") {
            Decoded::Bad { corr, error, .. } => {
                assert_eq!(corr, Some(9));
                assert!(matches!(error, WireError::Tag { .. }));
            }
            other => panic!("expected Bad, got {other:?}"),
        }
        match dec.next().expect("framing").expect("second frame") {
            Decoded::Frame(env, _) => assert_eq!(env.frame, Frame::Ack),
            other => panic!("expected Ack, got {other:?}"),
        }
        assert!(dec.next().expect("framing").is_none());
    }

    #[test]
    fn broken_length_prefix_is_fatal() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0xff; 16]);
        assert!(dec.next().is_err(), "overlong varint prefix");

        let mut dec = FrameDecoder::new();
        let mut wire = Vec::new();
        put_varint(&mut wire, (MAX_FRAME_LEN as u64) + 1);
        dec.extend(&wire);
        assert!(dec.next().is_err(), "oversized frame");
    }

    #[test]
    fn partial_prefix_waits_for_more() {
        let mut wire = Vec::new();
        encode_envelope(
            &Envelope::one_way(Frame::Error {
                message: "x".repeat(200),
            }),
            &mut wire,
        );
        assert!(wire[0] & 0x80 != 0, "length prefix spans bytes");
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..1]);
        assert!(dec.next().expect("framing").is_none());
        dec.extend(&wire[1..]);
        assert!(matches!(
            dec.next().expect("framing"),
            Some(Decoded::Frame(..))
        ));
    }
}
