//! The readiness-polling server core: one reactor thread multiplexing
//! every session over a [`Poller`], plus a small sticky worker pool
//! that runs the (possibly blocking) [`FrameHandler`] off the event
//! loop.
//!
//! ```text
//!             ┌────────────────────────── reactor thread ─┐
//!  listener ──┤ accept → register                         │
//!  sockets  ──┤ readable → ByteRing → FrameDecoder ──┐    │
//!             │ writable → flush coalesced outbuf    │    │
//!             │ waker    → drain completed replies   │    │
//!             └─────────────────────────────────────┬┴────┘
//!                 jobs (conn_id % N, per-conn FIFO)  │
//!             ┌── worker pool ─────────────────────▼─────┐
//!             │ handler.handle(env) → encode reply →     │
//!             │ completions queue → wake reactor         │
//!             └──────────────────────────────────────────┘
//! ```
//!
//! Invariants the loop maintains:
//!
//! * **Per-connection FIFO.** Frames from one connection always land on
//!   the same worker (`conn_id % workers`), so handler invocation order
//!   matches arrival order — `TcpBridge` equivalence depends on it.
//! * **Write coalescing.** Replies accumulate in one contiguous
//!   per-connection output ring; a flush is a single `write` of
//!   everything pending, not a syscall per frame.
//! * **Backpressure.** A connection whose output ring exceeds
//!   [`OUTBUF_HIGH_WATER`] stops being read until the peer drains it;
//!   read interest resumes once the ring shrinks below the mark.
//! * **Error parity with the blocking server.** A fully framed but
//!   undecodable body answers requests with `Frame::Error` and keeps
//!   the session; a broken length prefix sends a one-way `Error` and
//!   hangs up; `Frame::Shutdown` ends the session immediately.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use farm_telemetry::{Gauge, Telemetry};

use crate::buf::{ByteRing, Decoded, FrameDecoder};
use crate::frame::{encode_envelope, Envelope, Frame};
use crate::poll::{Interest, PollEvent, Poller, Token, WakeHandle, Waker};
use crate::server::FrameHandler;
use crate::sock::NetCounters;

/// Stop reading a connection whose unflushed output exceeds this.
const OUTBUF_HIGH_WATER: usize = 4 << 20;
/// Reactor tick, ms — the stop flag is rechecked at least this often.
const POLL_TICK_MS: i32 = 50;

const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);
/// Connection ids start here; `Token(id)` ↔ connection `id`.
const CONN_BASE: u64 = 2;

/// One frame bound for the worker pool.
struct Job {
    conn: u64,
    env: Envelope,
}

struct Shared {
    stop: AtomicBool,
    counters: NetCounters,
    handler: Arc<dyn FrameHandler>,
    /// Encoded replies finished by workers, waiting for the reactor to
    /// fold them into per-connection output rings.
    completions: Mutex<Vec<(u64, Vec<u8>)>>,
}

/// Owning handle the public [`crate::server::NetServer`] wraps.
pub(crate) struct ReactorHandle {
    shared: Arc<Shared>,
    wake: WakeHandle,
    local_addr: SocketAddr,
    reactor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ReactorHandle {
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub(crate) fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        self.wake.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Binds the listener and spawns the reactor thread plus worker pool.
pub(crate) fn spawn(
    addr: SocketAddr,
    telemetry: &Telemetry,
    handler: Arc<dyn FrameHandler>,
) -> io::Result<ReactorHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let mut poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;
    let wake = waker.handle()?;

    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        counters: NetCounters::new(telemetry),
        handler,
        completions: Mutex::new(Vec::new()),
    });

    let n_workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let mut senders = Vec::with_capacity(n_workers);
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let (tx, rx) = mpsc::channel::<Job>();
        senders.push(tx);
        let shared = Arc::clone(&shared);
        let wake = wake.clone();
        workers.push(
            thread::Builder::new()
                .name(format!("farm-net-worker-{i}"))
                .spawn(move || worker_loop(rx, shared, wake))
                .expect("spawn net worker"),
        );
    }

    let reactor = {
        let shared = Arc::clone(&shared);
        let open_conns = telemetry.gauge("net.server_conns");
        thread::Builder::new()
            .name("farm-net-reactor".into())
            .spawn(move || {
                Reactor {
                    poller,
                    waker,
                    listener,
                    shared,
                    senders,
                    conns: HashMap::new(),
                    next_id: CONN_BASE,
                    open_conns,
                }
                .run()
            })
            .expect("spawn net reactor")
    };

    Ok(ReactorHandle {
        shared,
        wake,
        local_addr,
        reactor: Some(reactor),
        workers,
    })
}

fn worker_loop(rx: mpsc::Receiver<Job>, shared: Arc<Shared>, wake: WakeHandle) {
    // The channel disconnects when the reactor drops its senders on
    // shutdown; remaining queued jobs still run so no accepted frame is
    // silently dropped.
    while let Ok(job) = rx.recv() {
        let answer = shared.handler.handle(&job.env);
        if job.env.corr != 0 && !job.env.response {
            let reply = Envelope::response(job.env.corr, answer.unwrap_or(Frame::Ack));
            let mut buf = Vec::with_capacity(64);
            encode_envelope(&reply, &mut buf);
            shared
                .completions
                .lock()
                .expect("completions lock")
                .push((job.conn, buf));
            wake.wake();
        }
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: ByteRing,
    interest: Interest,
    /// Flush whatever is pending, then close; reads are over.
    closing: bool,
}

struct Reactor {
    poller: Poller,
    waker: Waker,
    listener: TcpListener,
    shared: Arc<Shared>,
    senders: Vec<mpsc::Sender<Job>>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    open_conns: Arc<Gauge>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(256);
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            events.clear();
            if self.poller.wait(POLL_TICK_MS, &mut events).is_err() {
                break;
            }
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.waker.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    Token(id) => self.conn_ready(id, ev, &mut scratch),
                }
            }
            self.drain_completions();
        }
        // Teardown: sever every session so blocked client RPCs fail
        // fast, then drop the job senders so workers drain and exit.
        for (_, conn) in self.conns.drain() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.open_conns.set(0.0);
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        self.senders.clear();
    }

    /// Per-round accept cap. The listener is level-triggered, so a
    /// backlog past the cap simply re-surfaces on the next poll round;
    /// bounding the batch keeps a connection storm from starving
    /// established connections' I/O within the round.
    const ACCEPT_BATCH: usize = 64;

    fn accept_ready(&mut self) {
        let mut accepted = 0usize;
        while accepted < Self::ACCEPT_BATCH {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted += 1;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(id), Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            out: ByteRing::new(),
                            interest: Interest::READ,
                            closing: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. FD exhaustion): give
                // the loop a tick rather than spinning.
                Err(_) => break,
            }
        }
        // One gauge settle per batch instead of one per accept.
        if accepted > 0 {
            self.open_conns.set(self.conns.len() as f64);
        }
    }

    fn conn_ready(&mut self, id: u64, ev: PollEvent, scratch: &mut [u8]) {
        if !self.conns.contains_key(&id) {
            return;
        }
        if ev.readiness.readable && !self.conn_is_closing(id) && !self.read_conn(id, scratch) {
            self.close_conn(id);
            return;
        }
        if (ev.readiness.writable || self.conn_wants_flush(id)) && !self.flush_conn(id) {
            self.close_conn(id);
            return;
        }
        if ev.readiness.error {
            self.close_conn(id);
        }
    }

    fn conn_is_closing(&self, id: u64) -> bool {
        self.conns.get(&id).map(|c| c.closing).unwrap_or(true)
    }

    fn conn_wants_flush(&self, id: u64) -> bool {
        self.conns
            .get(&id)
            .map(|c| !c.out.is_empty() || c.closing)
            .unwrap_or(false)
    }

    /// Drains the socket into the decoder and dispatches every complete
    /// frame. Returns false when the session is over.
    fn read_conn(&mut self, id: u64, scratch: &mut [u8]) -> bool {
        let mut peer_gone = false;
        {
            let conn = self.conns.get_mut(&id).expect("conn exists");
            loop {
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        peer_gone = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.extend(&scratch[..n]);
                        // Paced reads: oversized inflows yield to the
                        // rest of the loop (level-triggering re-arms).
                        if conn.decoder.buffered() > OUTBUF_HIGH_WATER {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        peer_gone = true;
                        break;
                    }
                }
            }
        }
        loop {
            let conn = self.conns.get_mut(&id).expect("conn exists");
            match conn.decoder.next() {
                Ok(Some(Decoded::Frame(env, nbytes))) => {
                    self.shared.counters.bytes.add(nbytes as u64);
                    self.shared.counters.frames_received.inc();
                    if matches!(env.frame, Frame::Shutdown) {
                        return false;
                    }
                    let worker = (id % self.senders.len() as u64) as usize;
                    let _ = self.senders[worker].send(Job { conn: id, env });
                }
                Ok(Some(Decoded::Bad {
                    corr,
                    error,
                    nbytes,
                })) => {
                    self.shared.counters.bytes.add(nbytes as u64);
                    self.shared.counters.decode_errors.inc();
                    // The session survives an undecodable body; a
                    // recovered request corr gets a structured Error so
                    // the client sees `Rejected` instead of a timeout.
                    if let Some(corr) = corr {
                        let reply = Envelope::response(
                            corr,
                            Frame::Error {
                                message: format!("undecodable frame: {error}"),
                            },
                        );
                        self.queue_reply(id, &reply);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Broken framing: resync is impossible, so say why
                    // and hang up once the goodbye flushes.
                    self.shared.counters.decode_errors.inc();
                    let bye = Envelope::one_way(Frame::Error {
                        message: format!("unrecoverable frame: {e}"),
                    });
                    self.queue_reply(id, &bye);
                    let conn = self.conns.get_mut(&id).expect("conn exists");
                    conn.closing = true;
                    break;
                }
            }
        }
        !peer_gone
    }

    /// Encodes `env` into the connection's output ring, accounting the
    /// send. The bytes leave on the next flush.
    fn queue_reply(&mut self, id: u64, env: &Envelope) {
        let mut buf = Vec::with_capacity(64);
        encode_envelope(env, &mut buf);
        let conn = self.conns.get_mut(&id).expect("conn exists");
        conn.out.extend(&buf);
        self.shared.counters.bytes.add(buf.len() as u64);
        self.shared.counters.frames_sent.inc();
    }

    /// Writes the coalesced output ring: one syscall moves everything
    /// pending (partial writes keep write interest armed). Returns
    /// false when the session is over.
    fn flush_conn(&mut self, id: u64) -> bool {
        let conn = match self.conns.get_mut(&id) {
            Some(c) => c,
            None => return true,
        };
        while !conn.out.is_empty() {
            match conn.stream.write(conn.out.as_slice()) {
                Ok(0) => return false,
                Ok(n) => conn.out.consume(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.closing && conn.out.is_empty() {
            return false;
        }
        let want = Interest {
            readable: !conn.closing && conn.out.len() < OUTBUF_HIGH_WATER,
            writable: !conn.out.is_empty(),
        };
        if want != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), Token(id), want)
                .is_err()
            {
                return false;
            }
            conn.interest = want;
        }
        true
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.open_conns.set(self.conns.len() as f64);
        }
    }

    /// Folds worker-finished replies into their connections' output
    /// rings and flushes. Replies for connections that died in the
    /// meantime are dropped, matching the blocking server (a reply to a
    /// vanished peer went nowhere there too).
    fn drain_completions(&mut self) {
        let done: Vec<(u64, Vec<u8>)> = {
            let mut lock = self.shared.completions.lock().expect("completions lock");
            std::mem::take(&mut *lock)
        };
        let mut touched: Vec<u64> = Vec::new();
        for (id, buf) in done {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.out.extend(&buf);
                self.shared.counters.bytes.add(buf.len() as u64);
                self.shared.counters.frames_sent.inc();
                if !touched.contains(&id) {
                    touched.push(id);
                }
            }
        }
        for id in touched {
            if !self.flush_conn(id) {
                self.close_conn(id);
            }
        }
    }
}
