//! Pluggable send-path interceptors.
//!
//! An [`Interceptor`] sits between a connection's send queue and its
//! socket: every outgoing frame is offered to it and the returned
//! [`Verdict`] decides whether the frame is written once, several
//! times (duplication), after a delay, or not at all. This is how
//! `farm-faults`' [`LossModel`] applies to *real* wire traffic instead
//! of only to the simulated delivery path.

use std::time::Duration;

use farm_faults::{Delivery, LossModel, LossSpec};

use crate::frame::Envelope;

/// Fate of one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Write the frame `copies` times after waiting `delay`.
    Deliver { copies: u8, delay: Duration },
    /// Silently discard the frame.
    Drop,
}

impl Verdict {
    /// The common case: one copy, no delay.
    pub const PASS: Verdict = Verdict::Deliver {
        copies: 1,
        delay: Duration::ZERO,
    };
}

/// Decides the fate of outgoing frames. Implementations run on the
/// connection's writer thread, so they may keep mutable state without
/// locking.
pub trait Interceptor: Send {
    fn on_send(&mut self, env: &Envelope) -> Verdict;
}

/// Lets everything through untouched.
#[derive(Debug, Default, Clone, Copy)]
pub struct Passthrough;

impl Interceptor for Passthrough {
    fn on_send(&mut self, _env: &Envelope) -> Verdict {
        Verdict::PASS
    }
}

/// Applies a deterministic [`LossModel`] to real frames: drops,
/// duplicates and delays exactly as the simulated control channel
/// would, from the same seeded decision stream.
#[derive(Debug)]
pub struct LossInterceptor {
    model: LossModel,
    /// Responses are never impaired by default so request/response
    /// benchmarking measures forward-path loss only.
    pub impair_responses: bool,
}

impl LossInterceptor {
    pub fn new(model: LossModel) -> LossInterceptor {
        LossInterceptor {
            model,
            impair_responses: false,
        }
    }

    /// Convenience: a fresh model from spec + seed.
    pub fn from_spec(spec: LossSpec, seed: u64) -> LossInterceptor {
        LossInterceptor::new(LossModel::new(spec, seed))
    }
}

impl Interceptor for LossInterceptor {
    fn on_send(&mut self, env: &Envelope) -> Verdict {
        if env.response && !self.impair_responses {
            return Verdict::PASS;
        }
        match self.model.roll() {
            Delivery::Dropped => Verdict::Drop,
            Delivery::Delivered { copies } => Verdict::Deliver {
                copies,
                delay: Duration::from_nanos(self.model.delay().as_nanos()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn hb() -> Envelope {
        Envelope::one_way(Frame::Heartbeat {
            switch: 0,
            seq: 0,
            at_ns: 0,
        })
    }

    #[test]
    fn passthrough_never_impairs() {
        let mut p = Passthrough;
        assert_eq!(p.on_send(&hb()), Verdict::PASS);
    }

    #[test]
    fn full_loss_drops_every_frame() {
        let mut i = LossInterceptor::from_spec(LossSpec::dropping(1.0), 1);
        for _ in 0..32 {
            assert_eq!(i.on_send(&hb()), Verdict::Drop);
        }
    }

    #[test]
    fn responses_pass_a_lossy_link_by_default() {
        let mut i = LossInterceptor::from_spec(LossSpec::dropping(1.0), 1);
        let resp = Envelope::response(5, Frame::Ack);
        assert_eq!(i.on_send(&resp), Verdict::PASS);
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let spec = LossSpec {
            drop: 0.4,
            duplicate: 0.3,
            delay: farm_netsim::time::Dur::from_micros(10),
        };
        let mut a = LossInterceptor::from_spec(spec, 99);
        let mut b = LossInterceptor::from_spec(spec, 99);
        for _ in 0..128 {
            assert_eq!(a.on_send(&hb()), b.on_send(&hb()));
        }
    }
}
