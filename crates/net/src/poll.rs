//! A dependency-light readiness poller: raw `epoll_*` syscalls on
//! Linux, POSIX `poll(2)` on other unix flavours (the kqueue-capable
//! platforms fall back to it too), and an honest `Unsupported` stub
//! elsewhere. This is the reactor's only window onto the kernel — no
//! mio, no tokio, just the handful of FFI prototypes the event loop
//! needs, declared against the libc every Rust binary already links.
//!
//! The API is deliberately tiny: register a file descriptor with a
//! [`Token`] and an [`Interest`], adjust it with `modify`, harvest
//! ready `(Token, Readiness)` pairs with `wait`. Level-triggered
//! semantics everywhere, so a handler that cannot finish its work this
//! tick simply gets woken again on the next one.

use std::io;
#[cfg(unix)]
use std::os::unix::io::RawFd;

/// Caller-chosen identifier attached to a registered descriptor and
/// handed back by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness edges a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// What a descriptor is ready for. `error` folds in hangup — the owner
/// should try the pending I/O once (draining whatever the kernel still
/// holds) and then tear the connection down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

/// One ready descriptor from a [`Poller::wait`] harvest.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    pub token: Token,
    pub readiness: Readiness,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll. Prototypes only — the symbols live in the libc the
    //! binary links anyway.

    use super::{Interest, PollEvent, Readiness, Token};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors the kernel's `struct epoll_event`, which is packed on
    /// x86-64 (the kernel ABI predates natural alignment there).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Poller {
        epfd: RawFd,
        events: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                events: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token.0,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token.0,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<PollEvent>) -> io::Result<()> {
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(
                        self.epfd,
                        self.events.as_mut_ptr(),
                        self.events.len() as c_int,
                        timeout_ms,
                    )
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.events[..n] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: Token(ev.data),
                    readiness: Readiness {
                        readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                        writable: bits & EPOLLOUT != 0,
                        error: bits & (EPOLLERR | EPOLLHUP) != 0,
                    },
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! POSIX `poll(2)` fallback for the non-Linux unixes (macOS and the
    //! BSDs would prefer kqueue; `poll` is correct there too, just less
    //! scalable, and keeps this module free of per-OS syscall tables).

    use super::{Interest, PollEvent, Readiness, Token};
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::os::unix::io::RawFd;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    }

    fn mask_of(interest: Interest) -> c_short {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<Token>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn index_of(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.index_of(fd).is_some() {
                return Err(io::ErrorKind::AlreadyExists.into());
            }
            self.fds.push(PollFd {
                fd,
                events: mask_of(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let i = self.index_of(fd).ok_or(io::ErrorKind::NotFound)?;
            self.fds[i].events = mask_of(interest);
            self.tokens[i] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self.index_of(fd).ok_or(io::ErrorKind::NotFound)?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<PollEvent>) -> io::Result<()> {
            if self.fds.is_empty() {
                if timeout_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                }
                return Ok(());
            }
            let n = loop {
                let ret = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
                if ret >= 0 {
                    break ret;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (p, tok) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token: *tok,
                    readiness: Readiness {
                        readable: p.revents & POLLIN != 0,
                        writable: p.revents & POLLOUT != 0,
                        error: p.revents & (POLLERR | POLLHUP) != 0,
                    },
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Stub for non-unix targets: construction fails with `Unsupported`
    //! and [`crate::server::NetServer::bind`] surfaces that error. The
    //! blocking client side of the crate works everywhere.

    use super::{Interest, PollEvent, Token};
    use std::io;

    type RawFd = i32;

    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "farm-net reactor needs a unix-like poller",
            ))
        }

        pub fn register(&mut self, _: RawFd, _: Token, _: Interest) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub fn modify(&mut self, _: RawFd, _: Token, _: Interest) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub fn deregister(&mut self, _: RawFd) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub fn wait(&mut self, _: i32, _: &mut Vec<PollEvent>) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }
    }
}

pub use sys::Poller;

/// Cross-thread wakeup for a [`Poller`]: one end registered with the
/// reactor, the other poked by whoever wants the loop to run now
/// (worker threads with finished replies, `shutdown`).
#[cfg(unix)]
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The descriptor the reactor registers for readability.
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Pokes the poller. A full pipe means a wake is already pending,
    /// which is all we need — the write is fire-and-forget.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Swallows pending wake bytes so level-triggered polling settles.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// A clone of the poke side, for handing to worker threads.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            tx: self.tx.try_clone()?,
        })
    }
}

/// The poke side of a [`Waker`], cheap to clone across threads.
#[cfg(unix)]
pub struct WakeHandle {
    tx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl WakeHandle {
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

#[cfg(unix)]
impl Clone for WakeHandle {
    fn clone(&self) -> WakeHandle {
        WakeHandle {
            tx: self.tx.try_clone().expect("clone waker"),
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_wakes_a_sleeping_poller() {
        let mut poller = Poller::new().expect("poller");
        let waker = Waker::new().expect("waker");
        poller
            .register(waker.fd(), Token(7), Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        poller.wait(10, &mut events).expect("wait");
        assert!(events.is_empty());
        waker.wake();
        poller.wait(1000, &mut events).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readiness.readable);
        waker.drain();
        events.clear();
        poller.wait(10, &mut events).expect("wait");
        assert!(events.is_empty(), "drained waker is quiet");
    }

    #[test]
    fn readiness_tracks_socket_data_and_interest_changes() {
        let mut poller = Poller::new().expect("poller");
        let (mut a, b) = std::os::unix::net::UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        poller
            .register(b.as_raw_fd(), Token(1), Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        poller.wait(10, &mut events).expect("wait");
        assert!(events.is_empty(), "no data yet");
        a.write_all(b"hi").expect("write");
        poller.wait(1000, &mut events).expect("wait");
        assert!(events
            .iter()
            .any(|e| e.token == Token(1) && e.readiness.readable));
        // Read it out, switch to write interest: sockets are writable.
        let mut buf = [0u8; 8];
        let _ = (&b).read(&mut buf);
        poller
            .modify(b.as_raw_fd(), Token(1), Interest::WRITE)
            .expect("modify");
        events.clear();
        poller.wait(1000, &mut events).expect("wait");
        assert!(events
            .iter()
            .any(|e| e.token == Token(1) && e.readiness.writable));
        poller.deregister(b.as_raw_fd()).expect("deregister");
        events.clear();
        poller.wait(10, &mut events).expect("wait");
        assert!(events.is_empty());
    }
}
