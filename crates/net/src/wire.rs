//! Low-level wire primitives: LEB128 varints, zigzag signed integers,
//! length-prefixed strings, and a bounds-checked [`Reader`].
//!
//! Every decoder in this crate is **total**: arbitrary (truncated,
//! corrupt, adversarial) input produces a [`WireError`], never a panic
//! and never an unbounded allocation. Length fields are validated
//! against the bytes actually remaining before anything is reserved.

use std::fmt;

/// Protocol version stamped into every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on one frame's body, bytes. Larger length prefixes are
/// rejected before any allocation happens.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Maximum nesting depth for recursive payloads (values, filters).
pub const MAX_DEPTH: usize = 48;

/// Decoding failure. `Truncated` doubles as "need more bytes" for
/// streaming callers; every other variant is a hard protocol error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value did.
    Truncated,
    /// A length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u64),
    /// The frame announces a protocol version we do not speak.
    Version(u8),
    /// An enum discriminant is out of range.
    Tag { what: &'static str, tag: u8 },
    /// A string field holds invalid UTF-8.
    Utf8,
    /// A varint ran past 10 bytes.
    VarintOverflow,
    /// Recursive payload nests deeper than [`MAX_DEPTH`].
    Depth,
    /// A scalar field is outside its legal range (e.g. prefix len > 32).
    Range(&'static str),
    /// The frame body decoded cleanly but bytes were left over.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire: input truncated"),
            WireError::TooLarge(n) => write!(f, "wire: frame of {n} bytes exceeds cap"),
            WireError::Version(v) => write!(f, "wire: unsupported protocol version {v}"),
            WireError::Tag { what, tag } => write!(f, "wire: bad {what} tag {tag}"),
            WireError::Utf8 => write!(f, "wire: invalid utf-8 in string"),
            WireError::VarintOverflow => write!(f, "wire: varint overflow"),
            WireError::Depth => write!(f, "wire: payload nests too deep"),
            WireError::Range(what) => write!(f, "wire: {what} out of range"),
            WireError::Trailing(n) => write!(f, "wire: {n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time so checksumming stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the per-record integrity check framing
/// `FARMCKP2` checkpoint entries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends an unsigned LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends an IEEE-754 double as 8 little-endian bytes.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a bool as one byte.
pub fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

/// Bounds-checked cursor over a received frame body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// The next byte without consuming it — used to discriminate tagged
    /// encodings from legacy untagged ones (e.g. versioned snapshots).
    pub fn peek_u8(&self) -> Result<u8, WireError> {
        self.buf.get(self.pos).copied().ok_or(WireError::Truncated)
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::Tag {
                what: "bool",
                tag: t,
            }),
        }
    }

    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            // The 10th byte may only carry the final bit of a u64.
            if shift == 9 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= ((byte & 0x7f) as u64) << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    pub fn ivarint(&mut self) -> Result<i64, WireError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// A length prefix that must be satisfiable by the remaining bytes,
    /// assuming each element costs at least `min_elem_bytes`.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.varint()?;
        let need = n.saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Utf8)
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Fails unless the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_across_widths() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn ivarint_round_trips_signed_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(Reader::new(&buf).ivarint().unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xff; 11];
        assert_eq!(Reader::new(&buf).varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            let got = Reader::new(&buf[..cut]).str();
            assert_eq!(got, Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn length_prefix_cannot_force_allocation() {
        // Claims a 2^40-element list with 3 bytes of input.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        let got = Reader::new(&buf).len_prefix(1);
        assert_eq!(got, Err(WireError::Truncated));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values from the IEEE 802.3 polynomial (zlib's crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"FARMCKP2 record body".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn bad_utf8_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xc3, 0x28]);
        assert_eq!(Reader::new(&buf).str(), Err(WireError::Utf8));
    }
}
