//! Typed frames and the versioned binary codec.
//!
//! Every message on a FARM control connection is one [`Envelope`]:
//!
//! ```text
//! ┌───────────┬─────────┬──────┬───────┬────────────┬─────────┐
//! │ len:varint│ ver:u8  │kind:u8│flags:u8│ corr:varint│ payload │
//! └───────────┴─────────┴──────┴───────┴────────────┴─────────┘
//! ```
//!
//! `len` counts the bytes after the length field. `corr` is the
//! multiplexing correlation id: `0` marks a one-way frame, any other
//! value pairs a request with the response that echoes it (`flags`
//! bit 0 set). Integers travel as LEB128 varints (signed values
//! zigzag-folded first), floats as IEEE-754 bits, strings UTF-8 with a
//! varint length prefix. Decoding is byte-exact: a frame re-encodes to
//! the same bytes, and `decode(encode(f)) == f` for every frame.

use farm_almanac::value::{ActionValue, PacketRecord, RuleValue, StatEntry, StatSubject, Value};
use farm_netsim::switch::Resources;
use farm_netsim::time::{Dur, Time};
use farm_netsim::types::{
    FilterAtom, FilterFormula, FlowKey, Ipv4, PortSel, Prefix, Proto, SwitchId,
};
use farm_soil::{Endpoint, OutboundMessage, SeedId, SeedSnapshot};

use crate::snapshot::{decode_vsnapshot, VSeedSnapshot};
use crate::wire::{
    put_bool, put_f64, put_ivarint, put_str, put_varint, Reader, WireError, MAX_DEPTH,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// One seed→harvester report riding a [`Frame::PollReport`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub task: String,
    pub from_switch: u32,
    pub from_seed: u64,
    pub from_machine: String,
    /// Emission instant, virtual nanoseconds.
    pub at_ns: u64,
    /// Switch-local latency until the report hit the wire.
    pub latency_ns: u64,
    /// Estimated serialized payload size the soil accounted.
    pub bytes: u64,
    pub value: Value,
}

impl Report {
    /// Captures a harvester-bound [`OutboundMessage`].
    pub fn from_outbound(msg: &OutboundMessage) -> Report {
        Report {
            task: msg.task.clone(),
            from_switch: msg.from_switch.0,
            from_seed: msg.from_seed.0,
            from_machine: msg.from_machine.clone(),
            at_ns: msg.at.as_nanos(),
            latency_ns: msg.latency.as_nanos(),
            bytes: msg.bytes,
            value: msg.value.clone(),
        }
    }

    /// Reconstructs the harvester-bound message on the receiving side.
    pub fn into_outbound(self) -> OutboundMessage {
        OutboundMessage {
            from_switch: SwitchId(self.from_switch),
            from_seed: SeedId(self.from_seed),
            from_machine: self.from_machine,
            task: self.task,
            to: Endpoint::Harvester,
            value: self.value,
            at: Time::ZERO + Dur::from_nanos(self.at_ns),
            latency: Dur::from_nanos(self.latency_ns),
            bytes: self.bytes,
        }
    }
}

/// One management operation riding a [`Frame::Control`] request.
///
/// The control surface is versioned with the rest of the protocol:
/// adding an op is a new tag under the same [`PROTOCOL_VERSION`], and
/// an endpoint that does not know a tag rejects the frame with a typed
/// [`WireError::Tag`] — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlOp {
    /// Compile and deploy an Almanac program server-side.
    SubmitProgram { name: String, source: String },
    /// Enumerate deployed seeds, sorted by key. `from_index`/`limit`
    /// page through the listing (`limit == 0` means "everything from
    /// `from_index`"); clients speaking the pre-cursor revision encode
    /// no cursor and get the whole listing, unchanged.
    ListSeeds { from_index: u64, limit: u64 },
    /// Full detail (state variables included) of one seed by its
    /// `task/mN/sN` key.
    DescribeSeed { key: String },
    /// Operational summary as JSON. The cursor pages the counters map
    /// (same defaulting rules as [`ControlOp::ListSeeds`]).
    Stats { from_index: u64, limit: u64 },
    /// Every telemetry instrument as JSON.
    MetricsDump,
    /// Cordon a switch and evacuate its seeds via replanning.
    Drain { switch: u32 },
    /// Lift a cordon; the switch re-enters placement.
    Uncordon { switch: u32 },
    /// Force a placement round now.
    Replan,
    /// Checkpoint every live seed's state.
    Checkpoint,
    /// Restore every seed from its last checkpoint.
    Restore,
    /// Stop the daemon after draining connections.
    Shutdown,
    /// A farmd pod joins (or re-joins) a fedd coordinator, announcing
    /// its topology manifest: wire address, switch count, and headroom
    /// quota. Registration is idempotent per `name`; the reply carries
    /// the pod's global switch-id base.
    RegisterPod {
        name: String,
        addr: String,
        switches: u64,
        quota: f64,
    },
    /// Periodic pod liveness beacon. A `Rejected` reply means the
    /// coordinator does not know this pod (e.g. it restarted) and the
    /// pod must re-register.
    PodHeartbeat { name: String, seq: u64 },
    /// Enumerate registered pods with liveness state (fedd only).
    ListPods,
    /// Migrate every seed of `task` from its current pod to `to_pod`
    /// (fedd only): drain-by-checkpoint on the source, snapshot export,
    /// submit-with-snapshot on the target, then remove from the source.
    MigrateTask { task: String, to_pod: String },
    /// Checkpoint `task` on this pod and return its program source plus
    /// every seed snapshot (fedd → farmd, the migration export leg).
    ExportTask { task: String },
    /// Deploy a program and immediately restore the carried snapshots
    /// into its seeds (fedd → farmd, the migration import leg).
    SubmitWithSnapshot {
        name: String,
        source: String,
        seeds: Vec<(String, SeedSnapshot)>,
    },
    /// Remove a deployed task and its seeds (fedd → farmd; also the
    /// rollback path when a split deployment partially fails).
    RemoveTask { task: String },
}

impl ControlOp {
    /// Stable kebab-case name, used for `ctl.op.<name>` audit counters.
    pub fn kind(&self) -> &'static str {
        match self {
            ControlOp::SubmitProgram { .. } => "submit",
            ControlOp::ListSeeds { .. } => "list-seeds",
            ControlOp::DescribeSeed { .. } => "describe-seed",
            ControlOp::Stats { .. } => "stats",
            ControlOp::MetricsDump => "metrics-dump",
            ControlOp::Drain { .. } => "drain",
            ControlOp::Uncordon { .. } => "uncordon",
            ControlOp::Replan => "replan",
            ControlOp::Checkpoint => "checkpoint",
            ControlOp::Restore => "restore",
            ControlOp::Shutdown => "shutdown",
            ControlOp::RegisterPod { .. } => "register-pod",
            ControlOp::PodHeartbeat { .. } => "pod-heartbeat",
            ControlOp::ListPods => "list-pods",
            ControlOp::MigrateTask { .. } => "migrate-task",
            ControlOp::ExportTask { .. } => "export-task",
            ControlOp::SubmitWithSnapshot { .. } => "submit-with-snapshot",
            ControlOp::RemoveTask { .. } => "remove-task",
        }
    }

    /// The whole seed listing, unpaginated — encodes without a cursor,
    /// byte-identical to the pre-cursor revision of this op.
    pub fn list_all() -> ControlOp {
        ControlOp::ListSeeds {
            from_index: 0,
            limit: 0,
        }
    }

    /// The full stats summary, unpaginated (same compatibility note as
    /// [`ControlOp::list_all`]).
    pub fn stats_all() -> ControlOp {
        ControlOp::Stats {
            from_index: 0,
            limit: 0,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            ControlOp::SubmitProgram { .. } => 0,
            ControlOp::ListSeeds { .. } => 1,
            ControlOp::DescribeSeed { .. } => 2,
            ControlOp::Stats { .. } => 3,
            ControlOp::MetricsDump => 4,
            ControlOp::Drain { .. } => 5,
            ControlOp::Uncordon { .. } => 6,
            ControlOp::Replan => 7,
            ControlOp::Checkpoint => 8,
            ControlOp::Restore => 9,
            ControlOp::Shutdown => 10,
            ControlOp::RegisterPod { .. } => 11,
            ControlOp::PodHeartbeat { .. } => 12,
            ControlOp::ListPods => 13,
            ControlOp::MigrateTask { .. } => 14,
            ControlOp::ExportTask { .. } => 15,
            ControlOp::SubmitWithSnapshot { .. } => 16,
            ControlOp::RemoveTask { .. } => 17,
        }
    }
}

/// One registered pod as reported by [`ControlOp::ListPods`].
#[derive(Debug, Clone, PartialEq)]
pub struct PodInfo {
    /// Registration name (unique per federation).
    pub name: String,
    /// Wire address of the pod's farmd control endpoint.
    pub addr: String,
    /// Switches the pod manages (its local id space is `0..switches`).
    pub switches: u64,
    /// Global switch-id base assigned by the coordinator; global id
    /// `base + i` is the pod's local switch `i`.
    pub base: u64,
    /// Admission headroom quota the pod advertised.
    pub quota: f64,
    /// True while heartbeats arrive within the liveness window.
    pub live: bool,
    /// Heartbeats observed since registration.
    pub beats: u64,
    /// Milliseconds since the last heartbeat (or registration).
    pub age_ms: u64,
}

/// One deployed seed as reported over the control surface.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedDescriptor {
    /// Stable key, `task/mN/sN`.
    pub key: String,
    pub task: String,
    pub machine: String,
    /// Hosting switch.
    pub switch: u32,
    /// Current state-machine state.
    pub state: String,
    /// Allocated resources (vCPU, RAM MB, TCAM, PCIe polls/s).
    pub alloc: [f64; 4],
}

/// One compiler diagnostic returned by a rejected SubmitProgram.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Machine the error belongs to (empty for program-level errors).
    pub machine: String,
    /// Compilation phase (`lex`, `parse`, `typecheck`, `analysis`).
    pub phase: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Answer to a [`ControlOp`], riding a [`Frame::ControlReply`].
#[derive(Debug, Clone, PartialEq)]
pub enum ControlReply {
    /// Generic success for ops without a payload.
    Ok,
    /// SubmitProgram succeeded: the task was compiled and placed.
    Submitted {
        task: String,
        seeds: u64,
        /// Placement actions the deploying replan executed.
        actions: u64,
    },
    /// ListSeeds answer: one page of the key-sorted listing. For a
    /// paginated request, `next_index` is the cursor of the next page
    /// (`0` = listing exhausted) and `total` the full listing size;
    /// unpaginated replies carry `0`/`0` and encode byte-identically to
    /// the pre-cursor revision.
    Seeds {
        seeds: Vec<SeedDescriptor>,
        next_index: u64,
        total: u64,
    },
    /// DescribeSeed answer: descriptor plus rendered state variables.
    Seed {
        desc: SeedDescriptor,
        vars: Vec<(String, String)>,
    },
    /// A JSON document (Stats, MetricsDump).
    Json { body: String },
    /// Drain finished; `evacuated` seeds migrated off the switch.
    Drained { switch: u32, evacuated: u64 },
    /// Replan finished.
    Replanned { actions: u64, dropped_tasks: u64 },
    /// Checkpoint finished over `seeds` live seeds. `persist_error` is
    /// set when the in-memory checkpoint succeeded but writing the
    /// checkpoint file failed — partial success, not a rejection.
    Checkpointed {
        seeds: u64,
        persist_error: Option<String>,
    },
    /// Restore finished over `seeds` checkpointed seeds; `skipped`
    /// counts file entries dropped because their seed key no longer
    /// parses.
    Restored { seeds: u64, skipped: u64 },
    /// The op was refused (admission control, unknown key, bad input).
    Rejected { reason: String },
    /// SubmitProgram failed to compile; nothing was deployed.
    CompileFailed { diagnostics: Vec<Diagnostic> },
    /// RegisterPod succeeded; `base` is the pod's global switch base.
    PodRegistered { base: u64 },
    /// ListPods answer: every registered pod, sorted by name.
    Pods { pods: Vec<PodInfo> },
    /// MigrateTask finished: `seeds` snapshots moved between pods.
    Migrated {
        task: String,
        from_pod: String,
        to_pod: String,
        seeds: u64,
    },
    /// ExportTask answer: program source plus one snapshot per seed
    /// (keys are the pod-local `task/mN/sN` form).
    TaskExport {
        source: String,
        seeds: Vec<(String, SeedSnapshot)>,
    },
}

impl ControlReply {
    /// Stable kebab-case name, mirroring [`ControlOp::kind`] — used by
    /// the federation coordinator to report an unexpected reply shape.
    pub fn kind(&self) -> &'static str {
        match self {
            ControlReply::Ok => "ok",
            ControlReply::Submitted { .. } => "submitted",
            ControlReply::Seeds { .. } => "seeds",
            ControlReply::Seed { .. } => "seed",
            ControlReply::Json { .. } => "json",
            ControlReply::Drained { .. } => "drained",
            ControlReply::Replanned { .. } => "replanned",
            ControlReply::Checkpointed { .. } => "checkpointed",
            ControlReply::Restored { .. } => "restored",
            ControlReply::Rejected { .. } => "rejected",
            ControlReply::CompileFailed { .. } => "compile-failed",
            ControlReply::PodRegistered { .. } => "pod-registered",
            ControlReply::Pods { .. } => "pods",
            ControlReply::Migrated { .. } => "migrated",
            ControlReply::TaskExport { .. } => "task-export",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            ControlReply::Ok => 0,
            ControlReply::Submitted { .. } => 1,
            ControlReply::Seeds { .. } => 2,
            ControlReply::Seed { .. } => 3,
            ControlReply::Json { .. } => 4,
            ControlReply::Drained { .. } => 5,
            ControlReply::Replanned { .. } => 6,
            ControlReply::Checkpointed { .. } => 7,
            ControlReply::Restored { .. } => 8,
            ControlReply::Rejected { .. } => 9,
            ControlReply::CompileFailed { .. } => 10,
            ControlReply::PodRegistered { .. } => 11,
            ControlReply::Pods { .. } => 12,
            ControlReply::Migrated { .. } => 13,
            ControlReply::TaskExport { .. } => 14,
        }
    }
}

/// A typed control-plane frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection preamble: who is talking and which protocol revision.
    Hello { node: String, protocol: u32 },
    /// Soil liveness beacon.
    Heartbeat { switch: u32, seq: u64, at_ns: u64 },
    /// Batched seed→harvester poll reports (one or many per frame).
    PollReport { reports: Vec<Report> },
    /// Harvester→seed command, optionally pinned to one switch.
    HarvesterDirective {
        machine: String,
        at_switch: Option<u32>,
        value: Value,
    },
    /// Seed→seed message (broadcast when `at_switch` is `None`).
    SeedMessage {
        task: String,
        from_switch: u32,
        from_seed: u64,
        from_machine: String,
        to_machine: String,
        at_switch: Option<u32>,
        at_ns: u64,
        latency_ns: u64,
        bytes: u64,
        value: Value,
    },
    /// Seed migration payload: the full state snapshot in transit.
    Migrate {
        task: String,
        from_switch: u32,
        to_switch: u32,
        snapshot: SeedSnapshot,
    },
    /// Positive acknowledgement (default response frame).
    Ack,
    /// Negative acknowledgement with a reason.
    Error { message: String },
    /// Graceful close notification.
    Shutdown,
    /// Management request (operator → daemon).
    Control { op: ControlOp },
    /// Management answer (daemon → operator).
    ControlReply { reply: ControlReply },
}

impl Frame {
    /// Short name for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::PollReport { .. } => "poll_report",
            Frame::HarvesterDirective { .. } => "harvester_directive",
            Frame::SeedMessage { .. } => "seed_message",
            Frame::Migrate { .. } => "migrate",
            Frame::Ack => "ack",
            Frame::Error { .. } => "error",
            Frame::Shutdown => "shutdown",
            Frame::Control { .. } => "control",
            Frame::ControlReply { .. } => "control_reply",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::Heartbeat { .. } => 1,
            Frame::PollReport { .. } => 2,
            Frame::HarvesterDirective { .. } => 3,
            Frame::SeedMessage { .. } => 4,
            Frame::Migrate { .. } => 5,
            Frame::Ack => 6,
            Frame::Error { .. } => 7,
            Frame::Shutdown => 8,
            Frame::Control { .. } => 9,
            Frame::ControlReply { .. } => 10,
        }
    }
}

/// A frame plus its multiplexing envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Correlation id; `0` = one-way.
    pub corr: u64,
    /// True when this frame answers the request with the same `corr`.
    pub response: bool,
    pub frame: Frame,
}

impl Envelope {
    /// A one-way (unacknowledged) frame.
    pub fn one_way(frame: Frame) -> Envelope {
        Envelope {
            corr: 0,
            response: false,
            frame,
        }
    }

    /// A request expecting a response with the same correlation id.
    pub fn request(corr: u64, frame: Frame) -> Envelope {
        Envelope {
            corr,
            response: false,
            frame,
        }
    }

    /// The response to a request.
    pub fn response(corr: u64, frame: Frame) -> Envelope {
        Envelope {
            corr,
            response: true,
            frame,
        }
    }
}

const FLAG_RESPONSE: u8 = 0b0000_0001;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes one envelope, appending the length-prefixed frame to `out`.
/// Returns the number of bytes appended.
pub fn encode_envelope(env: &Envelope, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let mut body = Vec::with_capacity(64);
    body.push(PROTOCOL_VERSION);
    body.push(env.frame.tag());
    body.push(if env.response { FLAG_RESPONSE } else { 0 });
    put_varint(&mut body, env.corr);
    encode_frame_payload(&env.frame, &mut body);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
    out.len() - start
}

fn encode_frame_payload(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Hello { node, protocol } => {
            put_str(out, node);
            put_varint(out, *protocol as u64);
        }
        Frame::Heartbeat { switch, seq, at_ns } => {
            put_varint(out, *switch as u64);
            put_varint(out, *seq);
            put_varint(out, *at_ns);
        }
        Frame::PollReport { reports } => {
            put_varint(out, reports.len() as u64);
            for r in reports {
                encode_report(r, out);
            }
        }
        Frame::HarvesterDirective {
            machine,
            at_switch,
            value,
        } => {
            put_str(out, machine);
            encode_opt_switch(*at_switch, out);
            encode_value(value, out);
        }
        Frame::SeedMessage {
            task,
            from_switch,
            from_seed,
            from_machine,
            to_machine,
            at_switch,
            at_ns,
            latency_ns,
            bytes,
            value,
        } => {
            put_str(out, task);
            put_varint(out, *from_switch as u64);
            put_varint(out, *from_seed);
            put_str(out, from_machine);
            put_str(out, to_machine);
            encode_opt_switch(*at_switch, out);
            put_varint(out, *at_ns);
            put_varint(out, *latency_ns);
            put_varint(out, *bytes);
            encode_value(value, out);
        }
        Frame::Migrate {
            task,
            from_switch,
            to_switch,
            snapshot,
        } => {
            put_str(out, task);
            put_varint(out, *from_switch as u64);
            put_varint(out, *to_switch as u64);
            // Snapshots travel versioned; the decoder also accepts the
            // legacy untagged layout from pre-versioning peers.
            out.push(0x00);
            out.push(VSeedSnapshot::CURRENT_VERSION);
            crate::snapshot::encode_snapshot_body(snapshot, out);
        }
        Frame::Ack | Frame::Shutdown => {}
        Frame::Error { message } => put_str(out, message),
        Frame::Control { op } => encode_control_op(op, out),
        Frame::ControlReply { reply } => encode_control_reply(reply, out),
    }
}

fn encode_control_op(op: &ControlOp, out: &mut Vec<u8>) {
    out.push(op.tag());
    match op {
        ControlOp::SubmitProgram { name, source } => {
            put_str(out, name);
            put_str(out, source);
        }
        ControlOp::DescribeSeed { key } => put_str(out, key),
        ControlOp::Drain { switch } | ControlOp::Uncordon { switch } => {
            put_varint(out, *switch as u64);
        }
        // The cursor is an optional trailing extension: the no-cursor
        // case encodes as the pre-cursor revision did, so old servers
        // keep accepting unpaginated requests from new clients.
        ControlOp::ListSeeds { from_index, limit } | ControlOp::Stats { from_index, limit } => {
            if *from_index != 0 || *limit != 0 {
                put_varint(out, *from_index);
                put_varint(out, *limit);
            }
        }
        ControlOp::MetricsDump
        | ControlOp::Replan
        | ControlOp::Checkpoint
        | ControlOp::Restore
        | ControlOp::Shutdown
        | ControlOp::ListPods => {}
        ControlOp::RegisterPod {
            name,
            addr,
            switches,
            quota,
        } => {
            put_str(out, name);
            put_str(out, addr);
            put_varint(out, *switches);
            put_f64(out, *quota);
        }
        ControlOp::PodHeartbeat { name, seq } => {
            put_str(out, name);
            put_varint(out, *seq);
        }
        ControlOp::MigrateTask { task, to_pod } => {
            put_str(out, task);
            put_str(out, to_pod);
        }
        ControlOp::ExportTask { task } | ControlOp::RemoveTask { task } => put_str(out, task),
        ControlOp::SubmitWithSnapshot {
            name,
            source,
            seeds,
        } => {
            put_str(out, name);
            put_str(out, source);
            encode_snapshot_entries(seeds, out);
        }
    }
}

/// Encodes a keyed snapshot list; each snapshot travels versioned, the
/// same layout [`Frame::Migrate`] uses.
fn encode_snapshot_entries(seeds: &[(String, SeedSnapshot)], out: &mut Vec<u8>) {
    put_varint(out, seeds.len() as u64);
    for (key, snap) in seeds {
        put_str(out, key);
        out.push(0x00);
        out.push(VSeedSnapshot::CURRENT_VERSION);
        crate::snapshot::encode_snapshot_body(snap, out);
    }
}

fn decode_snapshot_entries(r: &mut Reader<'_>) -> Result<Vec<(String, SeedSnapshot)>, WireError> {
    let n = r.len_prefix(5)?;
    let mut seeds = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let key = r.str()?;
        let snap = decode_vsnapshot(r)?.into_latest();
        seeds.push((key, snap));
    }
    Ok(seeds)
}

fn encode_pod_info(p: &PodInfo, out: &mut Vec<u8>) {
    put_str(out, &p.name);
    put_str(out, &p.addr);
    put_varint(out, p.switches);
    put_varint(out, p.base);
    put_f64(out, p.quota);
    put_bool(out, p.live);
    put_varint(out, p.beats);
    put_varint(out, p.age_ms);
}

fn decode_pod_info(r: &mut Reader<'_>) -> Result<PodInfo, WireError> {
    Ok(PodInfo {
        name: r.str()?,
        addr: r.str()?,
        switches: r.varint()?,
        base: r.varint()?,
        quota: r.f64()?,
        live: r.bool()?,
        beats: r.varint()?,
        age_ms: r.varint()?,
    })
}

fn encode_seed_descriptor(d: &SeedDescriptor, out: &mut Vec<u8>) {
    put_str(out, &d.key);
    put_str(out, &d.task);
    put_str(out, &d.machine);
    put_varint(out, d.switch as u64);
    put_str(out, &d.state);
    for v in d.alloc {
        put_f64(out, v);
    }
}

fn encode_diagnostic(d: &Diagnostic, out: &mut Vec<u8>) {
    put_str(out, &d.machine);
    put_str(out, &d.phase);
    put_varint(out, d.line as u64);
    put_varint(out, d.col as u64);
    put_str(out, &d.message);
}

fn encode_control_reply(reply: &ControlReply, out: &mut Vec<u8>) {
    out.push(reply.tag());
    match reply {
        ControlReply::Ok => {}
        ControlReply::Submitted {
            task,
            seeds,
            actions,
        } => {
            put_str(out, task);
            put_varint(out, *seeds);
            put_varint(out, *actions);
        }
        ControlReply::Seeds {
            seeds,
            next_index,
            total,
        } => {
            put_varint(out, seeds.len() as u64);
            for d in seeds {
                encode_seed_descriptor(d, out);
            }
            // Trailing cursor, omitted for unpaginated replies — those
            // stay byte-identical to the pre-cursor revision, and only
            // cursor-aware clients ever receive a paginated reply.
            if *next_index != 0 || *total != 0 {
                put_varint(out, *next_index);
                put_varint(out, *total);
            }
        }
        ControlReply::Seed { desc, vars } => {
            encode_seed_descriptor(desc, out);
            put_varint(out, vars.len() as u64);
            for (name, rendered) in vars {
                put_str(out, name);
                put_str(out, rendered);
            }
        }
        ControlReply::Json { body } => put_str(out, body),
        ControlReply::Drained { switch, evacuated } => {
            put_varint(out, *switch as u64);
            put_varint(out, *evacuated);
        }
        ControlReply::Replanned {
            actions,
            dropped_tasks,
        } => {
            put_varint(out, *actions);
            put_varint(out, *dropped_tasks);
        }
        // Both replies append their newer field as a trailing optional
        // extension (the cursor pattern): the common case — no persist
        // error, nothing skipped — encodes byte-identically to the
        // pre-extension revision, so old clients keep decoding it.
        ControlReply::Checkpointed {
            seeds,
            persist_error,
        } => {
            put_varint(out, *seeds);
            if let Some(e) = persist_error {
                put_str(out, e);
            }
        }
        ControlReply::Restored { seeds, skipped } => {
            put_varint(out, *seeds);
            if *skipped != 0 {
                put_varint(out, *skipped);
            }
        }
        ControlReply::Rejected { reason } => put_str(out, reason),
        ControlReply::CompileFailed { diagnostics } => {
            put_varint(out, diagnostics.len() as u64);
            for d in diagnostics {
                encode_diagnostic(d, out);
            }
        }
        ControlReply::PodRegistered { base } => put_varint(out, *base),
        ControlReply::Pods { pods } => {
            put_varint(out, pods.len() as u64);
            for p in pods {
                encode_pod_info(p, out);
            }
        }
        ControlReply::Migrated {
            task,
            from_pod,
            to_pod,
            seeds,
        } => {
            put_str(out, task);
            put_str(out, from_pod);
            put_str(out, to_pod);
            put_varint(out, *seeds);
        }
        ControlReply::TaskExport { source, seeds } => {
            put_str(out, source);
            encode_snapshot_entries(seeds, out);
        }
    }
}

fn encode_report(r: &Report, out: &mut Vec<u8>) {
    put_str(out, &r.task);
    put_varint(out, r.from_switch as u64);
    put_varint(out, r.from_seed);
    put_str(out, &r.from_machine);
    put_varint(out, r.at_ns);
    put_varint(out, r.latency_ns);
    put_varint(out, r.bytes);
    encode_value(&r.value, out);
}

fn encode_opt_switch(sw: Option<u32>, out: &mut Vec<u8>) {
    match sw {
        None => out.push(0),
        Some(id) => {
            out.push(1);
            put_varint(out, id as u64);
        }
    }
}

/// Encodes one Almanac [`Value`] (recursive; lists and pairs nest).
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Unit => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            put_bool(out, *b);
        }
        Value::Int(i) => {
            out.push(2);
            put_ivarint(out, *i);
        }
        Value::Float(f) => {
            out.push(3);
            put_f64(out, *f);
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::List(items) => {
            out.push(5);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Packet(p) => {
            out.push(6);
            encode_packet(p, out);
        }
        Value::Filter(f) => {
            out.push(7);
            encode_filter(f, out);
        }
        Value::Action(a) => {
            out.push(8);
            encode_action(a, out);
        }
        Value::Rule(r) => {
            out.push(9);
            encode_filter(&r.pattern, out);
            encode_action(&r.action, out);
        }
        Value::Resources(r) => {
            out.push(10);
            for i in 0..4 {
                put_f64(out, r.0[i]);
            }
        }
        Value::Stat(s) => {
            out.push(11);
            encode_stat(s, out);
        }
        Value::Pair(a, b) => {
            out.push(12);
            encode_value(a, out);
            encode_value(b, out);
        }
    }
}

fn encode_flow(f: &FlowKey, out: &mut Vec<u8>) {
    put_varint(out, f.src.0 as u64);
    put_varint(out, f.dst.0 as u64);
    out.push(proto_tag(f.proto));
    put_varint(out, f.src_port as u64);
    put_varint(out, f.dst_port as u64);
}

fn encode_packet(p: &PacketRecord, out: &mut Vec<u8>) {
    encode_flow(&p.flow, out);
    put_varint(out, p.len as u64);
    out.push((p.syn as u8) | ((p.fin as u8) << 1) | ((p.ack as u8) << 2));
}

fn proto_tag(p: Proto) -> u8 {
    match p {
        Proto::Tcp => 0,
        Proto::Udp => 1,
        Proto::Icmp => 2,
    }
}

fn encode_filter(f: &FilterFormula, out: &mut Vec<u8>) {
    match f {
        FilterFormula::True => out.push(0),
        FilterFormula::False => out.push(1),
        FilterFormula::Atom(a) => {
            out.push(2);
            encode_atom(a, out);
        }
        FilterFormula::And(a, b) => {
            out.push(3);
            encode_filter(a, out);
            encode_filter(b, out);
        }
        FilterFormula::Or(a, b) => {
            out.push(4);
            encode_filter(a, out);
            encode_filter(b, out);
        }
        FilterFormula::Not(a) => {
            out.push(5);
            encode_filter(a, out);
        }
    }
}

fn encode_atom(a: &FilterAtom, out: &mut Vec<u8>) {
    match a {
        FilterAtom::SrcIp(p) => {
            out.push(0);
            put_varint(out, p.addr.0 as u64);
            out.push(p.len);
        }
        FilterAtom::DstIp(p) => {
            out.push(1);
            put_varint(out, p.addr.0 as u64);
            out.push(p.len);
        }
        FilterAtom::SrcPort(p) => {
            out.push(2);
            put_varint(out, *p as u64);
        }
        FilterAtom::DstPort(p) => {
            out.push(3);
            put_varint(out, *p as u64);
        }
        FilterAtom::Proto(p) => {
            out.push(4);
            out.push(proto_tag(*p));
        }
        FilterAtom::IfPort(sel) => {
            out.push(5);
            match sel {
                PortSel::Any => out.push(0),
                PortSel::Id(id) => {
                    out.push(1);
                    put_varint(out, *id as u64);
                }
            }
        }
    }
}

fn encode_action(a: &ActionValue, out: &mut Vec<u8>) {
    match a {
        ActionValue::Drop => out.push(0),
        ActionValue::RateLimit(bps) => {
            out.push(1);
            put_varint(out, *bps);
        }
        ActionValue::SetQos(q) => {
            out.push(2);
            out.push(*q);
        }
        ActionValue::Count => out.push(3),
        ActionValue::Mirror => out.push(4),
    }
}

fn encode_stat(s: &StatEntry, out: &mut Vec<u8>) {
    match &s.subject {
        StatSubject::Port(p) => {
            out.push(0);
            put_varint(out, *p as u64);
        }
        StatSubject::Rule(r) => {
            out.push(1);
            put_str(out, r);
        }
    }
    put_varint(out, s.tx_bytes);
    put_varint(out, s.rx_bytes);
    put_varint(out, s.tx_packets);
    put_varint(out, s.rx_packets);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes one envelope from the front of `buf`.
///
/// Returns the envelope and the total bytes consumed (length prefix
/// included). [`WireError::Truncated`] means the buffer holds only part
/// of a frame — streaming callers read more and retry.
pub fn decode_envelope(buf: &[u8]) -> Result<(Envelope, usize), WireError> {
    let mut head = Reader::new(buf);
    let len = head.varint()?;
    if len > MAX_FRAME_LEN as u64 {
        return Err(WireError::TooLarge(len));
    }
    let header = head.consumed();
    if buf.len() - header < len as usize {
        return Err(WireError::Truncated);
    }
    let env = decode_body(&buf[header..header + len as usize])?;
    Ok((env, header + len as usize))
}

/// Decodes a frame body (the bytes after the length prefix).
pub fn decode_body(body: &[u8]) -> Result<Envelope, WireError> {
    let mut r = Reader::new(body);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::Version(version));
    }
    let tag = r.u8()?;
    let flags = r.u8()?;
    let corr = r.varint()?;
    let frame = decode_frame_payload(tag, &mut r)?;
    r.finish()?;
    Ok(Envelope {
        corr,
        response: flags & FLAG_RESPONSE != 0,
        frame,
    })
}

fn decode_frame_payload(tag: u8, r: &mut Reader<'_>) -> Result<Frame, WireError> {
    match tag {
        0 => Ok(Frame::Hello {
            node: r.str()?,
            protocol: decode_u32(r, "protocol")?,
        }),
        1 => Ok(Frame::Heartbeat {
            switch: decode_u32(r, "switch")?,
            seq: r.varint()?,
            at_ns: r.varint()?,
        }),
        2 => {
            let n = r.len_prefix(8)?;
            let mut reports = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                reports.push(decode_report(r)?);
            }
            Ok(Frame::PollReport { reports })
        }
        3 => Ok(Frame::HarvesterDirective {
            machine: r.str()?,
            at_switch: decode_opt_switch(r)?,
            value: decode_value(r, 0)?,
        }),
        4 => Ok(Frame::SeedMessage {
            task: r.str()?,
            from_switch: decode_u32(r, "from_switch")?,
            from_seed: r.varint()?,
            from_machine: r.str()?,
            to_machine: r.str()?,
            at_switch: decode_opt_switch(r)?,
            at_ns: r.varint()?,
            latency_ns: r.varint()?,
            bytes: r.varint()?,
            value: decode_value(r, 0)?,
        }),
        5 => Ok(Frame::Migrate {
            task: r.str()?,
            from_switch: decode_u32(r, "from_switch")?,
            to_switch: decode_u32(r, "to_switch")?,
            snapshot: decode_vsnapshot(r)?.into_latest(),
        }),
        6 => Ok(Frame::Ack),
        7 => Ok(Frame::Error { message: r.str()? }),
        8 => Ok(Frame::Shutdown),
        9 => Ok(Frame::Control {
            op: decode_control_op(r)?,
        }),
        10 => Ok(Frame::ControlReply {
            reply: decode_control_reply(r)?,
        }),
        t => Err(WireError::Tag {
            what: "frame",
            tag: t,
        }),
    }
}

/// Reads the optional trailing `(from_index, limit)` cursor: an absent
/// cursor (pre-cursor client, or the unpaginated encoding) defaults to
/// `(0, 0)` — "everything".
fn decode_cursor(r: &mut Reader<'_>) -> Result<(u64, u64), WireError> {
    if r.remaining() == 0 {
        return Ok((0, 0));
    }
    Ok((r.varint()?, r.varint()?))
}

fn decode_control_op(r: &mut Reader<'_>) -> Result<ControlOp, WireError> {
    match r.u8()? {
        0 => Ok(ControlOp::SubmitProgram {
            name: r.str()?,
            source: r.str()?,
        }),
        1 => {
            let (from_index, limit) = decode_cursor(r)?;
            Ok(ControlOp::ListSeeds { from_index, limit })
        }
        2 => Ok(ControlOp::DescribeSeed { key: r.str()? }),
        3 => {
            let (from_index, limit) = decode_cursor(r)?;
            Ok(ControlOp::Stats { from_index, limit })
        }
        4 => Ok(ControlOp::MetricsDump),
        5 => Ok(ControlOp::Drain {
            switch: decode_u32(r, "switch")?,
        }),
        6 => Ok(ControlOp::Uncordon {
            switch: decode_u32(r, "switch")?,
        }),
        7 => Ok(ControlOp::Replan),
        8 => Ok(ControlOp::Checkpoint),
        9 => Ok(ControlOp::Restore),
        10 => Ok(ControlOp::Shutdown),
        11 => Ok(ControlOp::RegisterPod {
            name: r.str()?,
            addr: r.str()?,
            switches: r.varint()?,
            quota: r.f64()?,
        }),
        12 => Ok(ControlOp::PodHeartbeat {
            name: r.str()?,
            seq: r.varint()?,
        }),
        13 => Ok(ControlOp::ListPods),
        14 => Ok(ControlOp::MigrateTask {
            task: r.str()?,
            to_pod: r.str()?,
        }),
        15 => Ok(ControlOp::ExportTask { task: r.str()? }),
        16 => Ok(ControlOp::SubmitWithSnapshot {
            name: r.str()?,
            source: r.str()?,
            seeds: decode_snapshot_entries(r)?,
        }),
        17 => Ok(ControlOp::RemoveTask { task: r.str()? }),
        t => Err(WireError::Tag {
            what: "control op",
            tag: t,
        }),
    }
}

fn decode_seed_descriptor(r: &mut Reader<'_>) -> Result<SeedDescriptor, WireError> {
    let key = r.str()?;
    let task = r.str()?;
    let machine = r.str()?;
    let switch = decode_u32(r, "switch")?;
    let state = r.str()?;
    let mut alloc = [0.0f64; 4];
    for slot in alloc.iter_mut() {
        *slot = r.f64()?;
    }
    Ok(SeedDescriptor {
        key,
        task,
        machine,
        switch,
        state,
        alloc,
    })
}

fn decode_diagnostic(r: &mut Reader<'_>) -> Result<Diagnostic, WireError> {
    Ok(Diagnostic {
        machine: r.str()?,
        phase: r.str()?,
        line: decode_u32(r, "line")?,
        col: decode_u32(r, "col")?,
        message: r.str()?,
    })
}

fn decode_control_reply(r: &mut Reader<'_>) -> Result<ControlReply, WireError> {
    match r.u8()? {
        0 => Ok(ControlReply::Ok),
        1 => Ok(ControlReply::Submitted {
            task: r.str()?,
            seeds: r.varint()?,
            actions: r.varint()?,
        }),
        2 => {
            let n = r.len_prefix(37)?;
            let mut seeds = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                seeds.push(decode_seed_descriptor(r)?);
            }
            let (next_index, total) = decode_cursor(r)?;
            Ok(ControlReply::Seeds {
                seeds,
                next_index,
                total,
            })
        }
        3 => {
            let desc = decode_seed_descriptor(r)?;
            let n = r.len_prefix(2)?;
            let mut vars = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = r.str()?;
                let rendered = r.str()?;
                vars.push((name, rendered));
            }
            Ok(ControlReply::Seed { desc, vars })
        }
        4 => Ok(ControlReply::Json { body: r.str()? }),
        5 => Ok(ControlReply::Drained {
            switch: decode_u32(r, "switch")?,
            evacuated: r.varint()?,
        }),
        6 => Ok(ControlReply::Replanned {
            actions: r.varint()?,
            dropped_tasks: r.varint()?,
        }),
        7 => Ok(ControlReply::Checkpointed {
            seeds: r.varint()?,
            persist_error: if r.remaining() > 0 {
                Some(r.str()?)
            } else {
                None
            },
        }),
        8 => Ok(ControlReply::Restored {
            seeds: r.varint()?,
            skipped: if r.remaining() > 0 { r.varint()? } else { 0 },
        }),
        9 => Ok(ControlReply::Rejected { reason: r.str()? }),
        10 => {
            let n = r.len_prefix(5)?;
            let mut diagnostics = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                diagnostics.push(decode_diagnostic(r)?);
            }
            Ok(ControlReply::CompileFailed { diagnostics })
        }
        11 => Ok(ControlReply::PodRegistered { base: r.varint()? }),
        12 => {
            let n = r.len_prefix(16)?;
            let mut pods = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                pods.push(decode_pod_info(r)?);
            }
            Ok(ControlReply::Pods { pods })
        }
        13 => Ok(ControlReply::Migrated {
            task: r.str()?,
            from_pod: r.str()?,
            to_pod: r.str()?,
            seeds: r.varint()?,
        }),
        14 => Ok(ControlReply::TaskExport {
            source: r.str()?,
            seeds: decode_snapshot_entries(r)?,
        }),
        t => Err(WireError::Tag {
            what: "control reply",
            tag: t,
        }),
    }
}

/// Best-effort recovery of the correlation id from a frame body whose
/// payload failed to decode, so a server can answer the request with a
/// structured [`Frame::Error`] instead of wedging the client.
///
/// Returns `Some(corr)` only for request frames (`corr != 0`, response
/// flag clear) whose version and header fields parse; `None` otherwise.
pub fn decode_request_corr(body: &[u8]) -> Option<u64> {
    let mut r = Reader::new(body);
    let version = r.u8().ok()?;
    if version != PROTOCOL_VERSION {
        return None;
    }
    let _tag = r.u8().ok()?;
    let flags = r.u8().ok()?;
    let corr = r.varint().ok()?;
    if corr != 0 && flags & FLAG_RESPONSE == 0 {
        Some(corr)
    } else {
        None
    }
}

fn decode_u32(r: &mut Reader<'_>, what: &'static str) -> Result<u32, WireError> {
    let v = r.varint()?;
    u32::try_from(v).map_err(|_| WireError::Range(what))
}

fn decode_report(r: &mut Reader<'_>) -> Result<Report, WireError> {
    Ok(Report {
        task: r.str()?,
        from_switch: decode_u32(r, "from_switch")?,
        from_seed: r.varint()?,
        from_machine: r.str()?,
        at_ns: r.varint()?,
        latency_ns: r.varint()?,
        bytes: r.varint()?,
        value: decode_value(r, 0)?,
    })
}

fn decode_opt_switch(r: &mut Reader<'_>) -> Result<Option<u32>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_u32(r, "at_switch")?)),
        t => Err(WireError::Tag {
            what: "option",
            tag: t,
        }),
    }
}

/// Decodes one [`Value`] with a recursion-depth bound.
pub fn decode_value(r: &mut Reader<'_>, depth: usize) -> Result<Value, WireError> {
    if depth >= MAX_DEPTH {
        return Err(WireError::Depth);
    }
    match r.u8()? {
        0 => Ok(Value::Unit),
        1 => Ok(Value::Bool(r.bool()?)),
        2 => Ok(Value::Int(r.ivarint()?)),
        3 => Ok(Value::Float(r.f64()?)),
        4 => Ok(Value::Str(r.str()?)),
        5 => {
            let n = r.len_prefix(1)?;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(decode_value(r, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        6 => Ok(Value::Packet(decode_packet(r)?)),
        7 => Ok(Value::Filter(decode_filter(r, depth + 1)?)),
        8 => Ok(Value::Action(decode_action(r)?)),
        9 => Ok(Value::Rule(RuleValue {
            pattern: decode_filter(r, depth + 1)?,
            action: decode_action(r)?,
        })),
        10 => {
            let mut res = Resources::ZERO;
            for slot in res.0.iter_mut() {
                *slot = r.f64()?;
            }
            Ok(Value::Resources(res))
        }
        11 => Ok(Value::Stat(decode_stat(r)?)),
        12 => {
            let a = decode_value(r, depth + 1)?;
            let b = decode_value(r, depth + 1)?;
            Ok(Value::Pair(Box::new(a), Box::new(b)))
        }
        t => Err(WireError::Tag {
            what: "value",
            tag: t,
        }),
    }
}

fn decode_proto(r: &mut Reader<'_>) -> Result<Proto, WireError> {
    match r.u8()? {
        0 => Ok(Proto::Tcp),
        1 => Ok(Proto::Udp),
        2 => Ok(Proto::Icmp),
        t => Err(WireError::Tag {
            what: "proto",
            tag: t,
        }),
    }
}

fn decode_flow(r: &mut Reader<'_>) -> Result<FlowKey, WireError> {
    let src = Ipv4(decode_u32(r, "src ip")?);
    let dst = Ipv4(decode_u32(r, "dst ip")?);
    let proto = decode_proto(r)?;
    let src_port = decode_u16(r, "src port")?;
    let dst_port = decode_u16(r, "dst port")?;
    Ok(FlowKey {
        src,
        dst,
        proto,
        src_port,
        dst_port,
    })
}

fn decode_u16(r: &mut Reader<'_>, what: &'static str) -> Result<u16, WireError> {
    let v = r.varint()?;
    u16::try_from(v).map_err(|_| WireError::Range(what))
}

fn decode_packet(r: &mut Reader<'_>) -> Result<PacketRecord, WireError> {
    let flow = decode_flow(r)?;
    let len = decode_u32(r, "packet len")?;
    let flags = r.u8()?;
    if flags > 0b111 {
        return Err(WireError::Range("packet flags"));
    }
    Ok(PacketRecord {
        flow,
        len,
        syn: flags & 1 != 0,
        fin: flags & 2 != 0,
        ack: flags & 4 != 0,
    })
}

fn decode_prefix(r: &mut Reader<'_>) -> Result<Prefix, WireError> {
    let addr = Ipv4(decode_u32(r, "prefix addr")?);
    let len = r.u8()?;
    if len > 32 {
        return Err(WireError::Range("prefix len"));
    }
    // Prefix::new normalizes host bits; a non-canonical encoding would
    // break byte-exact re-encoding, so reject it instead.
    let p = Prefix::new(addr, len);
    if p.addr != addr {
        return Err(WireError::Range("prefix host bits"));
    }
    Ok(p)
}

fn decode_filter(r: &mut Reader<'_>, depth: usize) -> Result<FilterFormula, WireError> {
    if depth >= MAX_DEPTH {
        return Err(WireError::Depth);
    }
    match r.u8()? {
        0 => Ok(FilterFormula::True),
        1 => Ok(FilterFormula::False),
        2 => Ok(FilterFormula::Atom(decode_atom(r)?)),
        3 => Ok(FilterFormula::And(
            Box::new(decode_filter(r, depth + 1)?),
            Box::new(decode_filter(r, depth + 1)?),
        )),
        4 => Ok(FilterFormula::Or(
            Box::new(decode_filter(r, depth + 1)?),
            Box::new(decode_filter(r, depth + 1)?),
        )),
        5 => Ok(FilterFormula::Not(Box::new(decode_filter(r, depth + 1)?))),
        t => Err(WireError::Tag {
            what: "filter",
            tag: t,
        }),
    }
}

fn decode_atom(r: &mut Reader<'_>) -> Result<FilterAtom, WireError> {
    match r.u8()? {
        0 => Ok(FilterAtom::SrcIp(decode_prefix(r)?)),
        1 => Ok(FilterAtom::DstIp(decode_prefix(r)?)),
        2 => Ok(FilterAtom::SrcPort(decode_u16(r, "src port")?)),
        3 => Ok(FilterAtom::DstPort(decode_u16(r, "dst port")?)),
        4 => Ok(FilterAtom::Proto(decode_proto(r)?)),
        5 => match r.u8()? {
            0 => Ok(FilterAtom::IfPort(PortSel::Any)),
            1 => Ok(FilterAtom::IfPort(PortSel::Id(decode_u16(r, "if port")?))),
            t => Err(WireError::Tag {
                what: "portsel",
                tag: t,
            }),
        },
        t => Err(WireError::Tag {
            what: "atom",
            tag: t,
        }),
    }
}

fn decode_action(r: &mut Reader<'_>) -> Result<ActionValue, WireError> {
    match r.u8()? {
        0 => Ok(ActionValue::Drop),
        1 => Ok(ActionValue::RateLimit(r.varint()?)),
        2 => Ok(ActionValue::SetQos(r.u8()?)),
        3 => Ok(ActionValue::Count),
        4 => Ok(ActionValue::Mirror),
        t => Err(WireError::Tag {
            what: "action",
            tag: t,
        }),
    }
}

fn decode_stat(r: &mut Reader<'_>) -> Result<StatEntry, WireError> {
    let subject = match r.u8()? {
        0 => StatSubject::Port(decode_u16(r, "stat port")?),
        1 => StatSubject::Rule(r.str()?),
        t => {
            return Err(WireError::Tag {
                what: "stat subject",
                tag: t,
            })
        }
    };
    Ok(StatEntry {
        subject,
        tx_bytes: r.varint()?,
        rx_bytes: r.varint()?,
        tx_packets: r.varint()?,
        rx_packets: r.varint()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(env: &Envelope) -> Envelope {
        let mut buf = Vec::new();
        encode_envelope(env, &mut buf);
        let (got, consumed) = decode_envelope(&buf).expect("decode");
        assert_eq!(consumed, buf.len(), "whole buffer consumed");
        got
    }

    #[test]
    fn heartbeat_round_trips() {
        let env = Envelope::one_way(Frame::Heartbeat {
            switch: 7,
            seq: 42,
            at_ns: 1_000_000,
        });
        assert_eq!(round_trip(&env), env);
    }

    #[test]
    fn poll_report_with_nested_values_round_trips() {
        let report = Report {
            task: "hh".into(),
            from_switch: 3,
            from_seed: 11,
            from_machine: "HH".into(),
            at_ns: 5_000,
            latency_ns: 120_000,
            bytes: 48,
            value: Value::List(vec![
                Value::Pair(
                    Box::new(Value::Str("10.0.0.1".into())),
                    Box::new(Value::Int(-77)),
                ),
                Value::Float(2.5),
                Value::Stat(StatEntry {
                    subject: StatSubject::Port(9),
                    tx_bytes: 1,
                    rx_bytes: 2,
                    tx_packets: 3,
                    rx_packets: 4,
                }),
            ]),
        };
        let env = Envelope::request(
            9,
            Frame::PollReport {
                reports: vec![report.clone(), report],
            },
        );
        assert_eq!(round_trip(&env), env);
    }

    #[test]
    fn migrate_snapshot_round_trips() {
        let env = Envelope::request(
            1,
            Frame::Migrate {
                task: "hh".into(),
                from_switch: 0,
                to_switch: 4,
                snapshot: SeedSnapshot {
                    machine: "HH".into(),
                    state: "Monitor".into(),
                    vars: vec![
                        ("threshold".into(), Value::Int(1000)),
                        (
                            "rule".into(),
                            Value::Rule(RuleValue {
                                pattern: FilterFormula::Atom(FilterAtom::DstPort(443)),
                                action: ActionValue::RateLimit(1_000_000),
                            }),
                        ),
                    ],
                },
            },
        );
        assert_eq!(round_trip(&env), env);
    }

    #[test]
    fn legacy_unversioned_migrate_still_decodes() {
        // The pre-versioning Migrate encoding carried the snapshot
        // untagged; a peer speaking that revision must still be heard.
        let snapshot = SeedSnapshot {
            machine: "HH".into(),
            state: "Monitor".into(),
            vars: vec![("threshold".into(), Value::Int(7))],
        };
        let mut body = vec![PROTOCOL_VERSION, 5, 0];
        put_varint(&mut body, 3); // corr
        put_str(&mut body, "hh");
        put_varint(&mut body, 1); // from_switch
        put_varint(&mut body, 2); // to_switch
        put_str(&mut body, &snapshot.machine);
        put_str(&mut body, &snapshot.state);
        put_varint(&mut body, 1);
        put_str(&mut body, "threshold");
        encode_value(&Value::Int(7), &mut body);
        let env = decode_body(&body).expect("legacy migrate decodes");
        assert_eq!(
            env.frame,
            Frame::Migrate {
                task: "hh".into(),
                from_switch: 1,
                to_switch: 2,
                snapshot,
            }
        );
    }

    #[test]
    fn cursorless_control_ops_decode_with_defaults() {
        // A pre-cursor client encodes ListSeeds/Stats with no payload;
        // the decoder must default to "everything".
        for (tag, want) in [(1u8, ControlOp::list_all()), (3u8, ControlOp::stats_all())] {
            let mut body = vec![PROTOCOL_VERSION, 9, 0];
            put_varint(&mut body, 4); // corr
            body.push(tag);
            let env = decode_body(&body).expect("cursorless op decodes");
            assert_eq!(env.frame, Frame::Control { op: want });
        }
    }

    #[test]
    fn extensionless_checkpoint_replies_stay_wire_compatible() {
        // The pre-extension revision encoded Checkpointed/Restored as
        // tag + varint(seeds) and nothing else. A new reply without the
        // trailing field must produce exactly those bytes, and exactly
        // those bytes must decode to the defaults.
        for (reply, tag) in [
            (
                ControlReply::Checkpointed {
                    seeds: 7,
                    persist_error: None,
                },
                7u8,
            ),
            (
                ControlReply::Restored {
                    seeds: 7,
                    skipped: 0,
                },
                8u8,
            ),
        ] {
            let env = Envelope::response(3, Frame::ControlReply { reply });
            let mut buf = Vec::new();
            encode_envelope(&env, &mut buf);
            let mut old = vec![PROTOCOL_VERSION, 10, FLAG_RESPONSE];
            put_varint(&mut old, 3); // corr
            old.push(tag);
            put_varint(&mut old, 7); // seeds
            assert_eq!(&buf[1..], &old[..], "tag {tag} encoding drifted");
            assert_eq!(decode_body(&old).expect("old bytes decode"), env);
        }
    }

    #[test]
    fn response_flag_survives() {
        let env = Envelope::response(17, Frame::Ack);
        let got = round_trip(&env);
        assert!(got.response);
        assert_eq!(got.corr, 17);
    }

    #[test]
    fn truncated_frames_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_envelope(
            &Envelope::one_way(Frame::Error {
                message: "boom".into(),
            }),
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert_eq!(
                decode_envelope(&buf[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        encode_envelope(&Envelope::one_way(Frame::Ack), &mut buf);
        // Body starts after the 1-byte length prefix; flip the version.
        buf[1] = 99;
        assert_eq!(decode_envelope(&buf).unwrap_err(), WireError::Version(99));
    }

    #[test]
    fn trailing_garbage_inside_body_is_rejected() {
        let mut body = Vec::new();
        body.push(PROTOCOL_VERSION);
        body.push(6); // Ack
        body.push(0);
        put_varint(&mut body, 0);
        body.push(0xAA); // junk
        let mut buf = Vec::new();
        put_varint(&mut buf, body.len() as u64);
        buf.extend_from_slice(&body);
        assert_eq!(decode_envelope(&buf).unwrap_err(), WireError::Trailing(1));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_varint(&mut buf, (MAX_FRAME_LEN as u64) + 1);
        assert!(matches!(
            decode_envelope(&buf).unwrap_err(),
            WireError::TooLarge(_)
        ));
    }

    #[test]
    fn control_ops_round_trip() {
        let ops = vec![
            ControlOp::SubmitProgram {
                name: "mon".into(),
                source: "machine M { place any; state s { } }".into(),
            },
            ControlOp::list_all(),
            ControlOp::ListSeeds {
                from_index: 128,
                limit: 64,
            },
            ControlOp::DescribeSeed {
                key: "mon/m0/s0".into(),
            },
            ControlOp::stats_all(),
            ControlOp::Stats {
                from_index: 10,
                limit: 5,
            },
            ControlOp::MetricsDump,
            ControlOp::Drain { switch: 3 },
            ControlOp::Uncordon { switch: 3 },
            ControlOp::Replan,
            ControlOp::Checkpoint,
            ControlOp::Restore,
            ControlOp::Shutdown,
        ];
        for op in ops {
            let env = Envelope::request(5, Frame::Control { op });
            assert_eq!(round_trip(&env), env);
        }
    }

    #[test]
    fn control_replies_round_trip() {
        let desc = SeedDescriptor {
            key: "mon/m0/s0".into(),
            task: "mon".into(),
            machine: "M".into(),
            switch: 2,
            state: "observe".into(),
            alloc: [1.0, 100.0, 0.0, 12.5],
        };
        let replies = vec![
            ControlReply::Ok,
            ControlReply::Submitted {
                task: "mon".into(),
                seeds: 5,
                actions: 5,
            },
            ControlReply::Seeds {
                seeds: vec![desc.clone(), desc.clone()],
                next_index: 0,
                total: 0,
            },
            ControlReply::Seeds {
                seeds: vec![desc.clone()],
                next_index: 3,
                total: 9,
            },
            ControlReply::Seed {
                desc,
                vars: vec![("threshold".into(), "1000".into())],
            },
            ControlReply::Json {
                body: "{\"a\":1}".into(),
            },
            ControlReply::Drained {
                switch: 2,
                evacuated: 3,
            },
            ControlReply::Replanned {
                actions: 4,
                dropped_tasks: 0,
            },
            ControlReply::Checkpointed {
                seeds: 7,
                persist_error: None,
            },
            ControlReply::Checkpointed {
                seeds: 7,
                persist_error: Some("disk full".into()),
            },
            ControlReply::Restored {
                seeds: 7,
                skipped: 0,
            },
            ControlReply::Restored {
                seeds: 7,
                skipped: 2,
            },
            ControlReply::Rejected {
                reason: "quota exceeded".into(),
            },
            ControlReply::CompileFailed {
                diagnostics: vec![Diagnostic {
                    machine: "M".into(),
                    phase: "parse".into(),
                    line: 3,
                    col: 14,
                    message: "expected `;`".into(),
                }],
            },
        ];
        for reply in replies {
            let env = Envelope::response(5, Frame::ControlReply { reply });
            assert_eq!(round_trip(&env), env);
        }
    }

    #[test]
    fn fed_control_ops_round_trip() {
        let snap = SeedSnapshot {
            machine: "HH".into(),
            state: "Monitor".into(),
            vars: vec![("threshold".into(), Value::Int(1000))],
        };
        let ops = vec![
            ControlOp::RegisterPod {
                name: "pod-a".into(),
                addr: "127.0.0.1:7001".into(),
                switches: 48,
                quota: 0.8,
            },
            ControlOp::PodHeartbeat {
                name: "pod-a".into(),
                seq: 17,
            },
            ControlOp::ListPods,
            ControlOp::MigrateTask {
                task: "mon".into(),
                to_pod: "pod-b".into(),
            },
            ControlOp::ExportTask { task: "mon".into() },
            ControlOp::SubmitWithSnapshot {
                name: "mon".into(),
                source: "machine M { place any; state s { } }".into(),
                seeds: vec![
                    ("mon/m0/s0".into(), snap.clone()),
                    ("mon/m0/s1".into(), snap),
                ],
            },
            ControlOp::RemoveTask { task: "mon".into() },
        ];
        for op in ops {
            let env = Envelope::request(6, Frame::Control { op });
            assert_eq!(round_trip(&env), env);
        }
    }

    #[test]
    fn fed_control_replies_round_trip() {
        let snap = SeedSnapshot {
            machine: "HH".into(),
            state: "Monitor".into(),
            vars: vec![("seen".into(), Value::Int(3))],
        };
        let replies = vec![
            ControlReply::PodRegistered { base: 96 },
            ControlReply::Pods {
                pods: vec![
                    PodInfo {
                        name: "pod-a".into(),
                        addr: "127.0.0.1:7001".into(),
                        switches: 48,
                        base: 0,
                        quota: 0.8,
                        live: true,
                        beats: 12,
                        age_ms: 250,
                    },
                    PodInfo {
                        name: "pod-b".into(),
                        addr: "127.0.0.1:7002".into(),
                        switches: 96,
                        base: 48,
                        quota: 0.5,
                        live: false,
                        beats: 0,
                        age_ms: 30_000,
                    },
                ],
            },
            ControlReply::Pods { pods: vec![] },
            ControlReply::Migrated {
                task: "mon".into(),
                from_pod: "pod-a".into(),
                to_pod: "pod-b".into(),
                seeds: 4,
            },
            ControlReply::TaskExport {
                source: "machine M { place any; state s { } }".into(),
                seeds: vec![("mon/m0/s0".into(), snap)],
            },
            ControlReply::TaskExport {
                source: String::new(),
                seeds: vec![],
            },
        ];
        for reply in replies {
            let env = Envelope::response(6, Frame::ControlReply { reply });
            assert_eq!(round_trip(&env), env);
        }
    }

    #[test]
    fn fed_tags_are_additive_over_the_legacy_space() {
        // The federation ops start at tag 11, one past Shutdown, and
        // the replies at 11, one past CompileFailed. An old decoder
        // that stops at 10 sees exactly WireError::Tag for each — the
        // step-over contract the mixed-version property leans on.
        assert_eq!(
            ControlOp::RegisterPod {
                name: String::new(),
                addr: String::new(),
                switches: 0,
                quota: 0.0,
            }
            .tag(),
            11
        );
        assert_eq!(
            ControlOp::RemoveTask {
                task: String::new()
            }
            .tag(),
            17
        );
        assert_eq!(ControlReply::PodRegistered { base: 0 }.tag(), 11);
        assert_eq!(
            ControlReply::TaskExport {
                source: String::new(),
                seeds: vec![],
            }
            .tag(),
            14
        );
    }

    #[test]
    fn unknown_control_op_tag_is_a_typed_error() {
        let mut body = Vec::new();
        body.push(PROTOCOL_VERSION);
        body.push(9); // Control
        body.push(0);
        put_varint(&mut body, 8); // corr
        body.push(250); // unknown op tag
        let mut buf = Vec::new();
        put_varint(&mut buf, body.len() as u64);
        buf.extend_from_slice(&body);
        assert_eq!(
            decode_envelope(&buf).unwrap_err(),
            WireError::Tag {
                what: "control op",
                tag: 250
            }
        );
        // The correlation id is still recoverable for an Error reply.
        assert_eq!(decode_request_corr(&body), Some(8));
    }

    #[test]
    fn corr_recovery_refuses_responses_and_foreign_versions() {
        let mut body = vec![PROTOCOL_VERSION, 9, FLAG_RESPONSE];
        put_varint(&mut body, 8);
        assert_eq!(decode_request_corr(&body), None, "response flag set");
        let mut body = vec![99, 9, 0];
        put_varint(&mut body, 8);
        assert_eq!(decode_request_corr(&body), None, "foreign version");
        let mut body = vec![PROTOCOL_VERSION, 9, 0];
        put_varint(&mut body, 0);
        assert_eq!(decode_request_corr(&body), None, "one-way frame");
    }

    #[test]
    fn deep_value_nesting_is_bounded() {
        let mut v = Value::Int(0);
        for _ in 0..(MAX_DEPTH + 8) {
            v = Value::List(vec![v]);
        }
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_value(&mut r, 0).unwrap_err(), WireError::Depth);
    }
}
