//! Versioned seed-state snapshots.
//!
//! [`SeedSnapshot`] is the raw interpreter state a seed carries through
//! a migration or a checkpoint. Its wire encoding used to be untagged,
//! which strands saved state the moment the schema moves. This module
//! wraps it in [`VSeedSnapshot`] — an explicit version enum with `From`
//! upgrades from every older revision — so `Migrate` frames and
//! checkpoint files can evolve without breaking old payloads.
//!
//! ## Wire discrimination
//!
//! A versioned snapshot leads with a `0x00` marker byte, then the
//! version tag, then the version's body:
//!
//! ```text
//! ┌──────┬────────┬──────────────────────┐
//! │ 0x00 │ ver:u8 │ body (per version)   │
//! └──────┴────────┴──────────────────────┘
//! ```
//!
//! The legacy untagged encoding starts with the machine-name length
//! varint, and machine names are never empty, so its first byte is
//! always ≥ 1. Decoders peek one byte: `0x00` selects the versioned
//! path, anything else falls back to legacy — every pre-existing
//! payload still decodes, upgraded to the current revision via `From`.
//!
//! ## Checkpoint files
//!
//! farmd persists checkpoints as `FARMCKP1` + varint count + entries
//! (`str key` + versioned snapshot). A file without the magic is parsed
//! as the legacy layout (count + key + untagged snapshot), so state
//! saved before versioning restores cleanly.

use farm_soil::SeedSnapshot;

use crate::frame::{decode_value, encode_value};
use crate::wire::{put_str, put_varint, Reader, WireError};

/// Magic prefix of a versioned checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"FARMCKP1";

/// A seed snapshot tagged with its schema revision. Adding a revision
/// means a new variant, a `From<old> for new` impl, and a decode arm —
/// old payloads keep decoding forever.
#[derive(Debug, Clone, PartialEq)]
pub enum VSeedSnapshot {
    V1(SeedSnapshot),
}

impl VSeedSnapshot {
    /// The revision stamped on newly encoded snapshots.
    pub const CURRENT_VERSION: u8 = 1;

    /// The revision this value carries.
    pub fn version(&self) -> u8 {
        match self {
            VSeedSnapshot::V1(_) => 1,
        }
    }

    /// Upgrades through every revision to the current in-memory shape.
    pub fn into_latest(self) -> SeedSnapshot {
        match self {
            VSeedSnapshot::V1(s) => s,
        }
    }
}

impl From<SeedSnapshot> for VSeedSnapshot {
    fn from(s: SeedSnapshot) -> VSeedSnapshot {
        VSeedSnapshot::V1(s)
    }
}

impl From<VSeedSnapshot> for SeedSnapshot {
    fn from(v: VSeedSnapshot) -> SeedSnapshot {
        v.into_latest()
    }
}

/// Encodes the V1 snapshot body — the legacy untagged layout:
/// `str(machine) str(state) varint(n) [str(name) value]*`.
pub(crate) fn encode_snapshot_body(s: &SeedSnapshot, out: &mut Vec<u8>) {
    put_str(out, &s.machine);
    put_str(out, &s.state);
    put_varint(out, s.vars.len() as u64);
    for (name, v) in &s.vars {
        put_str(out, name);
        encode_value(v, out);
    }
}

pub(crate) fn decode_snapshot_body(r: &mut Reader<'_>) -> Result<SeedSnapshot, WireError> {
    let machine = r.str()?;
    let state = r.str()?;
    let n = r.len_prefix(2)?;
    let mut vars = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.str()?;
        let v = decode_value(r, 0)?;
        vars.push((name, v));
    }
    Ok(SeedSnapshot {
        machine,
        state,
        vars,
    })
}

/// Encodes a versioned snapshot (marker + version + body).
pub fn encode_vsnapshot(v: &VSeedSnapshot, out: &mut Vec<u8>) {
    out.push(0x00);
    out.push(v.version());
    match v {
        VSeedSnapshot::V1(s) => encode_snapshot_body(s, out),
    }
}

/// Decodes a snapshot, versioned or legacy-untagged (see module docs).
pub fn decode_vsnapshot(r: &mut Reader<'_>) -> Result<VSeedSnapshot, WireError> {
    if r.peek_u8()? != 0x00 {
        // Legacy untagged payload: first byte is the machine-name
        // length varint, which is never zero.
        return Ok(VSeedSnapshot::V1(decode_snapshot_body(r)?));
    }
    r.u8()?;
    match r.u8()? {
        1 => Ok(VSeedSnapshot::V1(decode_snapshot_body(r)?)),
        v => Err(WireError::Tag {
            what: "snapshot version",
            tag: v,
        }),
    }
}

/// Serializes checkpointed seeds as a versioned checkpoint file.
pub fn encode_checkpoint_file(entries: &[(String, VSeedSnapshot)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + entries.len() * 64);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    put_varint(&mut out, entries.len() as u64);
    for (key, snap) in entries {
        put_str(&mut out, key);
        encode_vsnapshot(snap, &mut out);
    }
    out
}

/// Parses a checkpoint file, accepting both the versioned layout and
/// the pre-versioning legacy layout (no magic, untagged snapshots).
pub fn decode_checkpoint_file(bytes: &[u8]) -> Result<Vec<(String, VSeedSnapshot)>, WireError> {
    let body = bytes
        .strip_prefix(CHECKPOINT_MAGIC.as_slice())
        .unwrap_or(bytes);
    let mut r = Reader::new(body);
    let n = r.len_prefix(2)?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let key = r.str()?;
        let snap = decode_vsnapshot(&mut r)?;
        entries.push((key, snap));
    }
    r.finish()?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::value::Value;

    fn sample() -> SeedSnapshot {
        SeedSnapshot {
            machine: "HH".into(),
            state: "Monitor".into(),
            vars: vec![
                ("threshold".into(), Value::Int(1000)),
                ("label".into(), Value::Str("hot".into())),
            ],
        }
    }

    /// Byte-pinned V1 fixture: if this encoding ever drifts, saved
    /// checkpoints and in-flight migrations would strand — the exact
    /// bytes are part of the contract, not an implementation detail.
    const V1_FIXTURE: &[u8] = &[
        0x00, 0x01, // marker, version 1
        0x02, b'H', b'H', // machine "HH"
        0x07, b'M', b'o', b'n', b'i', b't', b'o', b'r', // state
        0x02, // 2 vars
        0x09, b't', b'h', b'r', b'e', b's', b'h', b'o', b'l', b'd', 0x02, 0xd0,
        0x0f, // Value::Int(1000) → zigzag 2000 varint
        0x05, b'l', b'a', b'b', b'e', b'l', //
        0x04, 0x03, b'h', b'o', b't', // Value::Str("hot")
    ];

    #[test]
    fn v1_fixture_bytes_are_pinned() {
        let mut out = Vec::new();
        encode_vsnapshot(&VSeedSnapshot::V1(sample()), &mut out);
        assert_eq!(out, V1_FIXTURE, "V1 wire encoding drifted");
        let mut r = Reader::new(V1_FIXTURE);
        let got = decode_vsnapshot(&mut r).expect("decode fixture");
        r.finish().expect("fixture fully consumed");
        assert_eq!(got, VSeedSnapshot::V1(sample()));
    }

    #[test]
    fn legacy_untagged_bytes_decode_and_upgrade() {
        let mut legacy = Vec::new();
        encode_snapshot_body(&sample(), &mut legacy);
        assert_ne!(legacy[0], 0, "legacy first byte is a nonzero length");
        let mut r = Reader::new(&legacy);
        let got = decode_vsnapshot(&mut r).expect("legacy decode");
        r.finish().expect("fully consumed");
        assert_eq!(got.into_latest(), sample());
    }

    #[test]
    fn from_upgrades_are_lossless_both_ways() {
        let v: VSeedSnapshot = sample().into();
        assert_eq!(v.version(), VSeedSnapshot::CURRENT_VERSION);
        let back: SeedSnapshot = v.into();
        assert_eq!(back, sample());
    }

    #[test]
    fn unknown_snapshot_version_is_a_typed_error() {
        let bytes = [0x00u8, 9, 1, b'M'];
        let mut r = Reader::new(&bytes);
        assert_eq!(
            decode_vsnapshot(&mut r).unwrap_err(),
            WireError::Tag {
                what: "snapshot version",
                tag: 9
            }
        );
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let entries = vec![
            ("hh/m0/s0".to_string(), VSeedSnapshot::V1(sample())),
            ("hh/m0/s1".to_string(), VSeedSnapshot::V1(sample())),
        ];
        let bytes = encode_checkpoint_file(&entries);
        assert!(bytes.starts_with(CHECKPOINT_MAGIC));
        assert_eq!(decode_checkpoint_file(&bytes).expect("decode"), entries);
    }

    #[test]
    fn legacy_checkpoint_file_restores_cleanly() {
        // The pre-versioning layout: count + (key + untagged snapshot),
        // no magic — exactly what a checkpoint written before this
        // revision would hold.
        let mut legacy = Vec::new();
        put_varint(&mut legacy, 1);
        put_str(&mut legacy, "hh/m0/s0");
        encode_snapshot_body(&sample(), &mut legacy);
        let got = decode_checkpoint_file(&legacy).expect("legacy file");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "hh/m0/s0");
        assert_eq!(got[0].1.clone().into_latest(), sample());
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_panic() {
        assert!(decode_checkpoint_file(&[0xff; 7]).is_err());
        let mut bytes = encode_checkpoint_file(&[("k".into(), VSeedSnapshot::V1(sample()))]);
        bytes.push(0xaa);
        assert_eq!(
            decode_checkpoint_file(&bytes).unwrap_err(),
            WireError::Trailing(1)
        );
    }
}
