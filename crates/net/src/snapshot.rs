//! Versioned seed-state snapshots.
//!
//! [`SeedSnapshot`] is the raw interpreter state a seed carries through
//! a migration or a checkpoint. Its wire encoding used to be untagged,
//! which strands saved state the moment the schema moves. This module
//! wraps it in [`VSeedSnapshot`] — an explicit version enum with `From`
//! upgrades from every older revision — so `Migrate` frames and
//! checkpoint files can evolve without breaking old payloads.
//!
//! ## Wire discrimination
//!
//! A versioned snapshot leads with a `0x00` marker byte, then the
//! version tag, then the version's body:
//!
//! ```text
//! ┌──────┬────────┬──────────────────────┐
//! │ 0x00 │ ver:u8 │ body (per version)   │
//! └──────┴────────┴──────────────────────┘
//! ```
//!
//! The legacy untagged encoding starts with the machine-name length
//! varint, and machine names are never empty, so its first byte is
//! always ≥ 1. Decoders peek one byte: `0x00` selects the versioned
//! path, anything else falls back to legacy — every pre-existing
//! payload still decodes, upgraded to the current revision via `From`.
//!
//! ## Checkpoint files
//!
//! Three generations of checkpoint file decode here:
//!
//! * **`FARMCKP2`** (current) — magic + varint record count + records,
//!   each framed as `varint body_len | u32-LE crc32(body) | body`. A
//!   body is `u8 record_type` + payload: type 0 is a program source
//!   (`str name` + `str source`, so a cold restart can recompile the
//!   catalog), type 1 is a seed entry (`str key` + versioned snapshot).
//!   The framing makes decoding *salvageable*: a torn tail yields the
//!   valid prefix, a CRC-mismatched record is skipped, an unknown
//!   record type is stepped over — never an error, never a panic.
//! * **`FARMCKP1`** — magic + varint count + (`str key` + versioned
//!   snapshot). Strict: any damage rejects the file.
//! * **Legacy untagged** — no magic, count + key + untagged snapshot;
//!   state saved before versioning restores cleanly.

use farm_soil::SeedSnapshot;

use crate::frame::{decode_value, encode_value};
use crate::wire::{crc32, put_str, put_varint, Reader, WireError};

/// Magic prefix of a versioned checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"FARMCKP1";

/// Magic prefix of a record-framed (CRC-checked, salvageable) file.
pub const CHECKPOINT_MAGIC_V2: &[u8; 8] = b"FARMCKP2";

/// A seed snapshot tagged with its schema revision. Adding a revision
/// means a new variant, a `From<old> for new` impl, and a decode arm —
/// old payloads keep decoding forever.
#[derive(Debug, Clone, PartialEq)]
pub enum VSeedSnapshot {
    V1(SeedSnapshot),
}

impl VSeedSnapshot {
    /// The revision stamped on newly encoded snapshots.
    pub const CURRENT_VERSION: u8 = 1;

    /// The revision this value carries.
    pub fn version(&self) -> u8 {
        match self {
            VSeedSnapshot::V1(_) => 1,
        }
    }

    /// Upgrades through every revision to the current in-memory shape.
    pub fn into_latest(self) -> SeedSnapshot {
        match self {
            VSeedSnapshot::V1(s) => s,
        }
    }
}

impl From<SeedSnapshot> for VSeedSnapshot {
    fn from(s: SeedSnapshot) -> VSeedSnapshot {
        VSeedSnapshot::V1(s)
    }
}

impl From<VSeedSnapshot> for SeedSnapshot {
    fn from(v: VSeedSnapshot) -> SeedSnapshot {
        v.into_latest()
    }
}

/// Encodes the V1 snapshot body — the legacy untagged layout:
/// `str(machine) str(state) varint(n) [str(name) value]*`.
pub(crate) fn encode_snapshot_body(s: &SeedSnapshot, out: &mut Vec<u8>) {
    put_str(out, &s.machine);
    put_str(out, &s.state);
    put_varint(out, s.vars.len() as u64);
    for (name, v) in &s.vars {
        put_str(out, name);
        encode_value(v, out);
    }
}

pub(crate) fn decode_snapshot_body(r: &mut Reader<'_>) -> Result<SeedSnapshot, WireError> {
    let machine = r.str()?;
    let state = r.str()?;
    let n = r.len_prefix(2)?;
    let mut vars = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.str()?;
        let v = decode_value(r, 0)?;
        vars.push((name, v));
    }
    Ok(SeedSnapshot {
        machine,
        state,
        vars,
    })
}

/// Encodes a versioned snapshot (marker + version + body).
pub fn encode_vsnapshot(v: &VSeedSnapshot, out: &mut Vec<u8>) {
    out.push(0x00);
    out.push(v.version());
    match v {
        VSeedSnapshot::V1(s) => encode_snapshot_body(s, out),
    }
}

/// Decodes a snapshot, versioned or legacy-untagged (see module docs).
pub fn decode_vsnapshot(r: &mut Reader<'_>) -> Result<VSeedSnapshot, WireError> {
    if r.peek_u8()? != 0x00 {
        // Legacy untagged payload: first byte is the machine-name
        // length varint, which is never zero.
        return Ok(VSeedSnapshot::V1(decode_snapshot_body(r)?));
    }
    r.u8()?;
    match r.u8()? {
        1 => Ok(VSeedSnapshot::V1(decode_snapshot_body(r)?)),
        v => Err(WireError::Tag {
            what: "snapshot version",
            tag: v,
        }),
    }
}

/// Serializes checkpointed seeds as a versioned checkpoint file.
pub fn encode_checkpoint_file(entries: &[(String, VSeedSnapshot)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + entries.len() * 64);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    put_varint(&mut out, entries.len() as u64);
    for (key, snap) in entries {
        put_str(&mut out, key);
        encode_vsnapshot(snap, &mut out);
    }
    out
}

/// Parses a checkpoint file, accepting both the versioned layout and
/// the pre-versioning legacy layout (no magic, untagged snapshots).
pub fn decode_checkpoint_file(bytes: &[u8]) -> Result<Vec<(String, VSeedSnapshot)>, WireError> {
    let body = bytes
        .strip_prefix(CHECKPOINT_MAGIC.as_slice())
        .unwrap_or(bytes);
    let mut r = Reader::new(body);
    let n = r.len_prefix(2)?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let key = r.str()?;
        let snap = decode_vsnapshot(&mut r)?;
        entries.push((key, snap));
    }
    r.finish()?;
    Ok(entries)
}

/// Everything a farmd needs to come back from a cold start: the
/// submitted program catalog (so seeds can be recompiled and replaced)
/// plus every checkpointed seed's versioned snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointDoc {
    /// Submitted Almanac programs, `(task name, source)`.
    pub programs: Vec<(String, String)>,
    /// Checkpointed seeds, `(seed key display form, snapshot)`.
    pub seeds: Vec<(String, VSeedSnapshot)>,
}

/// The outcome of decoding a checkpoint file of any generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointLoad {
    pub doc: CheckpointDoc,
    /// Format generation: 0 = legacy untagged, 1 = `FARMCKP1`,
    /// 2 = `FARMCKP2`.
    pub format: u8,
    /// True when a torn tail was dropped (fewer records than the header
    /// declared, or trailing bytes past the declared count).
    pub salvaged: bool,
    /// Records skipped for CRC mismatch or an unparseable body.
    pub corrupt_records: u64,
    /// Records stepped over because their type tag is from the future.
    pub unknown_records: u64,
}

const RECORD_PROGRAM: u8 = 0;
const RECORD_SEED: u8 = 1;

fn put_record(out: &mut Vec<u8>, body: &[u8]) {
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// Serializes a checkpoint document in the `FARMCKP2` layout.
pub fn encode_checkpoint_doc(doc: &CheckpointDoc) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + doc.programs.len() * 128 + doc.seeds.len() * 64);
    out.extend_from_slice(CHECKPOINT_MAGIC_V2);
    put_varint(&mut out, (doc.programs.len() + doc.seeds.len()) as u64);
    let mut body = Vec::new();
    for (name, source) in &doc.programs {
        body.clear();
        body.push(RECORD_PROGRAM);
        put_str(&mut body, name);
        put_str(&mut body, source);
        put_record(&mut out, &body);
    }
    for (key, snap) in &doc.seeds {
        body.clear();
        body.push(RECORD_SEED);
        put_str(&mut body, key);
        encode_vsnapshot(snap, &mut body);
        put_record(&mut out, &body);
    }
    out
}

/// Decodes the body of one CRC-verified `FARMCKP2` record into `load`.
fn decode_record_body(body: &[u8], load: &mut CheckpointLoad) {
    let mut r = Reader::new(body);
    // Trailing bytes inside a known record type are tolerated: a future
    // revision may append fields, and the length framing already tells
    // us where the record ends.
    let parsed = match r.u8() {
        Ok(RECORD_PROGRAM) => (|| {
            let name = r.str()?;
            let source = r.str()?;
            load.doc.programs.push((name, source));
            Ok::<(), WireError>(())
        })()
        .is_ok(),
        Ok(RECORD_SEED) => (|| {
            let key = r.str()?;
            let snap = decode_vsnapshot(&mut r)?;
            load.doc.seeds.push((key, snap));
            Ok::<(), WireError>(())
        })()
        .is_ok(),
        Ok(_) => {
            load.unknown_records += 1;
            return;
        }
        Err(_) => false,
    };
    if !parsed {
        load.corrupt_records += 1;
    }
}

/// Decodes a `FARMCKP2` body (the bytes after the magic). Total and
/// salvaging: damage drops records, it never produces an error.
fn decode_checkpoint_v2(body: &[u8]) -> CheckpointLoad {
    let mut load = CheckpointLoad {
        format: 2,
        ..CheckpointLoad::default()
    };
    let mut r = Reader::new(body);
    // The count is read unchecked: a truncated file declares more
    // records than remain, and those that do remain must still salvage.
    let Ok(declared) = r.varint() else {
        load.salvaged = true;
        return load;
    };
    for _ in 0..declared {
        let record = (|| {
            let len = r.varint()?;
            let crc_bytes = r.take(4)?;
            let mut crc = [0u8; 4];
            crc.copy_from_slice(crc_bytes);
            let body = r.take(len as usize)?;
            Ok::<(u32, &[u8]), WireError>((u32::from_le_bytes(crc), body))
        })();
        match record {
            Ok((crc, body)) if crc == crc32(body) => decode_record_body(body, &mut load),
            // CRC mismatch: the framing held, so step to the next record.
            Ok(_) => load.corrupt_records += 1,
            // Torn framing: everything already decoded is the salvage.
            Err(_) => {
                load.salvaged = true;
                return load;
            }
        }
    }
    if r.remaining() > 0 {
        // More bytes than the header declared records — a damaged count
        // varint. What decoded is still intact, but flag the mismatch.
        load.salvaged = true;
    }
    load
}

/// Parses a checkpoint file of any generation.
///
/// `FARMCKP2` decodes with salvage semantics and never errors; the
/// strict `FARMCKP1` and legacy untagged layouts reject damage exactly
/// as [`decode_checkpoint_file`] always has.
pub fn decode_checkpoint_any(bytes: &[u8]) -> Result<CheckpointLoad, WireError> {
    if let Some(body) = bytes.strip_prefix(CHECKPOINT_MAGIC_V2.as_slice()) {
        return Ok(decode_checkpoint_v2(body));
    }
    let format = if bytes.starts_with(CHECKPOINT_MAGIC) {
        1
    } else {
        0
    };
    let seeds = decode_checkpoint_file(bytes)?;
    Ok(CheckpointLoad {
        doc: CheckpointDoc {
            programs: Vec::new(),
            seeds,
        },
        format,
        ..CheckpointLoad::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use farm_almanac::value::Value;

    fn sample() -> SeedSnapshot {
        SeedSnapshot {
            machine: "HH".into(),
            state: "Monitor".into(),
            vars: vec![
                ("threshold".into(), Value::Int(1000)),
                ("label".into(), Value::Str("hot".into())),
            ],
        }
    }

    /// Byte-pinned V1 fixture: if this encoding ever drifts, saved
    /// checkpoints and in-flight migrations would strand — the exact
    /// bytes are part of the contract, not an implementation detail.
    const V1_FIXTURE: &[u8] = &[
        0x00, 0x01, // marker, version 1
        0x02, b'H', b'H', // machine "HH"
        0x07, b'M', b'o', b'n', b'i', b't', b'o', b'r', // state
        0x02, // 2 vars
        0x09, b't', b'h', b'r', b'e', b's', b'h', b'o', b'l', b'd', 0x02, 0xd0,
        0x0f, // Value::Int(1000) → zigzag 2000 varint
        0x05, b'l', b'a', b'b', b'e', b'l', //
        0x04, 0x03, b'h', b'o', b't', // Value::Str("hot")
    ];

    #[test]
    fn v1_fixture_bytes_are_pinned() {
        let mut out = Vec::new();
        encode_vsnapshot(&VSeedSnapshot::V1(sample()), &mut out);
        assert_eq!(out, V1_FIXTURE, "V1 wire encoding drifted");
        let mut r = Reader::new(V1_FIXTURE);
        let got = decode_vsnapshot(&mut r).expect("decode fixture");
        r.finish().expect("fixture fully consumed");
        assert_eq!(got, VSeedSnapshot::V1(sample()));
    }

    #[test]
    fn legacy_untagged_bytes_decode_and_upgrade() {
        let mut legacy = Vec::new();
        encode_snapshot_body(&sample(), &mut legacy);
        assert_ne!(legacy[0], 0, "legacy first byte is a nonzero length");
        let mut r = Reader::new(&legacy);
        let got = decode_vsnapshot(&mut r).expect("legacy decode");
        r.finish().expect("fully consumed");
        assert_eq!(got.into_latest(), sample());
    }

    #[test]
    fn from_upgrades_are_lossless_both_ways() {
        let v: VSeedSnapshot = sample().into();
        assert_eq!(v.version(), VSeedSnapshot::CURRENT_VERSION);
        let back: SeedSnapshot = v.into();
        assert_eq!(back, sample());
    }

    #[test]
    fn unknown_snapshot_version_is_a_typed_error() {
        let bytes = [0x00u8, 9, 1, b'M'];
        let mut r = Reader::new(&bytes);
        assert_eq!(
            decode_vsnapshot(&mut r).unwrap_err(),
            WireError::Tag {
                what: "snapshot version",
                tag: 9
            }
        );
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let entries = vec![
            ("hh/m0/s0".to_string(), VSeedSnapshot::V1(sample())),
            ("hh/m0/s1".to_string(), VSeedSnapshot::V1(sample())),
        ];
        let bytes = encode_checkpoint_file(&entries);
        assert!(bytes.starts_with(CHECKPOINT_MAGIC));
        assert_eq!(decode_checkpoint_file(&bytes).expect("decode"), entries);
    }

    #[test]
    fn legacy_checkpoint_file_restores_cleanly() {
        // The pre-versioning layout: count + (key + untagged snapshot),
        // no magic — exactly what a checkpoint written before this
        // revision would hold.
        let mut legacy = Vec::new();
        put_varint(&mut legacy, 1);
        put_str(&mut legacy, "hh/m0/s0");
        encode_snapshot_body(&sample(), &mut legacy);
        let got = decode_checkpoint_file(&legacy).expect("legacy file");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "hh/m0/s0");
        assert_eq!(got[0].1.clone().into_latest(), sample());
    }

    fn sample_doc() -> CheckpointDoc {
        CheckpointDoc {
            programs: vec![
                ("hh".to_string(), "machine HH { }".to_string()),
                ("lw".to_string(), "machine LW { }".to_string()),
            ],
            seeds: vec![
                ("hh/m0/s0".to_string(), VSeedSnapshot::V1(sample())),
                ("hh/m0/s1".to_string(), VSeedSnapshot::V1(sample())),
                ("lw/m0/s0".to_string(), VSeedSnapshot::V1(sample())),
            ],
        }
    }

    #[test]
    fn checkpoint_doc_round_trips() {
        let doc = sample_doc();
        let bytes = encode_checkpoint_doc(&doc);
        assert!(bytes.starts_with(CHECKPOINT_MAGIC_V2));
        let load = decode_checkpoint_any(&bytes).expect("decode");
        assert_eq!(load.doc, doc);
        assert_eq!(load.format, 2);
        assert!(!load.salvaged);
        assert_eq!((load.corrupt_records, load.unknown_records), (0, 0));
    }

    #[test]
    fn truncated_v2_salvages_the_valid_prefix() {
        let doc = sample_doc();
        let bytes = encode_checkpoint_doc(&doc);
        let mut prefix_entries = 0;
        for cut in 0..bytes.len() {
            let load = decode_checkpoint_any(&bytes[..cut.max(8).min(bytes.len())])
                .expect("v2 never errors");
            let got = load.doc.programs.len() + load.doc.seeds.len();
            assert!(got <= 5, "cut {cut} invented records");
            prefix_entries = prefix_entries.max(got);
            if got < 5 {
                assert!(load.salvaged, "cut {cut} lost records without flagging");
            }
        }
        // The loop never reaches the intact file, so the deepest cut
        // (one byte short) salvages all but the final record.
        assert_eq!(prefix_entries, 4);
    }

    #[test]
    fn crc_mismatched_record_is_skipped_not_fatal() {
        let doc = sample_doc();
        let mut bytes = encode_checkpoint_doc(&doc);
        // Flip one bit in the middle of the second record's body (well
        // past the first record: magic 8 + count 1 + frame ≈ 20+ bytes).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let load = decode_checkpoint_any(&bytes).expect("v2 never errors");
        let got = load.doc.programs.len() + load.doc.seeds.len();
        assert!(load.corrupt_records >= 1 || load.salvaged);
        assert!(got < 5, "the damaged record must not survive");
    }

    #[test]
    fn unknown_record_types_are_stepped_over() {
        let doc = sample_doc();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CHECKPOINT_MAGIC_V2);
        put_varint(&mut bytes, 2);
        // A record from the future: type 9, opaque payload.
        let future = [9u8, 0xde, 0xad, 0xbe, 0xef];
        put_varint(&mut bytes, future.len() as u64);
        bytes.extend_from_slice(&crc32(&future).to_le_bytes());
        bytes.extend_from_slice(&future);
        // Followed by a normal seed record that must still decode.
        let mut body = vec![1u8];
        put_str(&mut body, &doc.seeds[0].0);
        encode_vsnapshot(&doc.seeds[0].1, &mut body);
        put_varint(&mut bytes, body.len() as u64);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);

        let load = decode_checkpoint_any(&bytes).expect("decode");
        assert_eq!(load.unknown_records, 1);
        assert_eq!(load.doc.seeds, vec![doc.seeds[0].clone()]);
        assert!(!load.salvaged);
    }

    #[test]
    fn decode_any_reads_older_generations() {
        let entries = vec![("hh/m0/s0".to_string(), VSeedSnapshot::V1(sample()))];
        let v1 = encode_checkpoint_file(&entries);
        let load = decode_checkpoint_any(&v1).expect("v1");
        assert_eq!((load.format, load.doc.seeds.clone()), (1, entries.clone()));
        assert!(load.doc.programs.is_empty());

        let mut legacy = Vec::new();
        put_varint(&mut legacy, 1);
        put_str(&mut legacy, "hh/m0/s0");
        encode_snapshot_body(&sample(), &mut legacy);
        let load = decode_checkpoint_any(&legacy).expect("legacy");
        assert_eq!(load.format, 0);
        assert_eq!(load.doc.seeds[0].0, "hh/m0/s0");
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_panic() {
        assert!(decode_checkpoint_file(&[0xff; 7]).is_err());
        let mut bytes = encode_checkpoint_file(&[("k".into(), VSeedSnapshot::V1(sample()))]);
        bytes.push(0xaa);
        assert_eq!(
            decode_checkpoint_file(&bytes).unwrap_err(),
            WireError::Trailing(1)
        );
    }
}
