//! Socket-level helpers shared by client connections and the server:
//! frame-at-a-time reads that tolerate read timeouts (used as poll
//! ticks) without ever splitting or dropping a partially-read frame,
//! and the cached telemetry instruments of the `net.*` namespace.

use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use farm_telemetry::{Counter, Histogram, Telemetry};

use crate::frame::{decode_body, Envelope};
use crate::wire::MAX_FRAME_LEN;

/// Cached handles for the `net.*` instruments so the per-frame hot
/// path never takes the registry lock.
#[derive(Clone)]
pub(crate) struct NetCounters {
    /// Octets this endpoint moved on the wire, both directions.
    pub bytes: Arc<Counter>,
    pub frames_sent: Arc<Counter>,
    pub frames_received: Arc<Counter>,
    /// Frames discarded by an interceptor (injected loss).
    pub dropped_frames: Arc<Counter>,
    /// Frames rejected at a full send queue.
    pub dead_letters: Arc<Counter>,
    pub connects: Arc<Counter>,
    pub reconnects: Arc<Counter>,
    pub connect_failures: Arc<Counter>,
    pub rpcs: Arc<Counter>,
    pub rpc_timeouts: Arc<Counter>,
    pub decode_errors: Arc<Counter>,
    /// Request → response round-trip, microseconds (real time).
    pub rpc_latency_us: Arc<Histogram>,
}

impl NetCounters {
    pub fn new(telemetry: &Telemetry) -> NetCounters {
        NetCounters {
            bytes: telemetry.counter("net.bytes"),
            frames_sent: telemetry.counter("net.frames_sent"),
            frames_received: telemetry.counter("net.frames_received"),
            dropped_frames: telemetry.counter("net.dropped_frames"),
            dead_letters: telemetry.counter("net.dead_letters"),
            connects: telemetry.counter("net.connects"),
            reconnects: telemetry.counter("net.reconnects"),
            connect_failures: telemetry.counter("net.connect_failures"),
            rpcs: telemetry.counter("net.rpcs"),
            rpc_timeouts: telemetry.counter("net.rpc_timeouts"),
            decode_errors: telemetry.counter("net.decode_errors"),
            rpc_latency_us: telemetry.latency_histogram("net.rpc_latency_us"),
        }
    }
}

/// True for the error kinds a read timeout produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Fills `buf` completely, retrying through read timeouts until `stop`
/// is raised. Unlike `read_exact`, a timeout never loses the bytes
/// already read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(false);
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// One successfully framed read: either a decoded envelope or a frame
/// whose bytes were consumed but whose body failed to decode — the
/// stream stays aligned on the next frame either way.
///
/// This is the blocking client's reader; the server side decodes
/// incrementally via [`crate::buf::FrameDecoder`], whose `Bad` arm also
/// recovers the request correlation id for structured error replies.
/// A client has nothing to answer, so `Bad` only carries the size.
#[derive(Debug)]
pub(crate) enum ReadFrame {
    /// A well-formed envelope plus its wire size.
    Frame(Envelope, usize),
    /// The frame's bytes were fully consumed but the body is invalid
    /// (unknown tag, bad payload, foreign version).
    Bad { nbytes: usize },
}

/// Reads one length-prefixed frame.
///
/// * `Ok(Some(ReadFrame))` — a frame's bytes arrived (decoded or not);
///   the stream is positioned at the next frame.
/// * `Ok(None)` — idle tick (read timeout before a frame started, or
///   `stop` was raised); the caller re-checks its shutdown flag.
/// * `Err(_)` — the peer vanished or the framing itself is broken
///   (overlong or oversized length prefix), so resync is impossible.
pub(crate) fn read_envelope<R: Read>(
    r: &mut R,
    stop: &AtomicBool,
) -> io::Result<Option<ReadFrame>> {
    // Length prefix, byte at a time (varint, ≤ 10 bytes).
    let mut len: u64 = 0;
    let mut header = 0usize;
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if header == 0 {
                    Err(io::ErrorKind::UnexpectedEof.into())
                } else {
                    Err(io::ErrorKind::InvalidData.into())
                }
            }
            Ok(_) => {
                if header >= 10 {
                    return Err(io::ErrorKind::InvalidData.into());
                }
                len |= ((byte[0] & 0x7f) as u64) << (header * 7);
                header += 1;
                if byte[0] & 0x80 == 0 {
                    break;
                }
            }
            Err(e) if is_timeout(&e) => {
                // Before the first length byte this is just an idle
                // tick; mid-prefix we keep waiting for the rest.
                if header == 0 {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    if len > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    if !read_full(r, &mut body, stop)? {
        return Ok(None);
    }
    match decode_body(&body) {
        Ok(env) => Ok(Some(ReadFrame::Frame(env, header + body.len()))),
        Err(_) => Ok(Some(ReadFrame::Bad {
            nbytes: header + body.len(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_envelope, Frame};

    #[test]
    fn reads_back_to_back_frames_from_one_buffer() {
        let mut buf = Vec::new();
        for seq in 0..3 {
            encode_envelope(
                &Envelope::one_way(Frame::Heartbeat {
                    switch: 1,
                    seq,
                    at_ns: 0,
                }),
                &mut buf,
            );
        }
        let stop = AtomicBool::new(false);
        let mut cursor = io::Cursor::new(buf);
        for seq in 0..3 {
            let got = read_envelope(&mut cursor, &stop).unwrap().unwrap();
            let ReadFrame::Frame(env, _) = got else {
                panic!("expected a decoded frame, got {got:?}");
            };
            assert!(matches!(env.frame, Frame::Heartbeat { seq: s, .. } if s == seq));
        }
        assert!(read_envelope(&mut cursor, &stop).is_err(), "EOF after last");
    }

    #[test]
    fn bad_body_keeps_the_stream_aligned() {
        // A framed body with an unknown frame tag, then a valid frame:
        // the reader must surface the bad one (with its byte count) and
        // still decode the next.
        let mut bad_body = vec![crate::wire::PROTOCOL_VERSION, 200, 0];
        crate::wire::put_varint(&mut bad_body, 9);
        let mut buf = Vec::new();
        crate::wire::put_varint(&mut buf, bad_body.len() as u64);
        buf.extend_from_slice(&bad_body);
        let framed_len = buf.len();
        encode_envelope(&Envelope::one_way(Frame::Ack), &mut buf);

        let stop = AtomicBool::new(false);
        let mut cursor = io::Cursor::new(buf);
        match read_envelope(&mut cursor, &stop).unwrap().unwrap() {
            ReadFrame::Bad { nbytes } => assert_eq!(nbytes, framed_len),
            other => panic!("expected Bad, got {other:?}"),
        }
        match read_envelope(&mut cursor, &stop).unwrap().unwrap() {
            ReadFrame::Frame(env, _) => assert_eq!(env.frame, Frame::Ack),
            other => panic!("expected Ack after bad frame, got {other:?}"),
        }
    }

    #[test]
    fn garbage_length_prefix_is_an_error() {
        let buf = vec![0xff; 16];
        let stop = AtomicBool::new(false);
        assert!(read_envelope(&mut io::Cursor::new(buf), &stop).is_err());
    }

    #[test]
    fn stop_flag_aborts_cleanly() {
        let buf: Vec<u8> = Vec::new();
        let stop = AtomicBool::new(true);
        let got = read_envelope(&mut io::Cursor::new(buf), &stop).unwrap();
        assert!(got.is_none());
    }
}
