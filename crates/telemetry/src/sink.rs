//! Pluggable event sinks.
//!
//! A sink receives every [`Event`] emitted anywhere in the stack. Sinks
//! must be cheap and non-blocking: they run inline on simulation hot
//! paths. Three implementations ship here — [`NullSink`] (drop
//! everything), [`RingBufferSink`] (keep the last N in memory) and
//! [`JsonLinesSink`] (serialize to any `Write`).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

use crate::event::Event;

/// Receives emitted events. Implementations must tolerate concurrent
/// calls (`Send + Sync`) and should never panic.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);
}

/// Discards every event. Useful as an explicit "no observer" marker.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory, dropping the
/// oldest on overflow and counting how many were lost.
#[derive(Debug)]
pub struct RingBufferSink {
    inner: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> RingBufferSink {
        assert!(capacity > 0, "ring buffer sink needs capacity >= 1");
        RingBufferSink {
            inner: Mutex::new(Ring::default()),
            capacity,
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("ring sink poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events lost to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring sink poisoned").dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring sink poisoned").events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained events (the overflow count is kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("ring sink poisoned")
            .events
            .clear();
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut ring = self.inner.lock().expect("ring sink poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// Serializes each event as one JSON object per line to a `Write`.
///
/// The serialization is hand-rolled (this crate has zero dependencies):
/// every event becomes `{"event":"<kind>",...fields}` with the fields in
/// declaration order. Write errors are swallowed — telemetry must never
/// take the simulation down.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wraps any writer (a `File`, `Vec<u8>`, `io::stdout()`, ...).
    pub fn new(out: Box<dyn Write + Send>) -> JsonLinesSink {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("json sink poisoned").flush();
    }
}

impl EventSink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let line = to_json_line(event);
        let mut out = self.out.lock().expect("json sink poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }
}

/// Escapes a string for embedding in a JSON value.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one event as a single-line JSON object.
pub fn to_json_line(event: &Event) -> String {
    let mut f = JsonObj::new(event.kind());
    match event {
        Event::SeedDeployed {
            at_ns,
            switch,
            seed,
            task,
            poll_interval_ns,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .str("task", task)
                .num("poll_interval_ns", *poll_interval_ns);
        }
        Event::SeedUndeployed {
            at_ns,
            switch,
            seed,
            task,
            reason,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .str("task", task)
                .str("reason", &format!("{reason:?}"));
        }
        Event::SeedMigrated {
            at_ns,
            from_switch,
            to_switch,
            task,
            state_bytes,
        } => {
            f.num("at_ns", *at_ns)
                .num("from_switch", *from_switch as u64)
                .num("to_switch", *to_switch as u64)
                .str("task", task)
                .num("state_bytes", *state_bytes);
        }
        Event::SeedErrored {
            at_ns,
            switch,
            seed,
            message,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .str("message", message);
        }
        Event::PollIssued {
            at_ns,
            switch,
            seed,
            subjects,
            latency_ns,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .num("subjects", *subjects)
                .num("latency_ns", *latency_ns);
        }
        Event::PollAggregated {
            at_ns,
            switch,
            group,
            saved,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("group", *group)
                .num("saved", *saved);
        }
        Event::PcieSaturation {
            switch,
            utilization,
            saturated,
        } => {
            f.num("switch", *switch as u64)
                .float("utilization", *utilization)
                .bool("saturated", *saturated);
        }
        Event::ChannelDelivery {
            at_ns,
            switch,
            seed,
            bytes,
            latency_ns,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .num("bytes", *bytes)
                .num("latency_ns", *latency_ns);
        }
        Event::SolverPhase {
            phase,
            elapsed_ns,
            items,
        } => {
            f.str("phase", phase)
                .num("elapsed_ns", *elapsed_ns)
                .num("items", *items);
        }
        Event::ReplanCompleted {
            at_ns,
            outcome,
            actions,
            dropped_tasks,
        } => {
            f.num("at_ns", *at_ns)
                .str("outcome", &format!("{outcome:?}"))
                .num("actions", *actions)
                .num("dropped_tasks", *dropped_tasks);
        }
        Event::HarvesterReport {
            at_ns,
            task,
            from_switch,
            bytes,
            latency_ns,
        } => {
            f.num("at_ns", *at_ns)
                .str("task", task)
                .num("from_switch", *from_switch as u64)
                .num("bytes", *bytes)
                .num("latency_ns", *latency_ns);
        }
        Event::SwitchCrashed { at_ns, switch } => {
            f.num("at_ns", *at_ns).num("switch", *switch as u64);
        }
        Event::SwitchRestarted { at_ns, switch } => {
            f.num("at_ns", *at_ns).num("switch", *switch as u64);
        }
        Event::LinkDown { at_ns, a, b } => {
            f.num("at_ns", *at_ns)
                .num("a", *a as u64)
                .num("b", *b as u64);
        }
        Event::LinkUp { at_ns, a, b } => {
            f.num("at_ns", *at_ns)
                .num("a", *a as u64)
                .num("b", *b as u64);
        }
        Event::SwitchDeclaredFailed {
            at_ns,
            switch,
            missed,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("missed", *missed);
        }
        Event::SeedOrphaned {
            at_ns,
            switch,
            seed,
            task,
            has_snapshot,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .str("task", task)
                .bool("has_snapshot", *has_snapshot);
        }
        Event::SeedShed {
            at_ns,
            switch,
            seed,
            task,
            resource,
            demand,
            budget,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .str("task", task)
                .str("resource", &format!("{resource:?}"))
                .float("demand", *demand)
                .float("budget", *budget);
        }
        Event::SeedRecovered {
            at_ns,
            switch,
            seed,
            task,
            cold_start,
            mttr_ns,
            attempts,
        } => {
            f.num("at_ns", *at_ns)
                .num("switch", *switch as u64)
                .num("seed", *seed)
                .str("task", task)
                .bool("cold_start", *cold_start)
                .num("mttr_ns", *mttr_ns)
                .num("attempts", *attempts);
        }
        Event::RecoveryAbandoned {
            at_ns,
            task,
            seed,
            attempts,
        } => {
            f.num("at_ns", *at_ns)
                .str("task", task)
                .num("seed", *seed)
                .num("attempts", *attempts);
        }
        Event::DeliveryRetried {
            at_ns,
            from_switch,
            task,
            attempt,
        } => {
            f.num("at_ns", *at_ns)
                .num("from_switch", *from_switch as u64)
                .str("task", task)
                .num("attempt", *attempt);
        }
        Event::DeliveryDeadLettered {
            at_ns,
            from_switch,
            task,
            attempts,
        } => {
            f.num("at_ns", *at_ns)
                .num("from_switch", *from_switch as u64)
                .str("task", task)
                .num("attempts", *attempts);
        }
        Event::ReplanSummary {
            at_ns,
            elapsed_us,
            deploys,
            migrations,
            reallocs,
            undeploys,
        } => {
            f.num("at_ns", *at_ns)
                .num("elapsed_us", *elapsed_us)
                .num("deploys", *deploys)
                .num("migrations", *migrations)
                .num("reallocs", *reallocs)
                .num("undeploys", *undeploys);
        }
        Event::ControlOp {
            at_ns,
            op,
            outcome,
            elapsed_us,
        } => {
            f.num("at_ns", *at_ns)
                .str("op", op)
                .str("outcome", outcome)
                .num("elapsed_us", *elapsed_us);
        }
    }
    f.finish()
}

/// Tiny JSON-object builder for [`to_json_line`].
struct JsonObj {
    buf: String,
}

impl JsonObj {
    fn new(kind: &str) -> JsonObj {
        JsonObj {
            buf: format!("{{\"event\":\"{}\"", escape(kind)),
        }
    }

    fn num(&mut self, key: &str, v: u64) -> &mut JsonObj {
        self.buf.push_str(&format!(",\"{key}\":{v}"));
        self
    }

    fn float(&mut self, key: &str, v: f64) -> &mut JsonObj {
        if v.is_finite() {
            self.buf.push_str(&format!(",\"{key}\":{v}"));
        } else {
            self.buf.push_str(&format!(",\"{key}\":null"));
        }
        self
    }

    fn bool(&mut self, key: &str, v: bool) -> &mut JsonObj {
        self.buf.push_str(&format!(",\"{key}\":{v}"));
        self
    }

    fn str(&mut self, key: &str, v: &str) -> &mut JsonObj {
        self.buf.push_str(&format!(",\"{key}\":\"{}\"", escape(v)));
        self
    }

    fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deploy(seed: u64) -> Event {
        Event::SeedDeployed {
            at_ns: 1_000,
            switch: 3,
            seed,
            task: "hh".to_string(),
            poll_interval_ns: 50_000,
        }
    }

    #[test]
    fn ring_buffer_retains_and_overflows() {
        let sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(&deploy(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let seeds: Vec<u64> = sink
            .events()
            .iter()
            .map(|e| match e {
                Event::SeedDeployed { seed, .. } => *seed,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seeds, [2, 3, 4], "oldest events are dropped first");
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2, "clear keeps the overflow count");
    }

    #[test]
    fn json_lines_are_one_object_per_event() {
        let buf: Vec<u8> = Vec::new();
        let line = to_json_line(&deploy(7));
        assert_eq!(
            line,
            "{\"event\":\"seed-deployed\",\"at_ns\":1000,\"switch\":3,\
             \"seed\":7,\"task\":\"hh\",\"poll_interval_ns\":50000}"
        );
        drop(buf);
    }

    #[test]
    fn json_escapes_special_characters() {
        let e = Event::SeedErrored {
            at_ns: 0,
            switch: 0,
            seed: 0,
            message: "bad \"value\"\nline2".to_string(),
        };
        let line = to_json_line(&e);
        assert!(line.contains("bad \\\"value\\\"\\nline2"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn null_sink_ignores_everything() {
        NullSink.record(&deploy(0));
    }
}
