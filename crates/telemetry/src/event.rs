//! The typed event stream.
//!
//! Every observable state change in the FARM stack maps to one [`Event`]
//! variant. Events carry plain scalars (switch ids as `u32`, times and
//! latencies as nanoseconds in `u64`) so this crate sits below every
//! runtime crate without depending on any of them.

use std::fmt;

/// Why a seed left a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum UndeployReason {
    /// The owning task was removed.
    TaskRemoved,
    /// The seed is leaving as the first half of a migration.
    Migration,
    /// The replanner dropped the placement.
    Replanned,
    /// The soil shed the seed under resource pressure.
    Shed,
    /// The hosting switch was declared failed; the seed was fenced off.
    Fenced,
}

/// Which budget forced a soil to shed seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PressureResource {
    /// PCIe poll bandwidth between ASIC and switch CPU.
    PciePoll,
    /// Switch CPU.
    Cpu,
    /// TCAM entries.
    Tcam,
    /// Switch memory.
    Ram,
}

/// Outcome of one replanning round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplanOutcome {
    /// Every task kept or obtained a feasible placement.
    Full,
    /// Some tasks had to be dropped.
    Partial,
    /// The solver failed outright.
    Failed,
}

/// One observable state change somewhere in the FARM stack.
///
/// All times are absolute simulation nanoseconds (`at_ns`), all
/// durations are nanoseconds, all byte quantities are bytes. Switch ids
/// are the raw `u32` behind `farm_netsim::types::SwitchId`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A seed instance started executing on a switch.
    SeedDeployed {
        at_ns: u64,
        switch: u32,
        seed: u64,
        task: String,
        /// PCIe poll budget granted, polls per second.
        poll_interval_ns: u64,
    },
    /// A seed instance stopped executing on a switch.
    SeedUndeployed {
        at_ns: u64,
        switch: u32,
        seed: u64,
        task: String,
        reason: UndeployReason,
    },
    /// A seed moved between switches (emitted once per move, at commit).
    SeedMigrated {
        at_ns: u64,
        from_switch: u32,
        to_switch: u32,
        task: String,
        /// Serialized state carried across, bytes.
        state_bytes: u64,
    },
    /// A seed's interpreter hit a runtime error.
    SeedErrored {
        at_ns: u64,
        switch: u32,
        seed: u64,
        message: String,
    },
    /// A seed issued an ASIC poll over PCIe.
    PollIssued {
        at_ns: u64,
        switch: u32,
        seed: u64,
        /// Port-stat entries fetched by the poll.
        subjects: u64,
        /// Queueing + transfer time on the PCIe bus.
        latency_ns: u64,
    },
    /// Poll aggregation served a group of seeds from one ASIC read.
    PollAggregated {
        at_ns: u64,
        switch: u32,
        /// Seeds sharing the single poll.
        group: u64,
        /// ASIC reads avoided (`group - 1`).
        saved: u64,
    },
    /// The PCIe bus of a switch crossed into (or out of) saturation.
    PcieSaturation {
        switch: u32,
        /// Offered load / capacity for the current window.
        utilization: f64,
        /// True when entering saturation, false when recovering.
        saturated: bool,
    },
    /// A message crossed the soil↔seed channel.
    ChannelDelivery {
        at_ns: u64,
        switch: u32,
        seed: u64,
        bytes: u64,
        /// Modeled one-hop IPC latency.
        latency_ns: u64,
    },
    /// One named phase of a placement/LP solve finished.
    SolverPhase {
        /// Phase label, e.g. `"greedy"`, `"lp_redistribution"`.
        phase: &'static str,
        elapsed_ns: u64,
        /// Items handled in the phase (tasks, switches, pivots...).
        items: u64,
    },
    /// A replanning round completed.
    ReplanCompleted {
        at_ns: u64,
        outcome: ReplanOutcome,
        actions: u64,
        dropped_tasks: u64,
    },
    /// A report reached a harvester (detection path closed).
    HarvesterReport {
        at_ns: u64,
        task: String,
        from_switch: u32,
        bytes: u64,
        /// Source-to-harvester latency of the report.
        latency_ns: u64,
    },
    /// A switch crashed; Soil state on it is lost.
    SwitchCrashed { at_ns: u64, switch: u32 },
    /// A crashed switch came back cold.
    SwitchRestarted { at_ns: u64, switch: u32 },
    /// A fabric link went down.
    LinkDown { at_ns: u64, a: u32, b: u32 },
    /// A downed fabric link was restored.
    LinkUp { at_ns: u64, a: u32, b: u32 },
    /// The failure detector declared a switch dead after missing
    /// heartbeats.
    SwitchDeclaredFailed {
        at_ns: u64,
        switch: u32,
        /// Consecutive heartbeats missed before declaring failure.
        missed: u64,
    },
    /// A seed lost its host (crash or fencing) and awaits re-placement.
    SeedOrphaned {
        at_ns: u64,
        switch: u32,
        seed: u64,
        task: String,
        /// True when a checkpointed snapshot exists to restore from.
        has_snapshot: bool,
    },
    /// A soil shed a seed under resource pressure instead of failing the
    /// tick.
    SeedShed {
        at_ns: u64,
        switch: u32,
        seed: u64,
        task: String,
        resource: PressureResource,
        /// Demand on the pressured resource after degradation.
        demand: f64,
        /// Remaining budget on the pressured resource.
        budget: f64,
    },
    /// An orphaned or shed seed was re-placed and resumed.
    SeedRecovered {
        at_ns: u64,
        /// Switch the seed landed on.
        switch: u32,
        seed: u64,
        task: String,
        /// True when the seed restarted without a snapshot.
        cold_start: bool,
        /// Outage duration: orphaned/shed until re-deployed.
        mttr_ns: u64,
        /// Re-placement attempts consumed (1 = first try succeeded).
        attempts: u64,
    },
    /// Recovery for a seed was abandoned after exhausting retries.
    RecoveryAbandoned {
        at_ns: u64,
        task: String,
        seed: u64,
        attempts: u64,
    },
    /// A harvester delivery was dropped by the control channel and will
    /// be retried.
    DeliveryRetried {
        at_ns: u64,
        from_switch: u32,
        task: String,
        /// Retry number (1 = first retry).
        attempt: u64,
    },
    /// A harvester delivery exhausted its retries and was dead-lettered.
    DeliveryDeadLettered {
        at_ns: u64,
        from_switch: u32,
        task: String,
        attempts: u64,
    },
    /// A replanning round's plan, broken down by action type (the
    /// companion [`Event::ReplanCompleted`] carries only the total).
    ReplanSummary {
        at_ns: u64,
        /// Wall-clock planning + commit time, microseconds.
        elapsed_us: u64,
        deploys: u64,
        migrations: u64,
        reallocs: u64,
        undeploys: u64,
    },
    /// A control-plane operation was served (the farmd audit trail).
    ControlOp {
        at_ns: u64,
        /// Operation tag, e.g. `"submit"`, `"drain"`, `"shutdown"`.
        op: String,
        /// `"ok"`, `"rejected"`, or `"error"`.
        outcome: String,
        /// Wall-clock service time, microseconds.
        elapsed_us: u64,
    },
}

impl Event {
    /// Stable kebab-case tag for the variant, used as the JSON `event`
    /// field and for quick filtering in sinks.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SeedDeployed { .. } => "seed-deployed",
            Event::SeedUndeployed { .. } => "seed-undeployed",
            Event::SeedMigrated { .. } => "seed-migrated",
            Event::SeedErrored { .. } => "seed-errored",
            Event::PollIssued { .. } => "poll-issued",
            Event::PollAggregated { .. } => "poll-aggregated",
            Event::PcieSaturation { .. } => "pcie-saturation",
            Event::ChannelDelivery { .. } => "channel-delivery",
            Event::SolverPhase { .. } => "solver-phase",
            Event::ReplanCompleted { .. } => "replan-completed",
            Event::HarvesterReport { .. } => "harvester-report",
            Event::SwitchCrashed { .. } => "switch-crashed",
            Event::SwitchRestarted { .. } => "switch-restarted",
            Event::LinkDown { .. } => "link-down",
            Event::LinkUp { .. } => "link-up",
            Event::SwitchDeclaredFailed { .. } => "switch-declared-failed",
            Event::SeedOrphaned { .. } => "seed-orphaned",
            Event::SeedShed { .. } => "seed-shed",
            Event::SeedRecovered { .. } => "seed-recovered",
            Event::RecoveryAbandoned { .. } => "recovery-abandoned",
            Event::DeliveryRetried { .. } => "delivery-retried",
            Event::DeliveryDeadLettered { .. } => "delivery-dead-lettered",
            Event::ReplanSummary { .. } => "replan-summary",
            Event::ControlOp { .. } => "control-op",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_kebab_case() {
        let events = [
            Event::SeedDeployed {
                at_ns: 0,
                switch: 0,
                seed: 0,
                task: String::new(),
                poll_interval_ns: 0,
            },
            Event::PollAggregated {
                at_ns: 0,
                switch: 0,
                group: 2,
                saved: 1,
            },
            Event::SolverPhase {
                phase: "greedy",
                elapsed_ns: 1,
                items: 1,
            },
            Event::SwitchCrashed {
                at_ns: 0,
                switch: 1,
            },
            Event::SeedOrphaned {
                at_ns: 0,
                switch: 1,
                seed: 2,
                task: String::new(),
                has_snapshot: true,
            },
            Event::SeedRecovered {
                at_ns: 0,
                switch: 2,
                seed: 2,
                task: String::new(),
                cold_start: false,
                mttr_ns: 7,
                attempts: 1,
            },
            Event::DeliveryDeadLettered {
                at_ns: 0,
                from_switch: 1,
                task: String::new(),
                attempts: 3,
            },
        ];
        let kinds: Vec<_> = events.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            [
                "seed-deployed",
                "poll-aggregated",
                "solver-phase",
                "switch-crashed",
                "seed-orphaned",
                "seed-recovered",
                "delivery-dead-lettered",
            ]
        );
        for k in kinds {
            assert!(k.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
