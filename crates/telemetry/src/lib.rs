//! # farm-telemetry — observability for the FARM stack
//!
//! The paper's entire evaluation is about observing FARM itself:
//! detection latency (Fig. 4), switch CPU load (Fig. 6), poll
//! aggregation savings (Fig. 7), IPC latency (Fig. 10), migration
//! overhead (Tab. 5). This crate is the shared substrate those numbers
//! flow through:
//!
//! * a **typed event stream** — [`Event`] — with pluggable
//!   [`EventSink`]s ([`NullSink`], [`RingBufferSink`], [`JsonLinesSink`]);
//! * an **instrument registry** — [`Registry`] — of named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s with p50/p99 accessors;
//! * a [`Telemetry`] handle bundling the two, cloned cheaply (`Arc`
//!   inside) into every layer of the stack.
//!
//! The crate has **zero dependencies** so it can sit below `farm-netsim`
//! at the bottom of the workspace; events therefore carry plain scalars
//! (switch ids as `u32`, times as nanoseconds).
//!
//! ```
//! use farm_telemetry::{Event, RingBufferSink, Telemetry};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingBufferSink::new(16));
//! let telemetry = Telemetry::new();
//! telemetry.add_sink(ring.clone());
//!
//! telemetry.counter("farm.replans").inc();
//! telemetry.emit_with(|| Event::SolverPhase {
//!     phase: "greedy",
//!     elapsed_ns: 1_200,
//!     items: 4,
//! });
//!
//! assert_eq!(telemetry.snapshot().counter("farm.replans"), 1);
//! assert_eq!(ring.events().len(), 1);
//! ```

pub mod event;
pub mod registry;
pub mod sink;

pub use event::{Event, PressureResource, ReplanOutcome, UndeployReason};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, LATENCY_US_BOUNDS,
};
pub use sink::{EventSink, JsonLinesSink, NullSink, RingBufferSink};

use std::sync::{Arc, RwLock};

/// Shared handle over one [`Registry`] plus a set of [`EventSink`]s.
///
/// Cloning is cheap (two `Arc`s); every clone observes the same
/// instruments and sinks. Instrument updates are lock-free; event
/// emission takes a read lock on the sink list only when at least one
/// sink is installed — use [`Telemetry::emit_with`] so the event itself
/// is only constructed when somebody is listening.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Arc<Registry>,
    sinks: Arc<RwLock<Vec<Arc<dyn EventSink>>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sink_count())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Creates a handle with an empty registry and no sinks.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// The shared instrument registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Shorthand for [`Registry::counter`].
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Shorthand for [`Registry::gauge`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Shorthand for [`Registry::histogram`].
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.registry.histogram(name, bounds)
    }

    /// Shorthand for [`Registry::latency_histogram`].
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.latency_histogram(name)
    }

    /// Shorthand for [`Registry::snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Installs a sink; every subsequently emitted event reaches it.
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        self.sinks.write().expect("sink list poisoned").push(sink);
    }

    /// Number of installed sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.read().expect("sink list poisoned").len()
    }

    /// True when at least one sink is installed. Hot paths can use this
    /// to skip expensive event construction, but prefer
    /// [`Telemetry::emit_with`] which does so automatically.
    pub fn has_sinks(&self) -> bool {
        self.sink_count() > 0
    }

    /// Delivers an already-built event to every sink.
    pub fn emit(&self, event: &Event) {
        for sink in self.sinks.read().expect("sink list poisoned").iter() {
            sink.record(event);
        }
    }

    /// Builds the event lazily and delivers it — the closure only runs
    /// when at least one sink is installed, keeping zero-observer hot
    /// paths free of allocation.
    pub fn emit_with<F: FnOnce() -> Event>(&self, make: F) {
        let sinks = self.sinks.read().expect("sink list poisoned");
        if sinks.is_empty() {
            return;
        }
        let event = make();
        for sink in sinks.iter() {
            sink.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn clones_share_registry_and_sinks() {
        let t1 = Telemetry::new();
        let t2 = t1.clone();
        t1.counter("a").inc();
        t2.counter("a").add(2);
        assert_eq!(t1.snapshot().counter("a"), 3);

        let ring = Arc::new(RingBufferSink::new(8));
        t2.add_sink(ring.clone());
        t1.emit_with(|| Event::SolverPhase {
            phase: "greedy",
            elapsed_ns: 1,
            items: 1,
        });
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn emit_with_skips_construction_without_sinks() {
        let t = Telemetry::new();
        let built = AtomicU64::new(0);
        t.emit_with(|| {
            built.fetch_add(1, Ordering::Relaxed);
            Event::SolverPhase {
                phase: "never",
                elapsed_ns: 0,
                items: 0,
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 0);
        t.add_sink(Arc::new(NullSink));
        t.emit_with(|| {
            built.fetch_add(1, Ordering::Relaxed);
            Event::SolverPhase {
                phase: "now",
                elapsed_ns: 0,
                items: 0,
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
    }
}
