//! The instrument registry: named counters, gauges and fixed-bucket
//! histograms, all lock-free on the hot path.
//!
//! Instruments are created on first use ([`Registry::counter`] etc.) and
//! live for the registry's lifetime; handles are cheap `Arc` clones that
//! callers cache to skip the name lookup on hot paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `u64` samples (latencies in
/// microseconds, sizes in bytes, ...).
///
/// Buckets are cumulative-style upper bounds: sample `v` lands in the
/// first bucket whose bound is `>= v`; anything above the last bound
/// lands in the implicit overflow bucket. Percentiles interpolate
/// linearly inside the winning bucket, which is exact enough for p50/p99
/// dashboards and never allocates.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow slot.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Default bucket bounds for latency-style histograms, microseconds:
/// 1µs .. ~100s in roughly 2.5× steps.
pub const LATENCY_US_BOUNDS: &[u64] = &[
    1,
    2,
    5,
    10,
    25,
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

impl Histogram {
    /// Creates a histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the winning bucket. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut seen = 0u64;
        for (i, slot) in self.counts.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: cap at the observed max.
                    self.max().max(lo)
                };
                let within = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo as f64 + (hi - lo) as f64 * within);
            }
            seen = next;
        }
        Some(self.max() as f64)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final pair uses
    /// `u64::MAX` as the overflow bound.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }
}

/// Point-in-time copy of one histogram, used in [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: Option<f64>,
    pub p95: Option<f64>,
    pub p99: Option<f64>,
}

/// Point-in-time copy of every instrument in a [`Registry`].
///
/// This is the structured successor to the legacy `Metrics` struct: keys
/// are the dotted instrument names, so new instruments show up without
/// an API change.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// Named instruments, created on first use.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns the gauge named `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Returns the histogram named `name`, creating it with `bounds` if
    /// needed. An existing histogram keeps its original bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(bounds));
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Returns the histogram named `name` with the default latency
    /// bounds ([`LATENCY_US_BOUNDS`], microsecond samples).
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, LATENCY_US_BOUNDS)
    }

    /// Copies every instrument into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count(),
                        sum: v.sum(),
                        max: v.max(),
                        p50: v.p50(),
                        p95: v.p95(),
                        p99: v.p99(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("x").get(), 4);
        assert_eq!(r.snapshot().counter("x"), 4);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.gauge("u").set(0.25);
        r.gauge("u").set(0.75);
        assert_eq!(r.snapshot().gauge("u"), Some(0.75));
    }

    #[test]
    fn histogram_buckets_samples_correctly() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.record(v);
        }
        // Buckets: <=10 gets {1,10}; <=100 gets {11,100}; <=1000 empty;
        // overflow gets {5000}.
        let buckets = h.buckets();
        assert_eq!(buckets[0], (10, 2));
        assert_eq!(buckets[1], (100, 2));
        assert_eq!(buckets[2], (1000, 0));
        assert_eq!(buckets[3], (u64::MAX, 1));
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn histogram_percentiles_interpolate() {
        let h = Histogram::new(&[10, 20, 30, 40, 50, 100]);
        // 100 samples spread uniformly over 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap();
        assert!(
            (40.0..=60.0).contains(&p50),
            "p50 of uniform 1..=100 should be ~50, got {p50}"
        );
        let p99 = h.p99().unwrap();
        assert!(
            (90.0..=100.0).contains(&p99),
            "p99 of uniform 1..=100 should be ~99, got {p99}"
        );
        // Quantiles are monotone.
        assert!(h.quantile(0.1).unwrap() <= p50);
        assert!(p50 <= p99);
    }

    #[test]
    fn histogram_overflow_bucket_caps_at_observed_max() {
        let h = Histogram::new(&[10]);
        h.record(7_000);
        h.record(9_000);
        let p99 = h.p99().unwrap();
        assert!(
            p99 <= 9_000.0,
            "p99 must not exceed observed max, got {p99}"
        );
        assert!(p99 > 10.0);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 5]);
    }

    #[test]
    fn registry_histogram_keeps_first_bounds() {
        let r = Registry::new();
        let h1 = r.histogram("lat", &[10, 100]);
        let h2 = r.histogram("lat", &[999]);
        h1.record(50);
        assert_eq!(h2.count(), 1, "same instrument must be returned");
        assert_eq!(h2.buckets().len(), 3);
    }
}
