//! Checkpoint-file persistence: farmd writes versioned `FARMCKP1`
//! checkpoint files, and `Restore` accepts both those and the
//! pre-versioning legacy layout (no magic, untagged snapshot bodies).

use std::path::PathBuf;
use std::time::Duration;

use farm_ctl::{CtlClient, Farmd, FarmdConfig};
use farm_net::snapshot::{encode_vsnapshot, VSeedSnapshot, CHECKPOINT_MAGIC};
use farm_net::wire::{put_str, put_varint};
use farm_net::{ControlOp, ControlReply};
use farm_soil::SeedSnapshot;

const WATCHER: &str = include_str!("../../../examples/load_watcher.alm");

fn test_config(checkpoint_path: PathBuf) -> FarmdConfig {
    FarmdConfig {
        shutdown_drain: Duration::from_millis(20),
        checkpoint_path: Some(checkpoint_path),
        ..FarmdConfig::default()
    }
}

fn scratch_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("farm-ckp-{}-{name}", std::process::id()))
}

fn submit_watcher(client: &CtlClient) {
    match client
        .op(ControlOp::SubmitProgram {
            name: "load_watcher".into(),
            source: WATCHER.into(),
        })
        .expect("submit rpc")
    {
        ControlReply::Submitted { seeds, .. } => assert_eq!(seeds, 1),
        other => panic!("submit answered {other:?}"),
    }
}

fn describe(client: &CtlClient, key: &str) -> (farm_net::SeedDescriptor, Vec<(String, String)>) {
    match client
        .op(ControlOp::DescribeSeed { key: key.into() })
        .expect("describe rpc")
    {
        ControlReply::Seed { desc, vars } => (desc, vars),
        other => panic!("describe answered {other:?}"),
    }
}

fn only_seed(client: &CtlClient) -> farm_net::SeedDescriptor {
    match client.op(ControlOp::list_all()).expect("list rpc") {
        ControlReply::Seeds { seeds, .. } => {
            assert_eq!(seeds.len(), 1);
            seeds.into_iter().next().unwrap()
        }
        other => panic!("list answered {other:?}"),
    }
}

#[test]
fn checkpoint_writes_versioned_file_and_restore_round_trips() {
    let path = scratch_file("versioned");
    let _ = std::fs::remove_file(&path);
    let farmd = Farmd::start(test_config(path.clone())).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());
    submit_watcher(&client);

    match client.op(ControlOp::Checkpoint).expect("checkpoint rpc") {
        ControlReply::Checkpointed { seeds } => assert_eq!(seeds, 1),
        other => panic!("checkpoint answered {other:?}"),
    }
    let bytes = std::fs::read(&path).expect("checkpoint file written");
    assert!(
        bytes.starts_with(CHECKPOINT_MAGIC),
        "file must lead with the FARMCKP1 magic, got {:?}",
        &bytes[..bytes.len().min(8)]
    );

    match client.op(ControlOp::Restore).expect("restore rpc") {
        ControlReply::Restored { seeds } => assert_eq!(seeds, 1),
        other => panic!("restore answered {other:?}"),
    }
    drop(client);
    farmd.stop();
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint file saved before snapshots grew version tags — plain
/// count + key + untagged `SeedSnapshot` body, no magic — must restore
/// into a live farmd through the `VSeedSnapshot` upgrade path.
#[test]
fn legacy_untagged_checkpoint_file_restores() {
    let path = scratch_file("legacy");
    let _ = std::fs::remove_file(&path);
    let farmd = Farmd::start(test_config(path.clone())).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());
    submit_watcher(&client);

    let seed = only_seed(&client);
    let (desc, _) = describe(&client, &seed.key);

    // Hand-build the pre-versioning layout. The untagged body is the
    // versioned encoding minus its 2-byte (marker + version) prefix.
    let snap = SeedSnapshot {
        machine: desc.machine.clone(),
        state: desc.state.clone(),
        vars: vec![(
            "threshold".to_string(),
            farm_almanac::value::Value::Int(4242),
        )],
    };
    let mut versioned = Vec::new();
    encode_vsnapshot(&VSeedSnapshot::V1(snap), &mut versioned);
    let mut legacy = Vec::new();
    put_varint(&mut legacy, 1);
    put_str(&mut legacy, &seed.key);
    legacy.extend_from_slice(&versioned[2..]);
    std::fs::write(&path, &legacy).expect("write legacy checkpoint");

    match client.op(ControlOp::Restore).expect("restore rpc") {
        ControlReply::Restored { seeds } => assert_eq!(seeds, 1),
        other => panic!("restore answered {other:?}"),
    }
    let (_, vars) = describe(&client, &seed.key);
    assert!(
        vars.iter().any(|(n, v)| n == "threshold" && v == "4242"),
        "legacy snapshot var must land in the live seed, got {vars:?}"
    );
    drop(client);
    farmd.stop();
    let _ = std::fs::remove_file(&path);
}
