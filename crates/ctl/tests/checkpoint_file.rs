//! Checkpoint-file persistence: farmd writes self-verifying `FARMCKP2`
//! checkpoint files (CRC-framed records, salvageable after torn
//! writes), and `Restore` accepts those plus both older generations —
//! versioned `FARMCKP1` and the pre-versioning legacy layout (no magic,
//! untagged snapshot bodies).

use std::path::PathBuf;
use std::time::Duration;

use farm_ctl::{CtlClient, Farmd, FarmdConfig};
use farm_net::snapshot::{encode_vsnapshot, VSeedSnapshot, CHECKPOINT_MAGIC_V2};
use farm_net::wire::{put_str, put_varint};
use farm_net::{decode_checkpoint_any, ControlOp, ControlReply};
use farm_soil::SeedSnapshot;

const WATCHER: &str = include_str!("../../../examples/load_watcher.alm");

fn test_config(checkpoint_path: PathBuf) -> FarmdConfig {
    FarmdConfig {
        shutdown_drain: Duration::from_millis(20),
        checkpoint_path: Some(checkpoint_path),
        ..FarmdConfig::default()
    }
}

fn scratch_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("farm-ckp-{}-{name}", std::process::id()))
}

fn submit_watcher(client: &CtlClient) {
    match client
        .op(ControlOp::SubmitProgram {
            name: "load_watcher".into(),
            source: WATCHER.into(),
        })
        .expect("submit rpc")
    {
        ControlReply::Submitted { seeds, .. } => assert_eq!(seeds, 1),
        other => panic!("submit answered {other:?}"),
    }
}

fn describe(client: &CtlClient, key: &str) -> (farm_net::SeedDescriptor, Vec<(String, String)>) {
    match client
        .op(ControlOp::DescribeSeed { key: key.into() })
        .expect("describe rpc")
    {
        ControlReply::Seed { desc, vars } => (desc, vars),
        other => panic!("describe answered {other:?}"),
    }
}

fn only_seed(client: &CtlClient) -> farm_net::SeedDescriptor {
    match client.op(ControlOp::list_all()).expect("list rpc") {
        ControlReply::Seeds { seeds, .. } => {
            assert_eq!(seeds.len(), 1);
            seeds.into_iter().next().unwrap()
        }
        other => panic!("list answered {other:?}"),
    }
}

#[test]
fn checkpoint_writes_versioned_file_and_restore_round_trips() {
    let path = scratch_file("versioned");
    let _ = std::fs::remove_file(&path);
    let farmd = Farmd::start(test_config(path.clone())).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());
    submit_watcher(&client);

    match client.op(ControlOp::Checkpoint).expect("checkpoint rpc") {
        ControlReply::Checkpointed {
            seeds,
            persist_error,
        } => {
            assert_eq!(seeds, 1);
            assert_eq!(persist_error, None, "durable write must succeed");
        }
        other => panic!("checkpoint answered {other:?}"),
    }
    let bytes = std::fs::read(&path).expect("checkpoint file written");
    assert!(
        bytes.starts_with(CHECKPOINT_MAGIC_V2),
        "file must lead with the FARMCKP2 magic, got {:?}",
        &bytes[..bytes.len().min(8)]
    );
    // The file carries the program catalog alongside the seed, so a
    // cold restart can recompile and replant everything.
    let load = decode_checkpoint_any(&bytes).expect("decode our own file");
    assert!(!load.salvaged, "a completed write has no torn tail");
    assert_eq!(load.doc.seeds.len(), 1);
    assert_eq!(load.doc.programs.len(), 1);
    assert_eq!(load.doc.programs[0].0, "load_watcher");

    match client.op(ControlOp::Restore).expect("restore rpc") {
        ControlReply::Restored { seeds, skipped } => {
            assert_eq!(seeds, 1);
            assert_eq!(skipped, 0);
        }
        other => panic!("restore answered {other:?}"),
    }
    drop(client);
    farmd.stop();
    let _ = std::fs::remove_file(&path);
}

/// Hand-truncate a `FARMCKP2` file mid-record: `Restore` must salvage
/// the intact prefix instead of rejecting the whole file.
#[test]
fn truncated_v2_checkpoint_salvages_intact_prefix() {
    let path = scratch_file("torn");
    let _ = std::fs::remove_file(&path);
    let farmd = Farmd::start(test_config(path.clone())).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());
    submit_watcher(&client);

    match client.op(ControlOp::Checkpoint).expect("checkpoint rpc") {
        ControlReply::Checkpointed { seeds: 1, .. } => {}
        other => panic!("checkpoint answered {other:?}"),
    }
    let bytes = std::fs::read(&path).expect("checkpoint file written");
    // Tear off the tail of the final record (the seed snapshot); the
    // program record before it stays CRC-valid.
    let torn = &bytes[..bytes.len() - 3];
    let load = decode_checkpoint_any(torn).expect("torn v2 still decodes");
    assert!(load.salvaged, "a torn tail must raise the salvage flag");
    assert_eq!(load.doc.programs.len(), 1, "intact program record kept");
    assert!(load.doc.seeds.is_empty(), "damaged seed record dropped");
    std::fs::write(&path, torn).expect("write torn checkpoint");

    // Restore over the wire: the salvaged catalog recompiles the
    // program, and with its seed record gone the live seed simply
    // keeps its in-memory checkpoint state — no error, no wedge.
    match client.op(ControlOp::Restore).expect("restore rpc") {
        ControlReply::Restored { seeds, skipped } => {
            assert_eq!(seeds, 1, "live seed restored from in-memory state");
            assert_eq!(skipped, 0);
        }
        other => panic!("restore answered {other:?}"),
    }
    drop(client);
    farmd.stop();
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint file saved before snapshots grew version tags — plain
/// count + key + untagged `SeedSnapshot` body, no magic — must restore
/// into a live farmd through the `VSeedSnapshot` upgrade path.
#[test]
fn legacy_untagged_checkpoint_file_restores() {
    let path = scratch_file("legacy");
    let _ = std::fs::remove_file(&path);
    let farmd = Farmd::start(test_config(path.clone())).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());
    submit_watcher(&client);

    let seed = only_seed(&client);
    let (desc, _) = describe(&client, &seed.key);

    // Hand-build the pre-versioning layout. The untagged body is the
    // versioned encoding minus its 2-byte (marker + version) prefix.
    let snap = SeedSnapshot {
        machine: desc.machine.clone(),
        state: desc.state.clone(),
        vars: vec![(
            "threshold".to_string(),
            farm_almanac::value::Value::Int(4242),
        )],
    };
    let mut versioned = Vec::new();
    encode_vsnapshot(&VSeedSnapshot::V1(snap), &mut versioned);
    let mut legacy = Vec::new();
    put_varint(&mut legacy, 1);
    put_str(&mut legacy, &seed.key);
    legacy.extend_from_slice(&versioned[2..]);
    std::fs::write(&path, &legacy).expect("write legacy checkpoint");

    match client.op(ControlOp::Restore).expect("restore rpc") {
        ControlReply::Restored { seeds, skipped } => {
            assert_eq!(seeds, 1);
            assert_eq!(skipped, 0);
        }
        other => panic!("restore answered {other:?}"),
    }
    let (_, vars) = describe(&client, &seed.key);
    assert!(
        vars.iter().any(|(n, v)| n == "threshold" && v == "4242"),
        "legacy snapshot var must land in the live seed, got {vars:?}"
    );
    drop(client);
    farmd.stop();
    let _ = std::fs::remove_file(&path);
}
