//! farmctl — operator CLI for a running farmd.

use std::net::SocketAddr;
use std::process::ExitCode;

use farm_ctl::json::{array, Obj};
use farm_ctl::CtlClient;
use farm_net::{ControlOp, ControlReply, SeedDescriptor};

const USAGE: &str = "\
farmctl - FARM control-plane client

USAGE:
    farmctl [--addr <addr:port>] [--json] <command> [args]

COMMANDS:
    submit <file.alm> [--name <task>]   Compile and deploy a program
    list                                List deployed seeds
    describe <task/m<i>/s<j>>           Show one seed with its variables
    stats                               Farm summary and counters
    metrics                             Full metrics dump
    drain <switch-id>                   Cordon a switch and evacuate it
    uncordon <switch-id>                Return a switch to service
    replan                              Force a placement replan
    checkpoint                          Checkpoint all live seeds
    restore                             Restore seeds from checkpoints
    shutdown                            Gracefully stop the daemon

OPTIONS:
    --addr <addr>   farmd address (default 127.0.0.1:7373)
    --json          Machine-readable output
    -h, --help      Show this help
";

fn main() -> ExitCode {
    let mut addr: SocketAddr = "127.0.0.1:7373".parse().expect("default addr");
    let mut json = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next().map(|a| a.parse()) {
                Some(Ok(a)) => addr = a,
                _ => return fail("bad or missing --addr value"),
            },
            "--json" => json = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => rest.push(arg),
        }
    }
    let Some(command) = rest.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let op = match build_op(&command, &rest[1..]) {
        Ok(op) => op,
        Err(msg) => return fail(&msg),
    };
    let client = CtlClient::connect(addr);
    match client.op(op) {
        Ok(reply) => render(&reply, json),
        Err(e) => fail(&format!("{addr}: {e}")),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("farmctl: {msg}");
    ExitCode::FAILURE
}

fn build_op(command: &str, args: &[String]) -> Result<ControlOp, String> {
    let switch_arg = || -> Result<u32, String> {
        args.first()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| format!("`{command}` needs a numeric switch id"))
    };
    match command {
        "submit" => {
            let path = args
                .first()
                .ok_or("`submit` needs a program file".to_string())?;
            let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let name = match args.iter().position(|a| a == "--name") {
                Some(i) => args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--name needs a value".to_string())?,
                None => std::path::Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default(),
            };
            Ok(ControlOp::SubmitProgram { name, source })
        }
        "list" => Ok(ControlOp::ListSeeds),
        "describe" => Ok(ControlOp::DescribeSeed {
            key: args
                .first()
                .cloned()
                .ok_or("`describe` needs a seed key".to_string())?,
        }),
        "stats" => Ok(ControlOp::Stats),
        "metrics" => Ok(ControlOp::MetricsDump),
        "drain" => Ok(ControlOp::Drain {
            switch: switch_arg()?,
        }),
        "uncordon" => Ok(ControlOp::Uncordon {
            switch: switch_arg()?,
        }),
        "replan" => Ok(ControlOp::Replan),
        "checkpoint" => Ok(ControlOp::Checkpoint),
        "restore" => Ok(ControlOp::Restore),
        "shutdown" => Ok(ControlOp::Shutdown),
        other => Err(format!("unknown command `{other}` (see --help)")),
    }
}

fn render(reply: &ControlReply, json: bool) -> ExitCode {
    if json {
        println!("{}", reply_json(reply));
        return match reply {
            ControlReply::Rejected { .. } | ControlReply::CompileFailed { .. } => ExitCode::FAILURE,
            _ => ExitCode::SUCCESS,
        };
    }
    match reply {
        ControlReply::Ok => println!("ok"),
        ControlReply::Submitted {
            task,
            seeds,
            actions,
        } => println!("submitted `{task}`: {seeds} seeds placed in {actions} plan actions"),
        ControlReply::Seeds { seeds } => {
            println!(
                "{:<24} {:<14} {:>6}  {:<12} alloc[vcpu,ram,tcam,pcie]",
                "SEED", "MACHINE", "SWITCH", "STATE"
            );
            for s in seeds {
                println!(
                    "{:<24} {:<14} {:>6}  {:<12} {:?}",
                    s.key, s.machine, s.switch, s.state, s.alloc
                );
            }
            println!("{} seed(s)", seeds.len());
        }
        ControlReply::Seed { desc, vars } => {
            println!(
                "{}: machine={} switch={} state={}",
                desc.key, desc.machine, desc.switch, desc.state
            );
            for (name, value) in vars {
                println!("  {name} = {value}");
            }
        }
        ControlReply::Json { body } => println!("{body}"),
        ControlReply::Drained { switch, evacuated } => {
            println!("switch {switch} drained: {evacuated} seed(s) migrated off")
        }
        ControlReply::Replanned {
            actions,
            dropped_tasks,
        } => println!("replanned: {actions} actions, {dropped_tasks} dropped task(s)"),
        ControlReply::Checkpointed { seeds } => println!("checkpointed {seeds} seed(s)"),
        ControlReply::Restored { seeds } => println!("restored {seeds} seed(s)"),
        ControlReply::Rejected { reason } => {
            eprintln!("farmctl: rejected: {reason}");
            return ExitCode::FAILURE;
        }
        ControlReply::CompileFailed { diagnostics } => {
            eprintln!("farmctl: compile failed:");
            for d in diagnostics {
                let scope = if d.machine.is_empty() {
                    "program".to_string()
                } else {
                    format!("machine {}", d.machine)
                };
                eprintln!("  {scope}: {}:{}:{}: {}", d.phase, d.line, d.col, d.message);
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn seed_json(s: &SeedDescriptor) -> String {
    Obj::new()
        .str("key", &s.key)
        .str("task", &s.task)
        .str("machine", &s.machine)
        .num("switch", u64::from(s.switch))
        .str("state", &s.state)
        .raw("alloc", &array(s.alloc.iter().map(|v| format!("{v}"))))
        .finish()
}

fn reply_json(reply: &ControlReply) -> String {
    match reply {
        ControlReply::Ok => Obj::new().str("status", "ok").finish(),
        ControlReply::Submitted {
            task,
            seeds,
            actions,
        } => Obj::new()
            .str("status", "submitted")
            .str("task", task)
            .num("seeds", *seeds)
            .num("actions", *actions)
            .finish(),
        ControlReply::Seeds { seeds } => Obj::new()
            .raw("seeds", &array(seeds.iter().map(seed_json)))
            .finish(),
        ControlReply::Seed { desc, vars } => {
            let mut v = Obj::new();
            for (name, value) in vars {
                v = v.str(name, value);
            }
            Obj::new()
                .raw("seed", &seed_json(desc))
                .raw("vars", &v.finish())
                .finish()
        }
        // Already JSON from the server; pass through untouched.
        ControlReply::Json { body } => body.clone(),
        ControlReply::Drained { switch, evacuated } => Obj::new()
            .str("status", "drained")
            .num("switch", u64::from(*switch))
            .num("evacuated", *evacuated)
            .finish(),
        ControlReply::Replanned {
            actions,
            dropped_tasks,
        } => Obj::new()
            .str("status", "replanned")
            .num("actions", *actions)
            .num("dropped_tasks", *dropped_tasks)
            .finish(),
        ControlReply::Checkpointed { seeds } => Obj::new()
            .str("status", "checkpointed")
            .num("seeds", *seeds)
            .finish(),
        ControlReply::Restored { seeds } => Obj::new()
            .str("status", "restored")
            .num("seeds", *seeds)
            .finish(),
        ControlReply::Rejected { reason } => Obj::new()
            .str("status", "rejected")
            .str("reason", reason)
            .finish(),
        ControlReply::CompileFailed { diagnostics } => Obj::new()
            .str("status", "compile-failed")
            .raw(
                "diagnostics",
                &array(diagnostics.iter().map(|d| {
                    Obj::new()
                        .str("machine", &d.machine)
                        .str("phase", &d.phase)
                        .num("line", u64::from(d.line))
                        .num("col", u64::from(d.col))
                        .str("message", &d.message)
                        .finish()
                })),
            )
            .finish(),
    }
}
