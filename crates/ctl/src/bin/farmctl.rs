//! farmctl — operator CLI for a running farmd.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use farm_ctl::json::{array, Obj};
use farm_ctl::CtlClient;
use farm_net::{ControlOp, ControlReply, NetError, SeedDescriptor};

const USAGE: &str = "\
farmctl - FARM control-plane client

USAGE:
    farmctl [--addr <addr:port>] [--fed] [--json] <command> [args]

COMMANDS:
    submit <file.alm> [--name <task>]   Compile and deploy a program
    list [--from <i>] [--limit <n>]     List deployed seeds (paged when
                                        --limit is given: farmctl keeps
                                        following next_index until done)
    describe <task/m<i>/s<j>>           Show one seed with its variables
    stats [--from <i>] [--limit <n>]    Farm summary and counters (the
                                        cursor pages the counter map)
    metrics                             Full metrics dump
    drain <switch-id>                   Cordon a switch and evacuate it
    uncordon <switch-id>                Return a switch to service
    replan                              Force a placement replan
    checkpoint                          Checkpoint all live seeds
    restore                             Restore seeds from checkpoints
    remove <task>                       Remove a deployed task
    pods                                List federation pods (fedd)
    migrate <task> <pod>                Move a task to another pod (fedd)
    shutdown                            Gracefully stop the daemon

OPTIONS:
    --addr <addr>   daemon address (default 127.0.0.1:7373, or
                    127.0.0.1:7474 with --fed)
    --fed           Talk to a fedd federation coordinator instead of a
                    single farmd; submit/list/stats/metrics then span
                    every live pod
    --json          Machine-readable output
    --retry <n>     Retry a failed connection up to n times with
                    exponential backoff (for upgrade windows where
                    farmd is briefly down)
    -h, --help      Show this help
";

fn main() -> ExitCode {
    let mut addr: Option<SocketAddr> = None;
    let mut fed = false;
    let mut json = false;
    let mut retries = 0u64;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next().map(|a| a.parse()) {
                Some(Ok(a)) => addr = Some(a),
                _ => return fail("bad or missing --addr value"),
            },
            "--fed" => fed = true,
            "--json" => json = true,
            "--retry" => match args.next().map(|a| a.parse()) {
                Some(Ok(n)) => retries = n,
                _ => return fail("--retry needs a non-negative attempt count"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => rest.push(arg),
        }
    }
    let addr = addr.unwrap_or_else(|| {
        let default = if fed {
            "127.0.0.1:7474"
        } else {
            "127.0.0.1:7373"
        };
        default.parse().expect("default addr")
    });
    let Some(command) = rest.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let op = match build_op(&command, &rest[1..]) {
        Ok(op) => op,
        Err(msg) => return fail(&msg),
    };
    let mut session = Session::connect(addr, retries);
    // A bounded `list` streams: follow next_index until the listing is
    // exhausted, so `--limit` callers still see every seed.
    if let ControlOp::ListSeeds { from_index, limit } = &op {
        if *limit != 0 {
            return list_pages(&mut session, *from_index, *limit, json);
        }
    }
    match session.op(op) {
        Ok(reply) => render(&reply, json),
        Err(e) => fail(&format!("{addr}: {e}")),
    }
}

/// A farmd session with bounded connection retry: ops that die on a
/// connection-shaped error (`ECONNREFUSED` during an upgrade window, a
/// timeout, a dropped session) are retried against a fresh connection
/// with exponential backoff — the same 2× doubling shape farm-net's
/// reconnect supervisor uses. Server-side rejections never retry.
struct Session {
    addr: SocketAddr,
    retries: u64,
    client: CtlClient,
}

impl Session {
    fn connect(addr: SocketAddr, retries: u64) -> Session {
        Session {
            addr,
            retries,
            client: CtlClient::connect(addr),
        }
    }

    fn op(&mut self, op: ControlOp) -> Result<ControlReply, NetError> {
        let mut backoff = Duration::from_millis(50);
        let mut attempt = 0u64;
        loop {
            match self.client.op(op.clone()) {
                Err(e @ (NetError::Closed | NetError::Disconnected | NetError::Timeout))
                    if attempt < self.retries =>
                {
                    attempt += 1;
                    eprintln!(
                        "farmctl: {}: {e}; retrying ({attempt}/{}) in {}ms",
                        self.addr,
                        self.retries,
                        backoff.as_millis()
                    );
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_secs(1));
                    self.client = CtlClient::connect(self.addr);
                }
                out => return out,
            }
        }
    }
}

/// Pages through `ListSeeds` with the given cursor, accumulating every
/// page; the merged result renders exactly like an unpaginated listing.
fn list_pages(session: &mut Session, mut from_index: u64, limit: u64, json: bool) -> ExitCode {
    let mut all: Vec<SeedDescriptor> = Vec::new();
    let mut total;
    loop {
        match session.op(ControlOp::ListSeeds { from_index, limit }) {
            Ok(ControlReply::Seeds {
                seeds,
                next_index,
                total: t,
            }) => {
                all.extend(seeds);
                total = t;
                if next_index == 0 {
                    break;
                }
                from_index = next_index;
            }
            Ok(other) => return render(&other, json),
            Err(e) => return fail(&format!("{}: {e}", session.addr)),
        }
    }
    render(
        &ControlReply::Seeds {
            seeds: all,
            next_index: 0,
            total,
        },
        json,
    )
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("farmctl: {msg}");
    ExitCode::FAILURE
}

fn build_op(command: &str, args: &[String]) -> Result<ControlOp, String> {
    let switch_arg = || -> Result<u32, String> {
        args.first()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| format!("`{command}` needs a numeric switch id"))
    };
    match command {
        "submit" => {
            let path = args
                .first()
                .ok_or("`submit` needs a program file".to_string())?;
            let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let name = match args.iter().position(|a| a == "--name") {
                Some(i) => args
                    .get(i + 1)
                    .cloned()
                    .ok_or("--name needs a value".to_string())?,
                None => std::path::Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default(),
            };
            Ok(ControlOp::SubmitProgram { name, source })
        }
        "list" => {
            let (from_index, limit) = cursor_args(args)?;
            Ok(ControlOp::ListSeeds { from_index, limit })
        }
        "describe" => Ok(ControlOp::DescribeSeed {
            key: args
                .first()
                .cloned()
                .ok_or("`describe` needs a seed key".to_string())?,
        }),
        "stats" => {
            let (from_index, limit) = cursor_args(args)?;
            Ok(ControlOp::Stats { from_index, limit })
        }
        "metrics" => Ok(ControlOp::MetricsDump),
        "drain" => Ok(ControlOp::Drain {
            switch: switch_arg()?,
        }),
        "uncordon" => Ok(ControlOp::Uncordon {
            switch: switch_arg()?,
        }),
        "replan" => Ok(ControlOp::Replan),
        "checkpoint" => Ok(ControlOp::Checkpoint),
        "restore" => Ok(ControlOp::Restore),
        "remove" => Ok(ControlOp::RemoveTask {
            task: args
                .first()
                .cloned()
                .ok_or("`remove` needs a task name".to_string())?,
        }),
        "pods" => Ok(ControlOp::ListPods),
        "migrate" => {
            let task = args
                .first()
                .cloned()
                .ok_or("`migrate` needs a task name".to_string())?;
            let to_pod = args
                .get(1)
                .cloned()
                .ok_or("`migrate` needs a destination pod".to_string())?;
            Ok(ControlOp::MigrateTask { task, to_pod })
        }
        "shutdown" => Ok(ControlOp::Shutdown),
        other => Err(format!("unknown command `{other}` (see --help)")),
    }
}

/// Parses the optional `--from <i>` / `--limit <n>` cursor flags;
/// both default to 0, which means "everything" on the wire.
fn cursor_args(args: &[String]) -> Result<(u64, u64), String> {
    let flag = |name: &str| -> Result<u64, String> {
        match args.iter().position(|a| a == name) {
            Some(i) => args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} needs a non-negative integer")),
            None => Ok(0),
        }
    };
    Ok((flag("--from")?, flag("--limit")?))
}

fn render(reply: &ControlReply, json: bool) -> ExitCode {
    if json {
        println!("{}", reply_json(reply));
        return match reply {
            ControlReply::Rejected { .. } | ControlReply::CompileFailed { .. } => ExitCode::FAILURE,
            _ => ExitCode::SUCCESS,
        };
    }
    match reply {
        ControlReply::Ok => println!("ok"),
        ControlReply::Submitted {
            task,
            seeds,
            actions,
        } => println!("submitted `{task}`: {seeds} seeds placed in {actions} plan actions"),
        ControlReply::Seeds {
            seeds,
            next_index,
            total,
        } => {
            println!(
                "{:<24} {:<14} {:>6}  {:<12} alloc[vcpu,ram,tcam,pcie]",
                "SEED", "MACHINE", "SWITCH", "STATE"
            );
            for s in seeds {
                println!(
                    "{:<24} {:<14} {:>6}  {:<12} {:?}",
                    s.key, s.machine, s.switch, s.state, s.alloc
                );
            }
            // total == 0 marks an unpaginated reply; a paginated one
            // says how much of the listing this window covers.
            if *total == 0 {
                println!("{} seed(s)", seeds.len());
            } else if *next_index == 0 {
                println!("{} of {} seed(s)", seeds.len(), total);
            } else {
                println!(
                    "{} of {} seed(s), next page at --from {}",
                    seeds.len(),
                    total,
                    next_index
                );
            }
        }
        ControlReply::Seed { desc, vars } => {
            println!(
                "{}: machine={} switch={} state={}",
                desc.key, desc.machine, desc.switch, desc.state
            );
            for (name, value) in vars {
                println!("  {name} = {value}");
            }
        }
        ControlReply::Json { body } => println!("{body}"),
        ControlReply::Drained { switch, evacuated } => {
            println!("switch {switch} drained: {evacuated} seed(s) migrated off")
        }
        ControlReply::Replanned {
            actions,
            dropped_tasks,
        } => println!("replanned: {actions} actions, {dropped_tasks} dropped task(s)"),
        ControlReply::Checkpointed {
            seeds,
            persist_error,
        } => {
            println!("checkpointed {seeds} seed(s)");
            // Partial success: the in-memory checkpoint happened even
            // though the file write failed — warn, don't fail.
            if let Some(e) = persist_error {
                eprintln!("farmctl: warning: checkpoint not persisted: {e}");
            }
        }
        ControlReply::Restored { seeds, skipped } => {
            println!("restored {seeds} seed(s)");
            if *skipped != 0 {
                eprintln!(
                    "farmctl: warning: {skipped} checkpoint entr(ies) skipped (bad seed key)"
                );
            }
        }
        ControlReply::Rejected { reason } => {
            eprintln!("farmctl: rejected: {reason}");
            return ExitCode::FAILURE;
        }
        ControlReply::CompileFailed { diagnostics } => {
            eprintln!("farmctl: compile failed:");
            for d in diagnostics {
                let scope = if d.machine.is_empty() {
                    "program".to_string()
                } else {
                    format!("machine {}", d.machine)
                };
                eprintln!("  {scope}: {}:{}:{}: {}", d.phase, d.line, d.col, d.message);
            }
            return ExitCode::FAILURE;
        }
        ControlReply::PodRegistered { base } => {
            println!("registered: global switch base {base}")
        }
        ControlReply::Pods { pods } => {
            println!(
                "{:<12} {:<22} {:>8} {:>8} {:>6} {:<5} {:>6} {:>8}",
                "POD", "ADDR", "SWITCHES", "BASE", "QUOTA", "LIVE", "BEATS", "AGE_MS"
            );
            for p in pods {
                println!(
                    "{:<12} {:<22} {:>8} {:>8} {:>6.2} {:<5} {:>6} {:>8}",
                    p.name, p.addr, p.switches, p.base, p.quota, p.live, p.beats, p.age_ms
                );
            }
            println!("{} pod(s)", pods.len());
        }
        ControlReply::Migrated {
            task,
            from_pod,
            to_pod,
            seeds,
        } => println!("migrated `{task}`: {seeds} seed(s) {from_pod} -> {to_pod}"),
        ControlReply::TaskExport { source, seeds } => {
            println!("exported {} seed snapshot(s)", seeds.len());
            for (key, _) in seeds {
                println!("  {key}");
            }
            println!("--- program ---\n{source}");
        }
    }
    ExitCode::SUCCESS
}

fn seed_json(s: &SeedDescriptor) -> String {
    Obj::new()
        .str("key", &s.key)
        .str("task", &s.task)
        .str("machine", &s.machine)
        .num("switch", u64::from(s.switch))
        .str("state", &s.state)
        .raw("alloc", &array(s.alloc.iter().map(|v| format!("{v}"))))
        .finish()
}

fn reply_json(reply: &ControlReply) -> String {
    match reply {
        ControlReply::Ok => Obj::new().str("status", "ok").finish(),
        ControlReply::Submitted {
            task,
            seeds,
            actions,
        } => Obj::new()
            .str("status", "submitted")
            .str("task", task)
            .num("seeds", *seeds)
            .num("actions", *actions)
            .finish(),
        ControlReply::Seeds {
            seeds,
            next_index,
            total,
        } => {
            let mut obj = Obj::new().raw("seeds", &array(seeds.iter().map(seed_json)));
            if *total != 0 {
                obj = obj.num("next_index", *next_index).num("total", *total);
            }
            obj.finish()
        }
        ControlReply::Seed { desc, vars } => {
            let mut v = Obj::new();
            for (name, value) in vars {
                v = v.str(name, value);
            }
            Obj::new()
                .raw("seed", &seed_json(desc))
                .raw("vars", &v.finish())
                .finish()
        }
        // Already JSON from the server; pass through untouched.
        ControlReply::Json { body } => body.clone(),
        ControlReply::Drained { switch, evacuated } => Obj::new()
            .str("status", "drained")
            .num("switch", u64::from(*switch))
            .num("evacuated", *evacuated)
            .finish(),
        ControlReply::Replanned {
            actions,
            dropped_tasks,
        } => Obj::new()
            .str("status", "replanned")
            .num("actions", *actions)
            .num("dropped_tasks", *dropped_tasks)
            .finish(),
        ControlReply::Checkpointed {
            seeds,
            persist_error,
        } => {
            let mut obj = Obj::new()
                .str("status", "checkpointed")
                .num("seeds", *seeds);
            if let Some(e) = persist_error {
                obj = obj.str("persist_error", e);
            }
            obj.finish()
        }
        ControlReply::Restored { seeds, skipped } => {
            let mut obj = Obj::new().str("status", "restored").num("seeds", *seeds);
            if *skipped != 0 {
                obj = obj.num("skipped", *skipped);
            }
            obj.finish()
        }
        ControlReply::Rejected { reason } => Obj::new()
            .str("status", "rejected")
            .str("reason", reason)
            .finish(),
        ControlReply::CompileFailed { diagnostics } => Obj::new()
            .str("status", "compile-failed")
            .raw(
                "diagnostics",
                &array(diagnostics.iter().map(|d| {
                    Obj::new()
                        .str("machine", &d.machine)
                        .str("phase", &d.phase)
                        .num("line", u64::from(d.line))
                        .num("col", u64::from(d.col))
                        .str("message", &d.message)
                        .finish()
                })),
            )
            .finish(),
        ControlReply::PodRegistered { base } => Obj::new()
            .str("status", "registered")
            .num("base", *base)
            .finish(),
        ControlReply::Pods { pods } => Obj::new()
            .raw(
                "pods",
                &array(pods.iter().map(|p| {
                    Obj::new()
                        .str("name", &p.name)
                        .str("addr", &p.addr)
                        .num("switches", p.switches)
                        .num("base", p.base)
                        .float("quota", p.quota)
                        .raw("live", if p.live { "true" } else { "false" })
                        .num("beats", p.beats)
                        .num("age_ms", p.age_ms)
                        .finish()
                })),
            )
            .finish(),
        ControlReply::Migrated {
            task,
            from_pod,
            to_pod,
            seeds,
        } => Obj::new()
            .str("status", "migrated")
            .str("task", task)
            .str("from_pod", from_pod)
            .str("to_pod", to_pod)
            .num("seeds", *seeds)
            .finish(),
        ControlReply::TaskExport { source, seeds } => Obj::new()
            .str("status", "task-export")
            .str("source", source)
            .raw(
                "seeds",
                &array(
                    seeds
                        .iter()
                        .map(|(k, _)| format!("\"{}\"", farm_ctl::json::escape(k))),
                ),
            )
            .finish(),
    }
}
