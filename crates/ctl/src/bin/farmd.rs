//! farmd — the FARM daemon. Hosts a farm behind the control endpoint
//! until a `farmctl shutdown` arrives or a supervisor signals it.
//!
//! Lifecycle contract for external supervisors:
//!
//! * `--config`'s `[server] pid_file` is written once listening and
//!   removed on any graceful exit.
//! * `SIGTERM`/`SIGINT` trigger a graceful shutdown — in-flight control
//!   ops drain, a final checkpoint is written — and the process exits
//!   with code [`EXIT_SIGNALED`] (3), distinguishing supervisor-driven
//!   stops from `farmctl shutdown` (0) and startup failures (1).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use farm_ctl::{Farmd, FarmdConfig};

/// Exit code of a graceful, signal-initiated shutdown.
const EXIT_SIGNALED: u8 = 3;

const USAGE: &str = "\
farmd - FARM control-plane daemon

USAGE:
    farmd [--config <farmd.toml>] [--listen <addr:port>] [--print-addr]

OPTIONS:
    --config <path>   Load settings from a TOML file
    --listen <addr>   Override the listen address (e.g. 127.0.0.1:7373)
    --print-addr      Print the bound address on stdout once listening
    -h, --help        Show this help

SIGNALS:
    SIGTERM, SIGINT   Drain in-flight ops, write a final checkpoint,
                      exit with code 3
";

/// Set from the signal handler; the main loop polls it. An atomic store
/// is async-signal-safe, which is all a handler may do.
static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNALED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }

    // The libc symbol directly — this crate links no libc wrapper, the
    // same raw-syscall idiom farm-net's poller uses for epoll.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Routes `SIGTERM`/`SIGINT` to the [`SIGNALED`] flag.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

fn main() -> ExitCode {
    let mut config_path: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut print_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config_path = args.next(),
            "--listen" => listen = args.next(),
            "--print-addr" => print_addr = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("farmd: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut config = match &config_path {
        Some(path) => match FarmdConfig::from_file(path.as_ref()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("farmd: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FarmdConfig::default(),
    };
    if let Some(addr) = listen {
        match addr.parse() {
            Ok(a) => config.listen = a,
            Err(_) => {
                eprintln!("farmd: bad --listen address `{addr}`");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(unix)]
    sig::install();
    let pid_file = config.pid_file.clone();
    let farmd = match Farmd::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("farmd: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &pid_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", std::process::id())) {
            eprintln!("farmd: cannot write pid file {}: {e}", path.display());
        }
    }
    if print_addr {
        println!("{}", farmd.local_addr());
    }
    eprintln!("farmd: serving control plane on {}", farmd.local_addr());
    // Wait for either a served `Shutdown` op or a supervisor signal;
    // both paths drain in-flight ops and write the final checkpoint
    // inside the core's teardown.
    while !farmd.stopping() && !SIGNALED.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(20));
    }
    let signaled = SIGNALED.load(Ordering::Relaxed) && !farmd.stopping();
    if signaled {
        eprintln!("farmd: signal received, shutting down gracefully");
    }
    farmd.stop();
    if let Some(path) = &pid_file {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("farmd: shut down");
    if signaled {
        ExitCode::from(EXIT_SIGNALED)
    } else {
        ExitCode::SUCCESS
    }
}
