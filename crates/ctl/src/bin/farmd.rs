//! farmd — the FARM daemon. Hosts a farm behind the control endpoint
//! until a `farmctl shutdown` arrives.

use std::process::ExitCode;

use farm_ctl::{Farmd, FarmdConfig};

const USAGE: &str = "\
farmd - FARM control-plane daemon

USAGE:
    farmd [--config <farmd.toml>] [--listen <addr:port>] [--print-addr]

OPTIONS:
    --config <path>   Load settings from a TOML file
    --listen <addr>   Override the listen address (e.g. 127.0.0.1:7373)
    --print-addr      Print the bound address on stdout once listening
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut config_path: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut print_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config_path = args.next(),
            "--listen" => listen = args.next(),
            "--print-addr" => print_addr = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("farmd: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut config = match &config_path {
        Some(path) => match FarmdConfig::from_file(path.as_ref()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("farmd: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FarmdConfig::default(),
    };
    if let Some(addr) = listen {
        match addr.parse() {
            Ok(a) => config.listen = a,
            Err(_) => {
                eprintln!("farmd: bad --listen address `{addr}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let farmd = match Farmd::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("farmd: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if print_addr {
        println!("{}", farmd.local_addr());
    }
    eprintln!("farmd: serving control plane on {}", farmd.local_addr());
    farmd.wait();
    eprintln!("farmd: shut down");
    ExitCode::SUCCESS
}
