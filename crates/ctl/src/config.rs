//! farmd configuration: a hand-rolled loader for the TOML subset the
//! daemon needs — `[section]` headers, `key = value` pairs with string,
//! integer, float and boolean values, and `#` comments. No external
//! parser dependency, total error reporting with line numbers.

use std::collections::BTreeMap;
use std::fmt;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

/// A configuration file failed to parse or held a bad value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending input (0 for file-level problems).
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "config: {}", self.message)
        } else {
            write!(f, "config: line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a [`ConfigError`] — shared by every consumer of [`Table`].
pub fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

/// Flat `section.key` → value view of one file. Public so other
/// daemons (fedd) can parse their own sections with the same TOML
/// subset and unknown-key discipline.
#[derive(Debug, Default)]
pub struct Table {
    entries: BTreeMap<String, (u32, Value)>,
}

impl Table {
    pub fn parse(src: &str) -> Result<Table, ConfigError> {
        let mut entries = BTreeMap::new();
        let mut section = String::new();
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(lineno, "unterminated [section] header"));
                };
                let name = name.trim();
                if name.is_empty() || !name.chars().all(is_key_char) {
                    return Err(err(lineno, format!("bad section name `{name}`")));
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = key.trim();
            if key.is_empty() || !key.chars().all(is_key_char) {
                return Err(err(lineno, format!("bad key `{key}`")));
            }
            let full = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            let value = parse_value(value.trim(), lineno)?;
            if entries.insert(full.clone(), (lineno, value)).is_some() {
                return Err(err(lineno, format!("duplicate key `{full}`")));
            }
        }
        Ok(Table { entries })
    }

    pub fn get(&self, key: &str) -> Option<&(u32, Value)> {
        self.entries.get(key)
    }

    fn take_known(&mut self, key: &str) -> Option<(u32, Value)> {
        self.entries.remove(key)
    }

    /// Fails on the first key no getter consumed, so typos fail loudly
    /// instead of silently running defaults.
    pub fn reject_unknown(&self) -> Result<(), ConfigError> {
        if let Some((key, (line, _))) = self.entries.iter().next() {
            return Err(err(*line, format!("unknown key `{key}`")));
        }
        Ok(())
    }

    pub fn str(&mut self, key: &str) -> Result<Option<String>, ConfigError> {
        match self.take_known(key) {
            None => Ok(None),
            Some((_, Value::Str(s))) => Ok(Some(s)),
            Some((line, v)) => Err(err(
                line,
                format!("`{key}` must be a string, got {}", v.type_name()),
            )),
        }
    }

    pub fn u64(&mut self, key: &str) -> Result<Option<u64>, ConfigError> {
        match self.take_known(key) {
            None => Ok(None),
            Some((line, Value::Int(i))) => u64::try_from(i)
                .map(Some)
                .map_err(|_| err(line, format!("`{key}` must be non-negative"))),
            Some((line, v)) => Err(err(
                line,
                format!("`{key}` must be an integer, got {}", v.type_name()),
            )),
        }
    }

    pub fn bool(&mut self, key: &str) -> Result<Option<bool>, ConfigError> {
        match self.take_known(key) {
            None => Ok(None),
            Some((_, Value::Bool(b))) => Ok(Some(b)),
            Some((line, v)) => Err(err(
                line,
                format!("`{key}` must be a boolean, got {}", v.type_name()),
            )),
        }
    }

    pub fn f64(&mut self, key: &str) -> Result<Option<f64>, ConfigError> {
        match self.take_known(key) {
            None => Ok(None),
            Some((_, Value::Float(x))) => Ok(Some(x)),
            Some((_, Value::Int(i))) => Ok(Some(i as f64)),
            Some((line, v)) => Err(err(
                line,
                format!("`{key}` must be a number, got {}", v.type_name()),
            )),
        }
    }
}

fn is_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Removes a trailing `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str, line: u32) -> Result<Value, ConfigError> {
    if let Some(rest) = s.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(err(line, "unterminated string"));
        };
        if body.contains('"') {
            return Err(err(line, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return Err(err(line, "missing value")),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(x) = s.parse::<f64>() {
        return Ok(Value::Float(x));
    }
    Err(err(line, format!("cannot parse value `{s}`")))
}

/// Everything farmd needs to come up.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmdConfig {
    /// Address the control endpoint binds; port 0 picks an ephemeral
    /// port (see `Farmd::local_addr`).
    pub listen: SocketAddr,
    /// How long a connection handler waits for the core to answer one
    /// op before giving the client a structured error.
    pub request_timeout: Duration,
    /// Grace period between the shutdown op and severing sessions, so
    /// in-flight replies drain.
    pub shutdown_drain: Duration,
    /// Optional JSON-lines event log (the audit trail on disk).
    pub event_log: Option<PathBuf>,
    /// Optional checkpoint file: `Checkpoint` ops persist every seed's
    /// versioned snapshot here, and `Restore` ops reload it (including
    /// files written by the pre-versioning layout).
    pub checkpoint_path: Option<PathBuf>,
    /// Periodic checkpoint cadence (needs `checkpoint_path`); `None`
    /// disables the ticker and leaves checkpoints manual.
    pub checkpoint_interval: Option<Duration>,
    /// Reload the checkpoint file at startup (programs recompiled, seed
    /// state restored) before serving the first op. Default on; only
    /// meaningful with `checkpoint_path`.
    pub restore_on_boot: bool,
    /// Optional PID file for external supervisors; written at startup,
    /// removed on graceful exit.
    pub pid_file: Option<PathBuf>,
    /// Hosted fabric shape: spine switches.
    pub spines: usize,
    /// Hosted fabric shape: leaf switches.
    pub leaves: usize,
    /// Periodic replan cadence; `None` disables the ticker.
    pub replan_interval: Option<Duration>,
    /// Worker threads for the placement solver's parallel phases; `0`
    /// and `1` solve sequentially, any value plans identically.
    pub placement_threads: usize,
    /// Admission quota: fraction of live fabric capacity submissions may
    /// claim in total (per resource kind).
    pub quota: f64,
    /// Largest accepted Almanac submission, bytes.
    pub max_program_bytes: usize,
    /// Wall-clock cadence at which the core advances the hosted farm's
    /// virtual clock (driving heartbeats, fault injection and recovery
    /// while the daemon idles); `None` leaves virtual time op-driven.
    pub tick_interval: Option<Duration>,
    /// Deterministic churn injection: seed of a generated
    /// [`farm_faults::FaultPlan`] over the leaf switches. `None` runs
    /// fault-free. Only effective alongside `tick_interval`.
    pub fault_seed: Option<u64>,
    /// Virtual-time offset before the first injected fault — a warmup
    /// window so submissions land on a healthy fabric before churn.
    pub fault_start: Duration,
    /// Mean gap between injected churn faults, virtual time.
    pub fault_mean_gap: Duration,
    /// How far into virtual time the generated churn plan extends.
    pub fault_horizon: Duration,
    /// Federation membership: when set, farmd registers with a fedd
    /// coordinator at startup and heartbeats it for liveness.
    pub fed: Option<FedMembership>,
}

/// The `[fed]` section: how this farmd joins a federation.
#[derive(Debug, Clone, PartialEq)]
pub struct FedMembership {
    /// Wire address of the fedd coordinator.
    pub coordinator: SocketAddr,
    /// This pod's registration name (unique per federation).
    pub pod_name: String,
    /// Heartbeat cadence toward the coordinator.
    pub heartbeat: Duration,
    /// Address advertised in the registration manifest; defaults to
    /// the control endpoint's actual bound address.
    pub advertise: Option<SocketAddr>,
}

impl Default for FarmdConfig {
    fn default() -> Self {
        FarmdConfig {
            listen: "127.0.0.1:0".parse().expect("loopback parses"),
            request_timeout: Duration::from_secs(10),
            shutdown_drain: Duration::from_millis(100),
            event_log: None,
            checkpoint_path: None,
            checkpoint_interval: None,
            restore_on_boot: true,
            pid_file: None,
            spines: 2,
            leaves: 3,
            replan_interval: None,
            placement_threads: 1,
            quota: 1.0,
            max_program_bytes: 1 << 20,
            tick_interval: None,
            fault_seed: None,
            fault_start: Duration::ZERO,
            fault_mean_gap: Duration::from_millis(40),
            fault_horizon: Duration::from_secs(60),
            fed: None,
        }
    }
}

impl FarmdConfig {
    /// Parses a config file body. Unknown keys are rejected so typos
    /// fail loudly instead of silently running defaults.
    pub fn from_toml_str(src: &str) -> Result<FarmdConfig, ConfigError> {
        let mut t = Table::parse(src)?;
        let mut cfg = FarmdConfig::default();
        let listen_line = line_of(&t, "server.listen");
        if let Some(s) = t.str("server.listen")? {
            cfg.listen = s.parse().map_err(|_| {
                err(
                    listen_line,
                    format!("`server.listen`: bad socket address `{s}`"),
                )
            })?;
        }
        if let Some(ms) = t.u64("server.request_timeout_ms")? {
            cfg.request_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = t.u64("server.shutdown_drain_ms")? {
            cfg.shutdown_drain = Duration::from_millis(ms);
        }
        if let Some(p) = t.str("server.event_log")? {
            cfg.event_log = Some(PathBuf::from(p));
        }
        if let Some(p) = t.str("server.checkpoint_path")? {
            cfg.checkpoint_path = Some(PathBuf::from(p));
        }
        if let Some(ms) = t.u64("server.checkpoint_interval_ms")? {
            cfg.checkpoint_interval = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(b) = t.bool("server.restore_on_boot")? {
            cfg.restore_on_boot = b;
        }
        if let Some(p) = t.str("server.pid_file")? {
            cfg.pid_file = Some(PathBuf::from(p));
        }
        if let Some(n) = t.u64("farm.spines")? {
            cfg.spines = n as usize;
        }
        if let Some(n) = t.u64("farm.leaves")? {
            cfg.leaves = n as usize;
        }
        if let Some(ms) = t.u64("farm.replan_interval_ms")? {
            cfg.replan_interval = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = t.u64("farm.placement_threads")? {
            cfg.placement_threads = n as usize;
        }
        if let Some(ms) = t.u64("farm.tick_interval_ms")? {
            cfg.tick_interval = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = t.u64("faults.seed")? {
            cfg.fault_seed = Some(n);
        }
        if let Some(ms) = t.u64("faults.start_ms")? {
            cfg.fault_start = Duration::from_millis(ms);
        }
        if let Some(ms) = t.u64("faults.mean_gap_ms")? {
            cfg.fault_mean_gap = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = t.u64("faults.horizon_ms")? {
            cfg.fault_horizon = Duration::from_millis(ms.max(1));
        }
        if let Some(q) = t.f64("admission.quota")? {
            if !(q > 0.0 && q <= 1.0) {
                return Err(err(
                    0,
                    format!("`admission.quota` must be in (0, 1], got {q}"),
                ));
            }
            cfg.quota = q;
        }
        if let Some(n) = t.u64("admission.max_program_bytes")? {
            cfg.max_program_bytes = n as usize;
        }
        let coord_line = line_of(&t, "fed.coordinator");
        let advertise_line = line_of(&t, "fed.advertise");
        let coordinator = t.str("fed.coordinator")?;
        let pod_name = t.str("fed.pod_name")?;
        let heartbeat_ms = t.u64("fed.heartbeat_ms")?;
        let advertise = t.str("fed.advertise")?;
        if let Some(c) = coordinator {
            let coordinator = c.parse().map_err(|_| {
                err(
                    coord_line,
                    format!("`fed.coordinator`: bad socket address `{c}`"),
                )
            })?;
            let pod_name = pod_name
                .ok_or_else(|| err(coord_line, "`fed.coordinator` requires `fed.pod_name`"))?;
            let advertise = match advertise {
                None => None,
                Some(a) => Some(a.parse().map_err(|_| {
                    err(
                        advertise_line,
                        format!("`fed.advertise`: bad socket address `{a}`"),
                    )
                })?),
            };
            cfg.fed = Some(FedMembership {
                coordinator,
                pod_name,
                heartbeat: Duration::from_millis(heartbeat_ms.unwrap_or(500).max(1)),
                advertise,
            });
        } else if pod_name.is_some() || heartbeat_ms.is_some() || advertise.is_some() {
            return Err(err(0, "`[fed]` keys require `fed.coordinator`"));
        }
        t.reject_unknown()?;
        if cfg.spines == 0 || cfg.leaves == 0 {
            return Err(err(0, "farm.spines and farm.leaves must be at least 1"));
        }
        Ok(cfg)
    }

    /// Loads and parses a config file.
    pub fn from_file(path: &std::path::Path) -> Result<FarmdConfig, ConfigError> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        FarmdConfig::from_toml_str(&body)
    }
}

/// Source line of a key, read *before* a getter consumes the entry, for
/// error attribution.
fn line_of(t: &Table, key: &str) -> u32 {
    t.get(key).map(|(l, _)| *l).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
        # farmd example
        [server]
        listen = "127.0.0.1:4520"   # control endpoint
        request_timeout_ms = 2500
        shutdown_drain_ms = 50
        event_log = "/tmp/farmd-events.jsonl"

        [farm]
        spines = 3
        leaves = 4
        replan_interval_ms = 200
        placement_threads = 4

        [admission]
        quota = 0.8
        max_program_bytes = 4096
    "#;

    #[test]
    fn full_config_round_trips() {
        let cfg = FarmdConfig::from_toml_str(FULL).unwrap();
        assert_eq!(cfg.listen, "127.0.0.1:4520".parse().unwrap());
        assert_eq!(cfg.request_timeout, Duration::from_millis(2500));
        assert_eq!(cfg.shutdown_drain, Duration::from_millis(50));
        assert_eq!(
            cfg.event_log.as_deref(),
            Some(std::path::Path::new("/tmp/farmd-events.jsonl"))
        );
        assert_eq!((cfg.spines, cfg.leaves), (3, 4));
        assert_eq!(cfg.replan_interval, Some(Duration::from_millis(200)));
        assert_eq!(cfg.placement_threads, 4);
        assert!((cfg.quota - 0.8).abs() < 1e-12);
        assert_eq!(cfg.max_program_bytes, 4096);
    }

    #[test]
    fn empty_input_is_all_defaults() {
        let cfg = FarmdConfig::from_toml_str("").unwrap();
        assert_eq!(cfg, FarmdConfig::default());
        assert!(cfg.replan_interval.is_none());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let e = FarmdConfig::from_toml_str("[server]\nlisten_addr = \"x\"\n").unwrap_err();
        assert!(
            e.message.contains("unknown key `server.listen_addr`"),
            "{e}"
        );
        assert_eq!(e.line, 2);
    }

    #[test]
    fn bad_values_carry_line_numbers() {
        let e = FarmdConfig::from_toml_str("[farm]\nspines = \"two\"\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("must be an integer"), "{e}");
        let e = FarmdConfig::from_toml_str("[server]\nlisten = \"nowhere\"\n").unwrap_err();
        assert!(e.message.contains("bad socket address"), "{e}");
        let e = FarmdConfig::from_toml_str("listen 127\n").unwrap_err();
        assert!(e.message.contains("expected `key = value`"), "{e}");
    }

    #[test]
    fn quota_bounds_are_enforced() {
        for bad in ["quota = 0", "quota = 1.5", "quota = -1"] {
            let src = format!("[admission]\n{bad}\n");
            assert!(FarmdConfig::from_toml_str(&src).is_err(), "{bad}");
        }
    }

    #[test]
    fn comments_and_zero_interval_disable() {
        let cfg =
            FarmdConfig::from_toml_str("[farm]\nreplan_interval_ms = 0 # disabled\n").unwrap();
        assert!(cfg.replan_interval.is_none());
        let cfg = FarmdConfig::from_toml_str("[server]\ncheckpoint_interval_ms = 0\n").unwrap();
        assert!(cfg.checkpoint_interval.is_none());
    }

    #[test]
    fn lifecycle_keys_parse() {
        let cfg = FarmdConfig::from_toml_str(
            "[server]\ncheckpoint_interval_ms = 250\nrestore_on_boot = false\n\
             pid_file = \"/tmp/farmd.pid\"\n[farm]\ntick_interval_ms = 5\n",
        )
        .unwrap();
        assert_eq!(cfg.checkpoint_interval, Some(Duration::from_millis(250)));
        assert!(!cfg.restore_on_boot);
        assert_eq!(
            cfg.pid_file.as_deref(),
            Some(std::path::Path::new("/tmp/farmd.pid"))
        );
        assert_eq!(cfg.tick_interval, Some(Duration::from_millis(5)));
        // Defaults: restore-on-boot is opt-out, tickers are opt-in.
        let d = FarmdConfig::default();
        assert!(d.restore_on_boot);
        assert!(d.checkpoint_interval.is_none() && d.tick_interval.is_none());
    }

    #[test]
    fn fed_membership_keys_parse() {
        let cfg = FarmdConfig::from_toml_str(
            "[fed]\ncoordinator = \"127.0.0.1:4600\"\npod_name = \"pod-a\"\n\
             heartbeat_ms = 250\nadvertise = \"10.0.0.7:4520\"\n",
        )
        .unwrap();
        let fed = cfg.fed.expect("fed section parsed");
        assert_eq!(fed.coordinator, "127.0.0.1:4600".parse().unwrap());
        assert_eq!(fed.pod_name, "pod-a");
        assert_eq!(fed.heartbeat, Duration::from_millis(250));
        assert_eq!(fed.advertise, Some("10.0.0.7:4520".parse().unwrap()));
        // heartbeat/advertise default when omitted.
        let cfg = FarmdConfig::from_toml_str(
            "[fed]\ncoordinator = \"127.0.0.1:4600\"\npod_name = \"pod-a\"\n",
        )
        .unwrap();
        let fed = cfg.fed.expect("minimal fed section");
        assert_eq!(fed.heartbeat, Duration::from_millis(500));
        assert!(fed.advertise.is_none());
        // pod_name is mandatory alongside coordinator; stray fed keys
        // without a coordinator are rejected.
        assert!(FarmdConfig::from_toml_str("[fed]\ncoordinator = \"127.0.0.1:1\"\n").is_err());
        assert!(FarmdConfig::from_toml_str("[fed]\npod_name = \"x\"\n").is_err());
        assert!(FarmdConfig::from_toml_str("").unwrap().fed.is_none());
    }

    #[test]
    fn fault_churn_keys_parse() {
        let cfg = FarmdConfig::from_toml_str(
            "[faults]\nseed = 1337\nstart_ms = 500\nmean_gap_ms = 15\nhorizon_ms = 2000\n",
        )
        .unwrap();
        assert_eq!(cfg.fault_seed, Some(1337));
        assert_eq!(cfg.fault_start, Duration::from_millis(500));
        assert_eq!(cfg.fault_mean_gap, Duration::from_millis(15));
        assert_eq!(cfg.fault_horizon, Duration::from_millis(2000));
        assert!(FarmdConfig::from_toml_str("").unwrap().fault_seed.is_none());
        let e = FarmdConfig::from_toml_str("[server]\nrestore_on_boot = 1\n").unwrap_err();
        assert!(e.message.contains("must be a boolean"), "{e}");
    }
}
