//! FARM control plane.
//!
//! Two halves, one wire protocol:
//!
//! - [`Farmd`] — the daemon. Hosts a [`farm_core::Farm`] on a dedicated
//!   core thread and serves the versioned [`farm_net::ControlOp`]
//!   surface over TCP: program submission with server-side Almanac
//!   compilation and diagnostics, seed listing/inspection, stats and
//!   metrics dumps as JSON, switch drain/uncordon with migration-based
//!   evacuation, on-demand and periodic replanning, checkpoint/restore,
//!   and graceful shutdown.
//! - [`CtlClient`] — the client library behind the `farmctl` CLI and
//!   the integration tests.
//!
//! Configuration is a small hand-rolled TOML subset ([`FarmdConfig`]);
//! every served op is audited through `ctl.*` counters, the
//! `ctl.op_latency_us` histogram, and `control-op` events.

pub mod ckpt;
pub mod client;
pub mod config;
pub mod json;
pub mod server;

pub use client::CtlClient;
pub use config::{ConfigError, FarmdConfig, FedMembership};
pub use server::Farmd;
