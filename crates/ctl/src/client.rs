//! Client library for the farmd control surface, used by farmctl and
//! by integration tests.

use std::net::SocketAddr;
use std::time::Duration;

use farm_net::{Connection, ControlOp, ControlReply, Frame, NetConfig, NetError};
use farm_telemetry::Telemetry;

/// A control-plane session with one farmd instance.
pub struct CtlClient {
    conn: Connection,
    // Keeps the connection's counters alive for the session.
    _telemetry: Telemetry,
}

impl CtlClient {
    /// Connects with client-appropriate defaults (fast failure, no
    /// endless reconnect storms).
    pub fn connect(addr: SocketAddr) -> CtlClient {
        let telemetry = Telemetry::new();
        let cfg = NetConfig {
            node: "farmctl".into(),
            request_timeout: Duration::from_secs(10),
            max_reconnects: 2,
            ..NetConfig::default()
        };
        let conn = Connection::connect(addr, cfg, &telemetry);
        CtlClient {
            conn,
            _telemetry: telemetry,
        }
    }

    /// Sends one control op and decodes the reply.
    ///
    /// # Errors
    ///
    /// Transport failures as [`NetError`]; a server-side [`Frame::Error`]
    /// surfaces as [`NetError::Rejected`]. A non-control reply frame
    /// (protocol confusion) is reported as a rejection too.
    pub fn op(&self, op: ControlOp) -> Result<ControlReply, NetError> {
        match self.conn.request(Frame::Control { op })? {
            Frame::ControlReply { reply } => Ok(reply),
            other => Err(NetError::Rejected(format!(
                "farmd answered with a non-control frame: {other:?}"
            ))),
        }
    }
}
