//! Client library for the farmd control surface, used by farmctl and
//! by integration tests.

use std::net::SocketAddr;
use std::time::Duration;

use farm_net::{Connection, ControlOp, ControlReply, Frame, NetConfig, NetError};
use farm_telemetry::Telemetry;

/// A control-plane session with one farmd instance.
pub struct CtlClient {
    conn: Connection,
    // Keeps the connection's counters alive for the session.
    _telemetry: Telemetry,
}

impl CtlClient {
    /// Connects with client-appropriate defaults (fast failure, no
    /// endless reconnect storms).
    pub fn connect(addr: SocketAddr) -> CtlClient {
        CtlClient::connect_as(addr, "farmctl", Duration::from_secs(10))
    }

    /// Connects under a caller-chosen node name and request timeout —
    /// the coordinator (`fedd`) and the farmd registration loop reuse
    /// the client this way so each peer is identifiable in `Hello`
    /// frames and audit events.
    pub fn connect_as(addr: SocketAddr, node: &str, request_timeout: Duration) -> CtlClient {
        let telemetry = Telemetry::new();
        let cfg = NetConfig {
            node: node.into(),
            request_timeout,
            max_reconnects: 2,
            ..NetConfig::default()
        };
        let conn = Connection::connect(addr, cfg, &telemetry);
        CtlClient {
            conn,
            _telemetry: telemetry,
        }
    }

    /// Blocks until the underlying connection is established (or the
    /// timeout passes); `true` when connected.
    pub fn wait_connected(&self, timeout: Duration) -> bool {
        self.conn.wait_connected(timeout)
    }

    /// Sends one control op and decodes the reply.
    ///
    /// # Errors
    ///
    /// Transport failures as [`NetError`]; a server-side [`Frame::Error`]
    /// surfaces as [`NetError::Rejected`]. A non-control reply frame
    /// (protocol confusion) is reported as a rejection too.
    pub fn op(&self, op: ControlOp) -> Result<ControlReply, NetError> {
        match self.conn.request(Frame::Control { op })? {
            Frame::ControlReply { reply } => Ok(reply),
            other => Err(NetError::Rejected(format!(
                "farmd answered with a non-control frame: {other:?}"
            ))),
        }
    }
}
