//! The farmd daemon core: a [`Farm`] hosted behind a farm-net
//! [`NetServer`], serving the versioned [`ControlOp`] surface.
//!
//! Threading model: the farm is not shared — it lives on one
//! "farmd-core" thread that owns it outright. Connection handler
//! threads translate each [`Frame::Control`] into a request over an
//! mpsc channel and block (bounded) for the reply; the core serves ops
//! strictly in arrival order, so every operation observes a consistent
//! farm. The core's `recv_timeout` doubles as the periodic-replan
//! ticker.
//!
//! Every op lands in the audit trail: `ctl.ops`, `ctl.op.<kind>` and
//! `ctl.rejected` counters, the `ctl.op_latency_us` histogram, and one
//! [`Event::ControlOp`] per op through the farm's event sinks.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use farm_almanac::compile::compile_task_with_diagnostics;
use farm_core::prelude::*;
use farm_core::seeder::SeedKey;
use farm_net::{
    decode_checkpoint_file, encode_checkpoint_file, ControlOp, ControlReply, Diagnostic, Envelope,
    Frame, NetServer, SeedDescriptor, VSeedSnapshot,
};
use farm_netsim::controller::SdnController;
use farm_netsim::switch::{Resources, SwitchModel};
use farm_netsim::types::SwitchId;

use crate::config::FarmdConfig;
use crate::json::{array, snapshot_json, Obj};

/// Human names of the four resource kinds, in `Resources` index order.
const RESOURCE_NAMES: [&str; 4] = ["vcpu", "ram_mb", "tcam", "pcie_poll"];

/// One queued control request: the op plus the handler's reply slot.
struct CoreMsg {
    op: ControlOp,
    reply: mpsc::Sender<ControlReply>,
}

/// A running farmd instance: the hosted farm's core thread plus the
/// listening control endpoint.
pub struct Farmd {
    server: NetServer,
    core: Option<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shutdown_drain: Duration,
    telemetry: Telemetry,
}

impl Farmd {
    /// Builds the farm, starts the core thread, binds the control
    /// endpoint.
    ///
    /// # Errors
    ///
    /// Bind failures, or the core thread dying during construction.
    pub fn start(config: FarmdConfig) -> io::Result<Farmd> {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<CoreMsg>();
        let (ready_tx, ready_rx) = mpsc::channel::<Telemetry>();
        let core = {
            let config = config.clone();
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("farmd-core".into())
                .spawn(move || core_loop(config, rx, ready_tx, stop))?
        };
        let telemetry = ready_rx
            .recv()
            .map_err(|_| io::Error::other("farmd core died during startup"))?;
        let handler = {
            // mpsc senders are Send but not Sync; handlers clone one out
            // of the mutex per request.
            let tx = Mutex::new(tx);
            let stop = Arc::clone(&stop);
            let wait = config.request_timeout;
            Arc::new(move |env: &Envelope| -> Option<Frame> {
                let Frame::Control { op } = &env.frame else {
                    return None;
                };
                if stop.load(Ordering::Relaxed) {
                    return Some(Frame::Error {
                        message: "farmd is shutting down".into(),
                    });
                }
                let (reply_tx, reply_rx) = mpsc::channel();
                let sender = tx.lock().expect("ctl sender lock").clone();
                if sender
                    .send(CoreMsg {
                        op: op.clone(),
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    return Some(Frame::Error {
                        message: "farmd core is gone".into(),
                    });
                }
                match reply_rx.recv_timeout(wait) {
                    Ok(reply) => Some(Frame::ControlReply { reply }),
                    Err(_) => Some(Frame::Error {
                        message: "farmd core did not answer in time".into(),
                    }),
                }
            })
        };
        let server = NetServer::bind(config.listen, &telemetry, handler)?;
        Ok(Farmd {
            server,
            core: Some(core),
            stop,
            shutdown_drain: config.shutdown_drain,
            telemetry,
        })
    }

    /// The bound control address (the chosen port when listening on :0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The hosted farm's telemetry handle (shared with the transport).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// True once a shutdown op was served (or [`Farmd::stop`] ran).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Blocks until a `Shutdown` op arrives, then drains and tears the
    /// endpoint down.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            thread::sleep(Duration::from_millis(20));
        }
        self.teardown();
    }

    /// Initiates shutdown locally (equivalent to serving a `Shutdown`
    /// op) and tears down.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Let in-flight replies reach their sockets before severing.
        thread::sleep(self.shutdown_drain);
        self.server.shutdown();
        if let Some(h) = self.core.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Farmd {
    fn drop(&mut self) {
        if self.core.is_some() {
            self.teardown();
        }
    }
}

/// The core thread: owns the farm, serves ops in order, ticks replans.
fn core_loop(
    config: FarmdConfig,
    rx: mpsc::Receiver<CoreMsg>,
    ready: mpsc::Sender<Telemetry>,
    stop: Arc<AtomicBool>,
) {
    let topo = Topology::spine_leaf(
        config.spines,
        config.leaves,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let mut builder = Farm::builder(topo).with_placement_threads(config.placement_threads);
    if let Some(path) = &config.event_log {
        match std::fs::File::create(path) {
            Ok(f) => {
                builder = builder.with_sink(Arc::new(JsonLinesSink::new(Box::new(
                    io::BufWriter::new(f),
                ))));
            }
            Err(e) => eprintln!("farmd: cannot open event log {}: {e}", path.display()),
        }
    }
    let mut farm = builder.build();
    let telemetry = farm.telemetry().clone();
    if ready.send(telemetry.clone()).is_err() {
        return;
    }
    let ops = telemetry.counter("ctl.ops");
    let rejected = telemetry.counter("ctl.rejected");
    let latency = telemetry.latency_histogram("ctl.op_latency_us");
    let mut last_replan = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(CoreMsg { op, reply }) => {
                let started = Instant::now();
                let kind = op.kind();
                ops.inc();
                telemetry.counter(&format!("ctl.op.{kind}")).inc();
                let out = serve_op(&mut farm, &config, &op);
                let elapsed_us = started.elapsed().as_micros() as u64;
                latency.record(elapsed_us);
                let outcome = match &out {
                    ControlReply::Rejected { .. } | ControlReply::CompileFailed { .. } => {
                        rejected.inc();
                        "rejected"
                    }
                    _ => "ok",
                };
                let at_ns = farm.now().as_nanos();
                telemetry.emit_with(|| Event::ControlOp {
                    at_ns,
                    op: kind.to_string(),
                    outcome: outcome.to_string(),
                    elapsed_us,
                });
                let is_shutdown = matches!(op, ControlOp::Shutdown);
                let _ = reply.send(out);
                if is_shutdown {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Farmd was dropped without a shutdown op.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        if let Some(every) = config.replan_interval {
            if last_replan.elapsed() >= every {
                last_replan = Instant::now();
                let _ = farm.replan();
            }
        }
    }
}

/// Serves one control op against the farm. Total: every failure becomes
/// a structured reply, never a panic.
fn serve_op(farm: &mut Farm, config: &FarmdConfig, op: &ControlOp) -> ControlReply {
    match op {
        ControlOp::SubmitProgram { name, source } => submit(farm, config, name, source),
        ControlOp::ListSeeds { from_index, limit } => list_seeds(farm, *from_index, *limit),
        ControlOp::DescribeSeed { key } => describe(farm, key),
        ControlOp::Stats { from_index, limit } => ControlReply::Json {
            body: stats_json(farm, *from_index, *limit),
        },
        ControlOp::MetricsDump => ControlReply::Json {
            body: metrics_json(farm),
        },
        ControlOp::Drain { switch } => match farm.drain(SwitchId(*switch)) {
            Ok((_, evacuated)) => ControlReply::Drained {
                switch: *switch,
                evacuated: evacuated as u64,
            },
            Err(e) => ControlReply::Rejected {
                reason: e.to_string(),
            },
        },
        ControlOp::Uncordon { switch } => match farm.uncordon(SwitchId(*switch)) {
            Ok(_) => ControlReply::Ok,
            Err(e) => ControlReply::Rejected {
                reason: e.to_string(),
            },
        },
        ControlOp::Replan => match farm.replan() {
            Ok(plan) => ControlReply::Replanned {
                actions: plan.actions.len() as u64,
                dropped_tasks: plan.dropped_tasks.len() as u64,
            },
            Err(e) => ControlReply::Rejected {
                reason: e.to_string(),
            },
        },
        ControlOp::Checkpoint => checkpoint(farm, config),
        ControlOp::Restore => restore(farm, config),
        ControlOp::Shutdown => ControlReply::Ok,
    }
}

/// `SubmitProgram`: size gate → server-side compile with collected
/// diagnostics → admission control → deploy.
fn submit(farm: &mut Farm, config: &FarmdConfig, name: &str, source: &str) -> ControlReply {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return ControlReply::Rejected {
            reason: format!("bad task name `{name}` (want [A-Za-z0-9_-]+)"),
        };
    }
    if farm.seeder().task_names().iter().any(|t| t == name) {
        return ControlReply::Rejected {
            reason: format!("task `{name}` is already deployed"),
        };
    }
    if source.len() > config.max_program_bytes {
        return ControlReply::Rejected {
            reason: format!(
                "program of {} bytes exceeds the {}-byte submission cap",
                source.len(),
                config.max_program_bytes
            ),
        };
    }
    let task = {
        let ctl = SdnController::new(farm.network().topology());
        let report = compile_task_with_diagnostics(name, source, &BTreeMap::new(), &ctl);
        match report.task {
            Some(task) => task,
            None => {
                return ControlReply::CompileFailed {
                    diagnostics: report
                        .diagnostics
                        .iter()
                        .map(|d| Diagnostic {
                            machine: d.machine.clone(),
                            phase: d.error.phase.to_string(),
                            line: d.error.span.line,
                            col: d.error.span.col,
                            message: d.error.message.clone(),
                        })
                        .collect(),
                }
            }
        }
    };
    if let Err(reason) = admission_check(farm, &task, config.quota) {
        return ControlReply::Rejected { reason };
    }
    let seeds = task.num_seeds() as u64;
    match farm.deploy_compiled(task) {
        Ok(plan) => ControlReply::Submitted {
            task: name.to_string(),
            seeds,
            actions: plan.actions.len() as u64,
        },
        Err(e) => ControlReply::Rejected {
            reason: e.to_string(),
        },
    }
}

/// Per-submission resource quota: the task's minimum feasible demand
/// must fit into the live fabric's remaining headroom, scaled by the
/// configured quota, on every resource kind.
fn admission_check(
    farm: &Farm,
    task: &farm_almanac::compile::CompiledTask,
    quota: f64,
) -> Result<(), String> {
    let mut demand = Resources::ZERO;
    for m in &task.machines {
        let per_seed = m
            .util_of(&m.initial_state)
            .min_feasible()
            .map(|(r, _)| r)
            .unwrap_or(Resources::ZERO);
        for _ in 0..m.seeds.len() {
            demand = demand.add(&per_seed);
        }
    }
    let net = farm.network();
    let cordoned: std::collections::BTreeSet<SwitchId> =
        farm.cordoned_switches().into_iter().collect();
    let fenced: std::collections::BTreeSet<SwitchId> = farm.fenced_switches().into_iter().collect();
    let mut headroom = [0f64; 4];
    for id in net.switch_ids() {
        if !net.is_up(id) || !net.is_reachable(id) || cordoned.contains(&id) || fenced.contains(&id)
        {
            continue;
        }
        let cap = net.switch(id).expect("switch exists").effective_resources();
        let used = farm
            .soil(id)
            .map(|s| s.resources_in_use())
            .unwrap_or(Resources::ZERO);
        for (h, (c, u)) in headroom.iter_mut().zip(cap.0.iter().zip(used.0.iter())) {
            *h += c * quota - u;
        }
    }
    for i in 0..4 {
        if demand.0[i] > headroom[i] + 1e-9 {
            return Err(format!(
                "admission: demand {:.1} {} exceeds quota headroom {:.1}",
                demand.0[i], RESOURCE_NAMES[i], headroom[i]
            ));
        }
    }
    Ok(())
}

/// `Checkpoint`: captures every live seed, then — when a checkpoint
/// path is configured — persists the store as a versioned
/// [`VSeedSnapshot`] checkpoint file.
fn checkpoint(farm: &mut Farm, config: &FarmdConfig) -> ControlReply {
    let seeds = farm.checkpoint_seeds() as u64;
    if let Some(path) = &config.checkpoint_path {
        let entries: Vec<(String, VSeedSnapshot)> = farm
            .export_checkpoints()
            .into_iter()
            .map(|(key, snap)| (key.to_string(), VSeedSnapshot::from(snap)))
            .collect();
        if let Err(e) = std::fs::write(path, encode_checkpoint_file(&entries)) {
            return ControlReply::Rejected {
                reason: format!(
                    "checkpointed {seeds} seed(s) but could not write {}: {e}",
                    path.display()
                ),
            };
        }
    }
    ControlReply::Checkpointed { seeds }
}

/// `Restore`: when a checkpoint path is configured and the file exists,
/// reloads it (versioned or pre-versioning legacy layout alike) into
/// the checkpoint store first, then rolls live seeds back. Entries for
/// seeds that no longer exist are loaded but simply never matched.
fn restore(farm: &mut Farm, config: &FarmdConfig) -> ControlReply {
    if let Some(path) = &config.checkpoint_path {
        match std::fs::read(path) {
            Ok(bytes) => match decode_checkpoint_file(&bytes) {
                Ok(entries) => {
                    farm.import_checkpoints(entries.into_iter().filter_map(|(key, snap)| {
                        Some((parse_seed_key(&key)?, snap.into_latest()))
                    }));
                }
                Err(e) => {
                    return ControlReply::Rejected {
                        reason: format!("{}: corrupt checkpoint file: {e}", path.display()),
                    }
                }
            },
            // No file yet: restore from the in-memory store alone.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                return ControlReply::Rejected {
                    reason: format!("{}: {e}", path.display()),
                }
            }
        }
    }
    ControlReply::Restored {
        seeds: farm.restore_seeds() as u64,
    }
}

/// `ListSeeds`: the full listing, or — when the op carries a cursor —
/// one page of it. The listing is sorted by seed key either way, so
/// concatenating pages reproduces the unpaginated reply exactly.
///
/// An unpaginated reply carries `next_index == total == 0`, keeping its
/// encoding byte-identical to the pre-cursor revision for old clients.
fn list_seeds(farm: &Farm, from_index: u64, limit: u64) -> ControlReply {
    let mut statuses = farm.seed_statuses();
    statuses.sort_by_cached_key(|s| s.key.to_string());
    if from_index == 0 && limit == 0 {
        return ControlReply::Seeds {
            seeds: statuses.iter().map(descriptor).collect(),
            next_index: 0,
            total: 0,
        };
    }
    let total = statuses.len() as u64;
    let start = from_index.min(total);
    let end = if limit == 0 {
        total
    } else {
        start.saturating_add(limit).min(total)
    };
    let seeds = statuses[start as usize..end as usize]
        .iter()
        .map(descriptor)
        .collect();
    ControlReply::Seeds {
        seeds,
        next_index: if end < total { end } else { 0 },
        total,
    }
}

fn descriptor(s: &SeedStatus) -> SeedDescriptor {
    SeedDescriptor {
        key: s.key.to_string(),
        task: s.key.task.clone(),
        machine: s.machine.clone(),
        switch: s.switch.0,
        state: s.state.clone(),
        alloc: s.alloc.0,
    }
}

/// Parses the `task/m<i>/s<j>` display form of a [`SeedKey`].
fn parse_seed_key(s: &str) -> Option<SeedKey> {
    let (rest, seed) = s.rsplit_once("/s")?;
    let (task, machine) = rest.rsplit_once("/m")?;
    Some(SeedKey {
        task: task.to_string(),
        machine: machine.parse().ok()?,
        seed: seed.parse().ok()?,
    })
}

fn describe(farm: &Farm, key: &str) -> ControlReply {
    let Some(parsed) = parse_seed_key(key) else {
        return ControlReply::Rejected {
            reason: format!("bad seed key `{key}` (want task/m<i>/s<j>)"),
        };
    };
    let Some(status) = farm.seed_statuses().into_iter().find(|s| s.key == parsed) else {
        return ControlReply::Rejected {
            reason: format!("no seed `{key}`"),
        };
    };
    let vars = farm.seed_vars(&parsed).unwrap_or_default();
    ControlReply::Seed {
        desc: descriptor(&status),
        vars,
    }
}

/// The `Stats` body: run summary plus the counter map (so `ctl.*` and
/// `farm.*` audit counters are one query away). A cursor on the op
/// pages through the counter map (it dominates the body size — one
/// entry per distinct metric); the page window plus
/// `counters_next_index` / `counters_total` fields appear only on
/// paginated requests, so the unpaginated body is unchanged.
fn stats_json(farm: &Farm, from_index: u64, limit: u64) -> String {
    let snap = farm.telemetry().snapshot();
    let paginated = from_index != 0 || limit != 0;
    let counters_total = snap.counters.len() as u64;
    let start = from_index.min(counters_total);
    let end = if !paginated || limit == 0 {
        counters_total
    } else {
        start.saturating_add(limit).min(counters_total)
    };
    let mut counters = Obj::new();
    // BTreeMap iteration is key-sorted, so pages tile deterministically.
    for (k, v) in snap
        .counters
        .iter()
        .skip(start as usize)
        .take((end - start) as usize)
    {
        counters = counters.num(k, *v);
    }
    let tasks = array(
        farm.seeder()
            .task_names()
            .iter()
            .map(|t| format!("\"{}\"", crate::json::escape(t))),
    );
    let cordoned = array(farm.cordoned_switches().iter().map(|s| s.0.to_string()));
    let fenced = array(farm.fenced_switches().iter().map(|s| s.0.to_string()));
    let mut obj = Obj::new()
        .num("now_ns", farm.now().as_nanos())
        .raw("tasks", &tasks)
        .num("seeds", farm.deployed_seeds() as u64)
        .num("switches", farm.network().switch_ids().len() as u64)
        .raw("cordoned", &cordoned)
        .raw("fenced", &fenced)
        .num("recovery_pending", farm.recovery_pending() as u64)
        .raw("counters", &counters.finish());
    if paginated {
        obj = obj
            .num(
                "counters_next_index",
                if end < counters_total { end } else { 0 },
            )
            .num("counters_total", counters_total);
    }
    obj.finish()
}

/// The `MetricsDump` body: legacy compat view plus the whole registry
/// (counters, gauges, histograms).
fn metrics_json(farm: &Farm) -> String {
    let m = farm.metrics();
    let compat = Obj::new()
        .num("collector_messages", m.collector_messages)
        .num("collector_bytes", m.collector_bytes)
        .num("seed_messages", m.seed_messages)
        .num("seed_bytes", m.seed_bytes)
        .num("control_messages", m.control_messages)
        .num("control_bytes", m.control_bytes)
        .num("migrations", m.migrations)
        .num("migration_bytes", m.migration_bytes)
        .num("seed_errors", m.seed_errors)
        .num("replans", m.replans)
        .num("net_dead_letters", m.net_dead_letters)
        .num("transport_fallbacks", m.transport_fallbacks)
        .num("total_network_bytes", m.total_network_bytes())
        .finish();
    Obj::new()
        .raw("metrics", &compat)
        .raw("registry", &snapshot_json(&farm.telemetry().snapshot()))
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_keys_round_trip_their_display_form() {
        let key = SeedKey {
            task: "hh-v2".into(),
            machine: 1,
            seed: 12,
        };
        assert_eq!(parse_seed_key(&key.to_string()), Some(key));
        assert!(parse_seed_key("nope").is_none());
        assert!(parse_seed_key("t/mX/s1").is_none());
    }
}
