//! The farmd daemon core: a [`Farm`] hosted behind a farm-net
//! [`NetServer`], serving the versioned [`ControlOp`] surface.
//!
//! Threading model: the farm is not shared — it lives on one
//! "farmd-core" thread that owns it outright. Connection handler
//! threads translate each [`Frame::Control`] into a request over an
//! mpsc channel and block (bounded) for the reply; the core serves ops
//! strictly in arrival order, so every operation observes a consistent
//! farm. The core's `recv_timeout` doubles as the periodic-replan
//! ticker.
//!
//! Every op lands in the audit trail: `ctl.ops`, `ctl.op.<kind>` and
//! `ctl.rejected` counters, the `ctl.op_latency_us` histogram, and one
//! [`Event::ControlOp`] per op through the farm's event sinks.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use farm_almanac::compile::compile_task_with_diagnostics;
use farm_core::prelude::*;
use farm_core::seeder::SeedKey;
use farm_net::{
    decode_checkpoint_any, encode_checkpoint_doc, CheckpointDoc, ControlOp, ControlReply,
    Diagnostic, Envelope, Frame, NetServer, SeedDescriptor, VSeedSnapshot,
};
use farm_netsim::controller::SdnController;
use farm_netsim::switch::{Resources, SwitchModel};
use farm_netsim::types::SwitchId;

use crate::ckpt;
use crate::client::CtlClient;
use crate::config::{FarmdConfig, FedMembership};
use crate::json::{array, snapshot_json, Obj};

/// Human names of the four resource kinds, in `Resources` index order.
const RESOURCE_NAMES: [&str; 4] = ["vcpu", "ram_mb", "tcam", "pcie_poll"];

/// One queued control request: the op plus the handler's reply slot.
struct CoreMsg {
    op: ControlOp,
    reply: mpsc::Sender<ControlReply>,
}

/// A running farmd instance: the hosted farm's core thread plus the
/// listening control endpoint.
pub struct Farmd {
    server: NetServer,
    core: Option<thread::JoinHandle<()>>,
    fed_reg: Option<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shutdown_drain: Duration,
    telemetry: Telemetry,
}

impl Farmd {
    /// Builds the farm, starts the core thread, binds the control
    /// endpoint.
    ///
    /// # Errors
    ///
    /// Bind failures, or the core thread dying during construction.
    pub fn start(config: FarmdConfig) -> io::Result<Farmd> {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<CoreMsg>();
        let (ready_tx, ready_rx) = mpsc::channel::<Telemetry>();
        let core = {
            let config = config.clone();
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("farmd-core".into())
                .spawn(move || core_loop(config, rx, ready_tx, stop))?
        };
        let telemetry = ready_rx
            .recv()
            .map_err(|_| io::Error::other("farmd core died during startup"))?;
        let handler = {
            // mpsc senders are Send but not Sync; handlers clone one out
            // of the mutex per request.
            let tx = Mutex::new(tx);
            let stop = Arc::clone(&stop);
            let wait = config.request_timeout;
            Arc::new(move |env: &Envelope| -> Option<Frame> {
                let Frame::Control { op } = &env.frame else {
                    return None;
                };
                if stop.load(Ordering::Relaxed) {
                    return Some(Frame::Error {
                        message: "farmd is shutting down".into(),
                    });
                }
                let (reply_tx, reply_rx) = mpsc::channel();
                let sender = tx.lock().expect("ctl sender lock").clone();
                if sender
                    .send(CoreMsg {
                        op: op.clone(),
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    return Some(Frame::Error {
                        message: "farmd core is gone".into(),
                    });
                }
                match reply_rx.recv_timeout(wait) {
                    Ok(reply) => Some(Frame::ControlReply { reply }),
                    Err(_) => Some(Frame::Error {
                        message: "farmd core did not answer in time".into(),
                    }),
                }
            })
        };
        let server = NetServer::bind(config.listen, &telemetry, handler)?;
        let fed_reg = match &config.fed {
            Some(fed) => {
                let fed = fed.clone();
                let local = server.local_addr();
                let switches = (config.spines + config.leaves) as u64;
                let quota = config.quota;
                let stop = Arc::clone(&stop);
                let telemetry = telemetry.clone();
                Some(
                    thread::Builder::new()
                        .name("farmd-fed-reg".into())
                        .spawn(move || {
                            registration_loop(fed, local, switches, quota, stop, telemetry)
                        })?,
                )
            }
            None => None,
        };
        Ok(Farmd {
            server,
            core: Some(core),
            fed_reg,
            stop,
            shutdown_drain: config.shutdown_drain,
            telemetry,
        })
    }

    /// The bound control address (the chosen port when listening on :0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The hosted farm's telemetry handle (shared with the transport).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// True once a shutdown op was served (or [`Farmd::stop`] ran).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Blocks until a `Shutdown` op arrives, then drains and tears the
    /// endpoint down.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            thread::sleep(Duration::from_millis(20));
        }
        self.teardown();
    }

    /// Initiates shutdown locally (equivalent to serving a `Shutdown`
    /// op) and tears down.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Let in-flight replies reach their sockets before severing.
        thread::sleep(self.shutdown_drain);
        self.server.shutdown();
        if let Some(h) = self.core.take() {
            let _ = h.join();
        }
        if let Some(h) = self.fed_reg.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Farmd {
    fn drop(&mut self) {
        if self.core.is_some() {
            self.teardown();
        }
    }
}

/// The pod side of federation membership: register with the fedd
/// coordinator, then heartbeat it until shutdown. A rejected heartbeat
/// means the coordinator forgot us (it restarted), so the loop falls
/// back to registration; transport errors back off and retry — the
/// daemon keeps serving its own fabric whether or not the coordinator
/// is reachable.
fn registration_loop(
    fed: FedMembership,
    local: SocketAddr,
    switches: u64,
    quota: f64,
    stop: Arc<AtomicBool>,
    telemetry: Telemetry,
) {
    let advertise = fed.advertise.unwrap_or(local);
    let registrations = telemetry.counter("fed.pod.registrations");
    let beats = telemetry.counter("fed.pod.heartbeats");
    let errors = telemetry.counter("fed.pod.errors");
    let registered = telemetry.gauge("fed.pod.registered");
    let mut seq = 0u64;
    // Sleep in small steps so shutdown is never blocked on a beat gap.
    let nap = |total: Duration| {
        let step = Duration::from_millis(20);
        let mut left = total;
        while left > Duration::ZERO && !stop.load(Ordering::Relaxed) {
            let d = left.min(step);
            thread::sleep(d);
            left = left.saturating_sub(d);
        }
    };
    'session: while !stop.load(Ordering::Relaxed) {
        let client = CtlClient::connect_as(
            fed.coordinator,
            &format!("farmd/{}", fed.pod_name),
            Duration::from_secs(5),
        );
        match client.op(ControlOp::RegisterPod {
            name: fed.pod_name.clone(),
            addr: advertise.to_string(),
            switches,
            quota,
        }) {
            Ok(ControlReply::PodRegistered { .. }) => {
                registrations.inc();
                registered.set(1.0);
            }
            Ok(_) | Err(_) => {
                errors.inc();
                registered.set(0.0);
                nap(fed.heartbeat);
                continue 'session;
            }
        }
        while !stop.load(Ordering::Relaxed) {
            nap(fed.heartbeat);
            if stop.load(Ordering::Relaxed) {
                break 'session;
            }
            seq += 1;
            match client.op(ControlOp::PodHeartbeat {
                name: fed.pod_name.clone(),
                seq,
            }) {
                Ok(ControlReply::Ok) => beats.inc(),
                // Unknown pod (coordinator restarted) or transport
                // trouble: start a fresh session and re-register.
                Ok(_) | Err(_) => {
                    errors.inc();
                    registered.set(0.0);
                    continue 'session;
                }
            }
        }
    }
    registered.set(0.0);
}

/// The daemon's single-threaded heart: the farm it owns, the catalog of
/// submitted program sources (persisted into checkpoints so a cold
/// restart can recompile them), and the durability telemetry.
struct Core {
    farm: Farm,
    config: FarmdConfig,
    /// Source of every submitted task, by name — what `FARMCKP2`
    /// program records are written from.
    programs: BTreeMap<String, String>,
}

impl Core {
    fn telemetry(&self) -> Telemetry {
        self.farm.telemetry().clone()
    }
}

/// The deterministic churn plan `[faults] seed` asks for: crashes and
/// PCIe degradation over the leaf tier (leaves host seeds; leaf↔leaf
/// links don't exist in a spine-leaf fabric, so link flaps are left
/// out). Faults begin `fault_start` into virtual time — the warmup
/// window that lets the catalog load on a healthy fabric — and extend
/// `fault_horizon` beyond that.
fn churn_plan(config: &FarmdConfig, seed: u64) -> FaultPlan {
    let leaves: Vec<SwitchId> = (config.spines..config.spines + config.leaves)
        .map(|i| SwitchId(i as u32))
        .collect();
    let start = Time::ZERO + Dur::from_nanos(config.fault_start.as_nanos() as u64);
    FaultPlan::churn(
        seed,
        &leaves,
        start,
        start + Dur::from_nanos(config.fault_horizon.as_nanos() as u64),
        ChurnProfile {
            mean_gap: Dur::from_nanos(config.fault_mean_gap.as_nanos() as u64),
            weights: [2, 0, 1],
            ..ChurnProfile::default()
        },
    )
}

/// The core thread: owns the farm, serves ops in order, ticks replans,
/// periodic checkpoints and virtual time; on shutdown it drains queued
/// ops and writes a final checkpoint.
fn core_loop(
    config: FarmdConfig,
    rx: mpsc::Receiver<CoreMsg>,
    ready: mpsc::Sender<Telemetry>,
    stop: Arc<AtomicBool>,
) {
    let topo = Topology::spine_leaf(
        config.spines,
        config.leaves,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let mut builder = Farm::builder(topo).with_placement_threads(config.placement_threads);
    if let Some(seed) = config.fault_seed {
        builder = builder.with_fault_plan(churn_plan(&config, seed));
    }
    if let Some(path) = &config.event_log {
        match std::fs::File::create(path) {
            Ok(f) => {
                builder = builder.with_sink(Arc::new(JsonLinesSink::new(Box::new(
                    io::BufWriter::new(f),
                ))));
            }
            Err(e) => eprintln!("farmd: cannot open event log {}: {e}", path.display()),
        }
    }
    let farm = builder.build();
    let telemetry = farm.telemetry().clone();
    let mut core = Core {
        farm,
        config,
        programs: BTreeMap::new(),
    };
    if core.config.restore_on_boot && core.config.checkpoint_path.is_some() {
        match restore(&mut core) {
            ControlReply::Restored { seeds, skipped } if seeds > 0 || skipped > 0 => {
                eprintln!("farmd: boot restore: {seeds} seed(s) restored, {skipped} skipped");
            }
            ControlReply::Rejected { reason } => {
                eprintln!("farmd: boot restore failed: {reason}");
            }
            _ => {}
        }
    }
    if ready.send(telemetry.clone()).is_err() {
        return;
    }
    let ops = telemetry.counter("ctl.ops");
    let rejected = telemetry.counter("ctl.rejected");
    let latency = telemetry.latency_histogram("ctl.op_latency_us");
    let booted = Instant::now();
    let mut last_replan = Instant::now();
    let mut last_ckpt = Instant::now();
    let mut last_tick = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(CoreMsg { op, reply }) => {
                let started = Instant::now();
                let kind = op.kind();
                ops.inc();
                telemetry.counter(&format!("ctl.op.{kind}")).inc();
                let out = serve_op(&mut core, &op);
                let elapsed_us = started.elapsed().as_micros() as u64;
                latency.record(elapsed_us);
                let outcome = match &out {
                    ControlReply::Rejected { .. } | ControlReply::CompileFailed { .. } => {
                        rejected.inc();
                        "rejected"
                    }
                    _ => "ok",
                };
                let at_ns = core.farm.now().as_nanos();
                telemetry.emit_with(|| Event::ControlOp {
                    at_ns,
                    op: kind.to_string(),
                    outcome: outcome.to_string(),
                    elapsed_us,
                });
                let is_shutdown = matches!(op, ControlOp::Shutdown);
                let _ = reply.send(out);
                if is_shutdown {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Farmd was dropped without a shutdown op.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        if let Some(every) = core.config.tick_interval {
            // Advance virtual time in wall-clock lockstep so heartbeats,
            // fault injection and recovery run while the daemon idles;
            // `tick_interval` bounds how stale the virtual clock runs.
            if last_tick.elapsed() >= every {
                last_tick = Instant::now();
                let target = Time::ZERO + Dur::from_nanos(booted.elapsed().as_nanos() as u64);
                core.farm.advance(target);
            }
        }
        if let Some(every) = core.config.replan_interval {
            if last_replan.elapsed() >= every {
                last_replan = Instant::now();
                let _ = core.farm.replan();
            }
        }
        if let Some(every) = core.config.checkpoint_interval {
            if last_ckpt.elapsed() >= every {
                last_ckpt = Instant::now();
                checkpoint(&mut core);
            }
        }
    }
    // Shutdown: serve whatever the handlers already queued (they block
    // on these replies), then make the state durable one last time.
    while let Ok(CoreMsg { op, reply }) = rx.try_recv() {
        let out = match op {
            ControlOp::Shutdown => ControlReply::Ok,
            op => serve_op(&mut core, &op),
        };
        let _ = reply.send(out);
    }
    if core.config.checkpoint_path.is_some() {
        checkpoint(&mut core);
    }
}

/// Serves one control op against the farm. Total: every failure becomes
/// a structured reply, never a panic.
fn serve_op(core: &mut Core, op: &ControlOp) -> ControlReply {
    let farm = &mut core.farm;
    match op {
        ControlOp::SubmitProgram { name, source } => submit(core, name, source),
        ControlOp::ListSeeds { from_index, limit } => list_seeds(farm, *from_index, *limit),
        ControlOp::DescribeSeed { key } => describe(farm, key),
        ControlOp::Stats { from_index, limit } => ControlReply::Json {
            body: stats_json(farm, *from_index, *limit),
        },
        ControlOp::MetricsDump => ControlReply::Json {
            body: metrics_json(farm),
        },
        ControlOp::Drain { switch } => match farm.drain(SwitchId(*switch)) {
            Ok((_, evacuated)) => ControlReply::Drained {
                switch: *switch,
                evacuated: evacuated as u64,
            },
            Err(e) => ControlReply::Rejected {
                reason: e.to_string(),
            },
        },
        ControlOp::Uncordon { switch } => match farm.uncordon(SwitchId(*switch)) {
            Ok(_) => ControlReply::Ok,
            Err(e) => ControlReply::Rejected {
                reason: e.to_string(),
            },
        },
        ControlOp::Replan => match farm.replan() {
            Ok(plan) => ControlReply::Replanned {
                actions: plan.actions.len() as u64,
                dropped_tasks: plan.dropped_tasks.len() as u64,
            },
            Err(e) => ControlReply::Rejected {
                reason: e.to_string(),
            },
        },
        ControlOp::Checkpoint => checkpoint(core),
        ControlOp::Restore => restore(core),
        ControlOp::Shutdown => ControlReply::Ok,
        ControlOp::ExportTask { task } => export_task(core, task),
        ControlOp::SubmitWithSnapshot {
            name,
            source,
            seeds,
        } => submit_with_snapshot(core, name, source, seeds),
        ControlOp::RemoveTask { task } => {
            if !farm.seeder().task_names().iter().any(|t| t == task) {
                return ControlReply::Rejected {
                    reason: format!("no task `{task}`"),
                };
            }
            match farm.remove_task(task) {
                Ok(()) => {
                    core.programs.remove(task);
                    ControlReply::Ok
                }
                Err(e) => ControlReply::Rejected {
                    reason: e.to_string(),
                },
            }
        }
        // Coordinator-side ops: a pod answers with a rejection (not a
        // wire error) so a misdirected farmctl gets a readable reason.
        ControlOp::RegisterPod { .. }
        | ControlOp::PodHeartbeat { .. }
        | ControlOp::ListPods
        | ControlOp::MigrateTask { .. } => ControlReply::Rejected {
            reason: format!("`{}` is a coordinator op; this is a pod (farmd)", op.kind()),
        },
    }
}

/// `ExportTask` (the migration export leg): checkpoint the task's live
/// seeds and hand back its program source plus every snapshot. The task
/// keeps running — removal is a separate op, so a failed import on the
/// target pod leaves the source pod intact.
fn export_task(core: &mut Core, task: &str) -> ControlReply {
    if !core.farm.seeder().task_names().iter().any(|t| t == task) {
        return ControlReply::Rejected {
            reason: format!("no task `{task}`"),
        };
    }
    let Some(source) = core.programs.get(task).cloned() else {
        return ControlReply::Rejected {
            reason: format!("task `{task}` has no recorded program source"),
        };
    };
    core.farm.checkpoint_seeds();
    let seeds = core
        .farm
        .export_checkpoints()
        .into_iter()
        .filter(|(key, _)| key.task == task)
        .map(|(key, snap)| (key.to_string(), snap))
        .collect();
    ControlReply::TaskExport { source, seeds }
}

/// `SubmitWithSnapshot` (the migration import leg): a normal submit —
/// same name rules, admission control and compilation — then the
/// carried snapshots land in the checkpoint store and exactly this
/// task's seeds roll forward to them.
fn submit_with_snapshot(
    core: &mut Core,
    name: &str,
    source: &str,
    seeds: &[(String, farm_net::SeedSnapshot)],
) -> ControlReply {
    let submitted = submit(core, name, source);
    if !matches!(submitted, ControlReply::Submitted { .. }) {
        return submitted;
    }
    core.farm.import_checkpoints(
        seeds
            .iter()
            .filter_map(|(key, snap)| parse_seed_key(key).map(|parsed| (parsed, snap.clone()))),
    );
    core.farm.restore_seeds_for(name);
    submitted
}

/// `SubmitProgram`: size gate → server-side compile with collected
/// diagnostics → admission control → deploy.
fn submit(core: &mut Core, name: &str, source: &str) -> ControlReply {
    let Core {
        farm,
        config,
        programs,
    } = core;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return ControlReply::Rejected {
            reason: format!("bad task name `{name}` (want [A-Za-z0-9_-]+)"),
        };
    }
    if farm.seeder().task_names().iter().any(|t| t == name) {
        return ControlReply::Rejected {
            reason: format!("task `{name}` is already deployed"),
        };
    }
    if source.len() > config.max_program_bytes {
        return ControlReply::Rejected {
            reason: format!(
                "program of {} bytes exceeds the {}-byte submission cap",
                source.len(),
                config.max_program_bytes
            ),
        };
    }
    let task = {
        let ctl = SdnController::new(farm.network().topology());
        let report = compile_task_with_diagnostics(name, source, &BTreeMap::new(), &ctl);
        match report.task {
            Some(task) => task,
            None => {
                return ControlReply::CompileFailed {
                    diagnostics: report
                        .diagnostics
                        .iter()
                        .map(|d| Diagnostic {
                            machine: d.machine.clone(),
                            phase: d.error.phase.to_string(),
                            line: d.error.span.line,
                            col: d.error.span.col,
                            message: d.error.message.clone(),
                        })
                        .collect(),
                }
            }
        }
    };
    if let Err(reason) = admission_check(farm, &task, config.quota) {
        return ControlReply::Rejected { reason };
    }
    let seeds = task.num_seeds() as u64;
    match farm.deploy_compiled(task) {
        Ok(plan) => {
            // Remember the source: checkpoints persist the catalog so a
            // restarted daemon can recompile and re-place every task.
            programs.insert(name.to_string(), source.to_string());
            ControlReply::Submitted {
                task: name.to_string(),
                seeds,
                actions: plan.actions.len() as u64,
            }
        }
        Err(e) => ControlReply::Rejected {
            reason: e.to_string(),
        },
    }
}

/// Per-submission resource quota: the task's minimum feasible demand
/// must fit into the live fabric's remaining headroom, scaled by the
/// configured quota, on every resource kind.
fn admission_check(
    farm: &Farm,
    task: &farm_almanac::compile::CompiledTask,
    quota: f64,
) -> Result<(), String> {
    let mut demand = Resources::ZERO;
    for m in &task.machines {
        let per_seed = m
            .util_of(&m.initial_state)
            .min_feasible()
            .map(|(r, _)| r)
            .unwrap_or(Resources::ZERO);
        for _ in 0..m.seeds.len() {
            demand = demand.add(&per_seed);
        }
    }
    let net = farm.network();
    let cordoned: std::collections::BTreeSet<SwitchId> =
        farm.cordoned_switches().into_iter().collect();
    let fenced: std::collections::BTreeSet<SwitchId> = farm.fenced_switches().into_iter().collect();
    let mut headroom = [0f64; 4];
    for id in net.switch_ids() {
        if !net.is_up(id) || !net.is_reachable(id) || cordoned.contains(&id) || fenced.contains(&id)
        {
            continue;
        }
        let cap = net.switch(id).expect("switch exists").effective_resources();
        let used = farm
            .soil(id)
            .map(|s| s.resources_in_use())
            .unwrap_or(Resources::ZERO);
        for (h, (c, u)) in headroom.iter_mut().zip(cap.0.iter().zip(used.0.iter())) {
            *h += c * quota - u;
        }
    }
    for i in 0..4 {
        if demand.0[i] > headroom[i] + 1e-9 {
            return Err(format!(
                "admission: demand {:.1} {} exceeds quota headroom {:.1}",
                demand.0[i], RESOURCE_NAMES[i], headroom[i]
            ));
        }
    }
    Ok(())
}

/// `Checkpoint`: captures every live seed, then — when a checkpoint
/// path is configured — persists the program catalog plus every
/// snapshot as a `FARMCKP2` file, atomically (temp + fsync + rename).
///
/// Persistence failure is *partial success*, not rejection: the
/// in-memory checkpoint already happened, so the reply carries the
/// seed count alongside `persist_error` instead of discarding it.
fn checkpoint(core: &mut Core) -> ControlReply {
    let seeds = core.farm.checkpoint_seeds() as u64;
    let mut persist_error = None;
    if let Some(path) = &core.config.checkpoint_path {
        // Drop catalog entries whose task has since been evicted or
        // drained away entirely; the file mirrors the live farm.
        let live = core.farm.seeder().task_names();
        core.programs
            .retain(|name, _| live.iter().any(|t| t == name));
        let doc = CheckpointDoc {
            programs: core
                .programs
                .iter()
                .map(|(n, s)| (n.clone(), s.clone()))
                .collect(),
            seeds: core
                .farm
                .export_checkpoints()
                .into_iter()
                .map(|(key, snap)| (key.to_string(), VSeedSnapshot::from(snap)))
                .collect(),
        };
        let bytes = encode_checkpoint_doc(&doc);
        let telemetry = core.telemetry();
        let started = Instant::now();
        match ckpt::write_atomic(path, &bytes) {
            Ok(()) => {
                telemetry
                    .latency_histogram("ckpt.write_us")
                    .record(started.elapsed().as_micros() as u64);
                telemetry.gauge("ckpt.bytes").set(bytes.len() as f64);
                telemetry.counter("ckpt.writes").inc();
            }
            Err(e) => {
                telemetry.counter("ckpt.write_errors").inc();
                persist_error = Some(format!("could not write {}: {e}", path.display()));
            }
        }
    }
    ControlReply::Checkpointed {
        seeds,
        persist_error,
    }
}

/// `Restore`: when a checkpoint path is configured and the file exists,
/// reloads it (any generation: salvageable `FARMCKP2`, strict
/// `FARMCKP1`, pre-versioning legacy). Program records recompile and
/// re-place any task missing from the live catalog — this is what lets
/// a freshly started daemon come back whole — then snapshots land in
/// the checkpoint store and live seeds roll back to them.
///
/// Entries whose seed key no longer parses are counted into `skipped`
/// and the `ctl.restore_skipped` counter instead of vanishing.
fn restore(core: &mut Core) -> ControlReply {
    let telemetry = core.telemetry();
    let mut skipped = 0u64;
    if let Some(path) = core.config.checkpoint_path.clone() {
        match std::fs::read(&path) {
            Ok(bytes) => match decode_checkpoint_any(&bytes) {
                Ok(load) => {
                    if load.salvaged || load.corrupt_records > 0 {
                        let recovered = load.doc.programs.len() + load.doc.seeds.len();
                        telemetry
                            .counter("ckpt.salvaged_entries")
                            .add(recovered as u64);
                        eprintln!(
                            "farmd: checkpoint {} was damaged; salvaged {recovered} record(s), \
                             dropped {}",
                            path.display(),
                            load.corrupt_records
                        );
                    }
                    for (name, source) in &load.doc.programs {
                        redeploy_program(core, name, source);
                    }
                    skipped = import_seed_entries(&mut core.farm, load.doc.seeds);
                }
                Err(e) => {
                    return ControlReply::Rejected {
                        reason: format!("{}: corrupt checkpoint file: {e}", path.display()),
                    }
                }
            },
            // No file yet: restore from the in-memory store alone.
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                return ControlReply::Rejected {
                    reason: format!("{}: {e}", path.display()),
                }
            }
        }
    }
    if skipped > 0 {
        telemetry.counter("ctl.restore_skipped").add(skipped);
    }
    ControlReply::Restored {
        seeds: core.farm.restore_seeds() as u64,
        skipped,
    }
}

/// Loads checkpoint-file seed entries into the farm's checkpoint store,
/// returning how many were dropped for unparseable keys.
fn import_seed_entries(farm: &mut Farm, entries: Vec<(String, VSeedSnapshot)>) -> u64 {
    let mut skipped = 0u64;
    farm.import_checkpoints(entries.into_iter().filter_map(|(key, snap)| {
        let Some(parsed) = parse_seed_key(&key) else {
            skipped += 1;
            return None;
        };
        Some((parsed, snap.into_latest()))
    }));
    skipped
}

/// Recompiles and re-places one program from a checkpoint's catalog
/// records. Already-deployed tasks are left alone (a live `Restore`
/// op), and compile or placement failures are logged, not fatal —
/// crash recovery must restore every task it still can. Admission
/// control is deliberately bypassed: these tasks were admitted before
/// the restart.
fn redeploy_program(core: &mut Core, name: &str, source: &str) {
    if core.farm.seeder().task_names().iter().any(|t| t == name) {
        core.programs
            .entry(name.to_string())
            .or_insert_with(|| source.to_string());
        return;
    }
    let ctl = SdnController::new(core.farm.network().topology());
    let report = compile_task_with_diagnostics(name, source, &BTreeMap::new(), &ctl);
    let Some(task) = report.task else {
        eprintln!("farmd: restore: program `{name}` no longer compiles; skipping");
        return;
    };
    match core.farm.deploy_compiled(task) {
        Ok(_) => {
            core.programs.insert(name.to_string(), source.to_string());
        }
        Err(e) => eprintln!("farmd: restore: cannot re-place `{name}`: {e}"),
    }
}

/// `ListSeeds`: the full listing, or — when the op carries a cursor —
/// one page of it. The listing is sorted by seed key either way, so
/// concatenating pages reproduces the unpaginated reply exactly.
///
/// An unpaginated reply carries `next_index == total == 0`, keeping its
/// encoding byte-identical to the pre-cursor revision for old clients.
fn list_seeds(farm: &Farm, from_index: u64, limit: u64) -> ControlReply {
    let mut statuses = farm.seed_statuses();
    statuses.sort_by_cached_key(|s| s.key.to_string());
    if from_index == 0 && limit == 0 {
        return ControlReply::Seeds {
            seeds: statuses.iter().map(descriptor).collect(),
            next_index: 0,
            total: 0,
        };
    }
    let total = statuses.len() as u64;
    let start = from_index.min(total);
    let end = if limit == 0 {
        total
    } else {
        start.saturating_add(limit).min(total)
    };
    let seeds = statuses[start as usize..end as usize]
        .iter()
        .map(descriptor)
        .collect();
    ControlReply::Seeds {
        seeds,
        next_index: if end < total { end } else { 0 },
        total,
    }
}

fn descriptor(s: &SeedStatus) -> SeedDescriptor {
    SeedDescriptor {
        key: s.key.to_string(),
        task: s.key.task.clone(),
        machine: s.machine.clone(),
        switch: s.switch.0,
        state: s.state.clone(),
        alloc: s.alloc.0,
    }
}

/// Parses the `task/m<i>/s<j>` display form of a [`SeedKey`].
fn parse_seed_key(s: &str) -> Option<SeedKey> {
    let (rest, seed) = s.rsplit_once("/s")?;
    let (task, machine) = rest.rsplit_once("/m")?;
    Some(SeedKey {
        task: task.to_string(),
        machine: machine.parse().ok()?,
        seed: seed.parse().ok()?,
    })
}

fn describe(farm: &Farm, key: &str) -> ControlReply {
    let Some(parsed) = parse_seed_key(key) else {
        return ControlReply::Rejected {
            reason: format!("bad seed key `{key}` (want task/m<i>/s<j>)"),
        };
    };
    let Some(status) = farm.seed_statuses().into_iter().find(|s| s.key == parsed) else {
        return ControlReply::Rejected {
            reason: format!("no seed `{key}`"),
        };
    };
    let vars = farm.seed_vars(&parsed).unwrap_or_default();
    ControlReply::Seed {
        desc: descriptor(&status),
        vars,
    }
}

/// The `Stats` body: run summary plus the counter map (so `ctl.*` and
/// `farm.*` audit counters are one query away). A cursor on the op
/// pages through the counter map (it dominates the body size — one
/// entry per distinct metric); the page window plus
/// `counters_next_index` / `counters_total` fields appear only on
/// paginated requests, so the unpaginated body is unchanged.
fn stats_json(farm: &Farm, from_index: u64, limit: u64) -> String {
    let snap = farm.telemetry().snapshot();
    let paginated = from_index != 0 || limit != 0;
    let counters_total = snap.counters.len() as u64;
    let start = from_index.min(counters_total);
    let end = if !paginated || limit == 0 {
        counters_total
    } else {
        start.saturating_add(limit).min(counters_total)
    };
    let mut counters = Obj::new();
    // BTreeMap iteration is key-sorted, so pages tile deterministically.
    for (k, v) in snap
        .counters
        .iter()
        .skip(start as usize)
        .take((end - start) as usize)
    {
        counters = counters.num(k, *v);
    }
    let tasks = array(
        farm.seeder()
            .task_names()
            .iter()
            .map(|t| format!("\"{}\"", crate::json::escape(t))),
    );
    let cordoned = array(farm.cordoned_switches().iter().map(|s| s.0.to_string()));
    let fenced = array(farm.fenced_switches().iter().map(|s| s.0.to_string()));
    // Planner health at a glance: how often the farm replans, how long a
    // round takes, and whether the incremental solver is actually
    // serving warm rounds or degrading to full recomputes.
    let mut replan = Obj::new()
        .num("replans", snap.counter("farm.replans"))
        .num("replan_delta", snap.counter("farm.replan_delta"))
        .num(
            "delta_fallback_full",
            snap.counter("farm.delta_fallback_full"),
        );
    if let Some(h) = snap.histogram("farm.replan_us") {
        if let Some(p) = h.p50 {
            replan = replan.float("replan_us_p50", p);
        }
        if let Some(p) = h.p95 {
            replan = replan.float("replan_us_p95", p);
        }
    }
    if let Some(h) = snap.histogram("farm.replan_delta_us") {
        if let Some(p) = h.p95 {
            replan = replan.float("replan_delta_us_p95", p);
        }
    }
    let mut obj = Obj::new()
        .num("now_ns", farm.now().as_nanos())
        .raw("tasks", &tasks)
        .num("seeds", farm.deployed_seeds() as u64)
        .num("switches", farm.network().switch_ids().len() as u64)
        .raw("cordoned", &cordoned)
        .raw("fenced", &fenced)
        .num("recovery_pending", farm.recovery_pending() as u64)
        .raw("replan", &replan.finish())
        .raw("counters", &counters.finish());
    if paginated {
        obj = obj
            .num(
                "counters_next_index",
                if end < counters_total { end } else { 0 },
            )
            .num("counters_total", counters_total);
    }
    obj.finish()
}

/// The `MetricsDump` body: legacy compat view plus the whole registry
/// (counters, gauges, histograms).
fn metrics_json(farm: &Farm) -> String {
    let m = farm.metrics();
    let compat = Obj::new()
        .num("collector_messages", m.collector_messages)
        .num("collector_bytes", m.collector_bytes)
        .num("seed_messages", m.seed_messages)
        .num("seed_bytes", m.seed_bytes)
        .num("control_messages", m.control_messages)
        .num("control_bytes", m.control_bytes)
        .num("migrations", m.migrations)
        .num("migration_bytes", m.migration_bytes)
        .num("seed_errors", m.seed_errors)
        .num("replans", m.replans)
        .num("net_dead_letters", m.net_dead_letters)
        .num("transport_fallbacks", m.transport_fallbacks)
        .num("total_network_bytes", m.total_network_bytes())
        .finish();
    Obj::new()
        .raw("metrics", &compat)
        .raw("registry", &snapshot_json(&farm.telemetry().snapshot()))
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_keys_round_trip_their_display_form() {
        let key = SeedKey {
            task: "hh-v2".into(),
            machine: 1,
            seed: 12,
        };
        assert_eq!(parse_seed_key(&key.to_string()), Some(key));
        assert!(parse_seed_key("nope").is_none());
        assert!(parse_seed_key("t/mX/s1").is_none());
    }

    #[test]
    fn stats_body_reports_replan_and_delta_health() {
        let topo = Topology::spine_leaf(
            2,
            3,
            SwitchModel::accton_as7712(),
            SwitchModel::accton_as5712(),
        );
        let mut farm = FarmBuilder::new(topo).build();
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        farm.replan().unwrap(); // a warm round so the delta counters move
        let body = stats_json(&farm, 0, 0);
        for field in [
            "\"replan\":",
            "\"replans\":",
            "\"replan_delta\":",
            "\"delta_fallback_full\":",
            "\"replan_us_p95\":",
        ] {
            assert!(body.contains(field), "stats body missing {field}: {body}");
        }
    }
}
