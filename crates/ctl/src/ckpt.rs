//! Crash-safe checkpoint persistence.
//!
//! The pre-durability writer was a bare `std::fs::write`: a crash (or
//! `SIGKILL`) mid-write left a torn file at the *only* copy of the
//! daemon's state. This module writes checkpoints atomically — the new
//! bytes land in a sibling temp file, are fsynced, and are renamed over
//! the target, so at every instant the checkpoint path holds either the
//! complete previous checkpoint or the complete new one, never a mix.
//!
//! On unix the parent directory is fsynced after the rename, making the
//! name swap itself durable across power loss, not just process death.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temp path the new checkpoint is staged at: same
/// directory (renames must not cross filesystems), name suffixed with
/// the writer's PID so concurrent daemons pointed at the same path
/// cannot trample each other's staging file.
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write to a temp sibling,
/// `fsync`, `rename`, then `fsync` the directory. A reader (or a
/// restarted daemon) can never observe a partially written file through
/// `path` — torn state is confined to the staging file, which a failed
/// attempt leaves behind for the next successful write to replace.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Directory fsync is best-effort: some filesystems refuse it,
        // and the rename itself already happened.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("farm-atomic-{}-{name}", std::process::id()))
    }

    #[test]
    fn write_replaces_previous_content_atomically() {
        let path = scratch("replace");
        let _ = fs::remove_file(&path);
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer payload");
        assert!(
            !staging_path(&path).exists(),
            "staging file must not linger"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn failed_write_leaves_no_staging_file() {
        // A directory that does not exist: File::create fails, and the
        // staging path must not be left behind (it was never created).
        let path = scratch("no-such-dir/file");
        assert!(write_atomic(&path, b"x").is_err());
        assert!(!staging_path(&path).exists());
    }
}
