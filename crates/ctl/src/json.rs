//! Minimal JSON emission for the control surface — dependency-free,
//! write-only. Used for the `Stats` / `MetricsDump` reply bodies and
//! farmctl's `--json` output.

use farm_telemetry::Snapshot;

/// Escapes a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer. Keys are written in call order; the
/// caller guarantees uniqueness.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        &mut self.buf
    }

    pub fn str(mut self, k: &str, v: &str) -> Obj {
        let escaped = format!("\"{}\"", escape(v));
        self.key(k).push_str(&escaped);
        self
    }

    pub fn num(mut self, k: &str, v: u64) -> Obj {
        let s = v.to_string();
        self.key(k).push_str(&s);
        self
    }

    pub fn float(mut self, k: &str, v: f64) -> Obj {
        let s = if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        };
        self.key(k).push_str(&s);
        self
    }

    /// Inserts a pre-rendered JSON value (object, array, ...).
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.key(k).push_str(v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Renders a JSON array from pre-rendered element values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// A full telemetry [`Snapshot`] as one JSON object: counters and gauges
/// as maps, histograms as `{count, sum, max, p50, p95, p99}` objects.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut counters = Obj::new();
    for (k, v) in &snap.counters {
        counters = counters.num(k, *v);
    }
    let mut gauges = Obj::new();
    for (k, v) in &snap.gauges {
        gauges = gauges.float(k, *v);
    }
    let mut hists = Obj::new();
    for (k, h) in &snap.histograms {
        let mut o = Obj::new()
            .num("count", h.count)
            .num("sum", h.sum)
            .num("max", h.max);
        if let Some(p) = h.p50 {
            o = o.float("p50", p);
        }
        if let Some(p) = h.p95 {
            o = o.float("p95", p);
        }
        if let Some(p) = h.p99 {
            o = o.float("p99", p);
        }
        hists = hists.raw(k, &o.finish());
    }
    Obj::new()
        .raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &hists.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let inner = Obj::new().num("n", 3).finish();
        let out = Obj::new()
            .str("name", "x\"y")
            .raw("inner", &inner)
            .raw("list", &array(["1".into(), "\"two\"".into()]))
            .float("q", 0.5)
            .finish();
        assert_eq!(
            out,
            r#"{"name":"x\"y","inner":{"n":3},"list":[1,"two"],"q":0.5}"#
        );
    }

    #[test]
    fn snapshot_serializes_all_instrument_kinds() {
        let t = farm_telemetry::Telemetry::new();
        t.counter("ctl.ops").add(2);
        t.latency_histogram("ctl.op_latency_us").record(40);
        let s = snapshot_json(&t.snapshot());
        assert!(s.contains(r#""ctl.ops":2"#), "{s}");
        assert!(s.contains(r#""ctl.op_latency_us":{"count":1"#), "{s}");
    }
}
