//! Federation end-to-end: three real `farmd` pods behind one real
//! `fedd` coordinator, all over loopback TCP.
//!
//! The flow exercises every coordinator capability the design promises:
//!
//! * pods register sequentially and receive contiguous global bases;
//! * a spanning submit splits into per-pod sub-deployments with
//!   localized switch ids;
//! * a single-pod submit routes verbatim;
//! * cross-pod migration moves a task's seeds byte-identically
//!   (checkpoint export → submit-with-snapshot import → source removal);
//! * federated Stats equals the sum of the pods' own Stats;
//! * SIGKILLing a pod degrades federated reads to the survivors without
//!   wedging the coordinator.
//!
//! When `FED_STATS_OUT` is set, the post-kill federated stats body is
//! written there (the CI soak job uploads it as an artifact).

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::Child;
use std::time::Duration;

use farm_ctl::CtlClient;
use farm_fed::jsonval;
use farm_net::{ControlOp, ControlReply};

#[path = "util/mod.rs"]
mod util;

/// Fabric shape per pod: 1 spine + 3 leaves = 4 switches, so the
/// three-pod federation spans global switch ids 0..12 with bases
/// 0 / 4 / 8.
const SPINES: usize = 1;
const LEAVES: usize = 3;
const POD_SWITCHES: u64 = (SPINES + LEAVES) as u64;

/// A machine that freezes itself on its first poll round: `done` has
/// no poll handler, so once a seed transits, its variables never move
/// again. That makes "migration preserves the variables byte for byte"
/// a deterministic assertion instead of a race against the tick loop.
fn freezer_machine(places: &str) -> String {
    format!(
        "machine Frozen {{\n  \
           {places}\n  \
           poll pollStats = Poll {{ .ival = 10, .what = port ANY }};\n  \
           long polls = 0;\n  \
           long seen = 0;\n  \
           state run {{\n    \
             util (res) {{ if (res.vCPU >= 0) then {{ return 1; }} }}\n    \
             when (pollStats as stats) do {{\n      \
               polls = polls + 1;\n      \
               seen = seen + list_len(stats);\n      \
               transit done;\n    \
             }}\n  \
           }}\n  \
           state done {{\n    \
             util (res) {{ return 1; }}\n  \
           }}\n}}\n"
    )
}

fn spawn_fedd(config_body: String) -> (Child, SocketAddr) {
    let cfg = util::write_config("fedd.toml", config_body);
    util::spawn_daemon(
        &util::locate_bin("fedd", option_env!("CARGO_BIN_EXE_fedd")),
        &cfg,
    )
}

fn spawn_pod(name: &str, coordinator: SocketAddr) -> (Child, SocketAddr) {
    let cfg = util::write_config(
        &format!("pod-{name}.toml"),
        format!(
            "[server]\nlisten = \"127.0.0.1:0\"\nshutdown_drain_ms = 20\n\
             [farm]\nspines = {SPINES}\nleaves = {LEAVES}\ntick_interval_ms = 5\n\
             [fed]\ncoordinator = \"{coordinator}\"\npod_name = \"{name}\"\n\
             heartbeat_ms = 100\n"
        ),
    );
    util::spawn_daemon(
        &util::locate_bin("farmd", option_env!("CARGO_BIN_EXE_farmd")),
        &cfg,
    )
}

fn rpc(client: &CtlClient, op: ControlOp) -> ControlReply {
    client.op(op).expect("control rpc")
}

/// ListPods as a name → (base, live) map.
fn pods_view(fed: &CtlClient) -> BTreeMap<String, (u64, bool)> {
    match rpc(fed, ControlOp::ListPods) {
        ControlReply::Pods { pods } => pods
            .into_iter()
            .map(|p| (p.name, (p.base, p.live)))
            .collect(),
        other => panic!("list-pods answered {other:?}"),
    }
}

/// Seed keys a daemon reports, via the cursorless full listing.
fn seed_keys(client: &CtlClient) -> Vec<String> {
    match rpc(client, ControlOp::list_all()) {
        ControlReply::Seeds { seeds, .. } => seeds.into_iter().map(|s| s.key).collect(),
        other => panic!("list-seeds answered {other:?}"),
    }
}

/// Full seed detail: (descriptor-switch, state, vars).
fn describe(client: &CtlClient, key: &str) -> (u32, String, Vec<(String, String)>) {
    match rpc(
        client,
        ControlOp::DescribeSeed {
            key: key.to_string(),
        },
    ) {
        ControlReply::Seed { desc, vars } => (desc.switch, desc.state, vars),
        other => panic!("describe {key} answered {other:?}"),
    }
}

/// Stats body as parsed JSON.
fn stats_doc(client: &CtlClient) -> jsonval::Jv {
    match rpc(client, ControlOp::stats_all()) {
        ControlReply::Json { body } => {
            jsonval::parse(&body).unwrap_or_else(|e| panic!("stats body {body}: {e}"))
        }
        other => panic!("stats answered {other:?}"),
    }
}

fn stat_u64(doc: &jsonval::Jv, field: &str) -> u64 {
    doc.get(field)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("stats field `{field}` missing or not integral"))
}

fn graceful_shutdown(client: &CtlClient, child: &mut Child, who: &str) {
    match rpc(client, ControlOp::Shutdown) {
        ControlReply::Ok => {}
        other => panic!("{who} shutdown answered {other:?}"),
    }
    let status = util::wait_exit(child, who);
    assert!(status.success(), "{who} exit after shutdown: {status:?}");
}

#[test]
fn three_pod_federation_spans_migrates_and_survives_a_pod_kill() {
    // --- Boot: coordinator first, then pods one at a time so the
    // registration order (and with it the base layout) is pinned.
    let (mut fedd, fed_addr) = spawn_fedd(
        "[server]\nlisten = \"127.0.0.1:0\"\nshutdown_drain_ms = 20\n\
         [fed]\nliveness_timeout_ms = 1000\npod_timeout_ms = 2000\n"
            .into(),
    );
    let fed = CtlClient::connect(fed_addr);
    assert!(fed.wait_connected(Duration::from_secs(5)), "fedd handshake");

    let mut pods: Vec<(String, Child, SocketAddr)> = Vec::new();
    for name in ["a", "b", "c"] {
        let (child, addr) = spawn_pod(name, fed_addr);
        util::wait_for(Duration::from_secs(10), "pod registration", || {
            pods_view(&fed).get(name).copied().filter(|(_, live)| *live)
        });
        pods.push((name.to_string(), child, addr));
    }
    let view = pods_view(&fed);
    assert_eq!(view["a"], (0, true), "first pod gets base 0");
    assert_eq!(view["b"], (POD_SWITCHES, true));
    assert_eq!(view["c"], (2 * POD_SWITCHES, true));

    let direct: BTreeMap<String, CtlClient> = pods
        .iter()
        .map(|(name, _, addr)| {
            let c = CtlClient::connect(*addr);
            assert!(c.wait_connected(Duration::from_secs(5)), "pod handshake");
            (name.clone(), c)
        })
        .collect();

    // --- Spanning submit: globals 2 / 5 / 9 live in pods a / b / c, so
    // the program must split three ways with localized ids.
    match rpc(
        &fed,
        ControlOp::SubmitProgram {
            name: "span".into(),
            source: freezer_machine("place all 2, 5, 9;"),
        },
    ) {
        ControlReply::Submitted { task, seeds, .. } => {
            assert_eq!(task, "span");
            assert_eq!(seeds, 3, "one seed per pod");
        }
        other => panic!("span submit answered {other:?}"),
    }
    let pods_hosting_span = direct
        .values()
        .filter(|c| seed_keys(c).iter().any(|k| k.starts_with("span/")))
        .count();
    assert_eq!(pods_hosting_span, 3, "span places on every pod");
    // The federated listing shows the same seeds under pod-prefixed keys.
    let fed_keys = seed_keys(&fed);
    for key in ["a:span/m0/s0", "b:span/m0/s0", "c:span/m0/s0"] {
        assert!(fed_keys.iter().any(|k| k == key), "{key} in {fed_keys:?}");
    }

    // --- Single-pod submit: globals 1 and 2 both fall in pod a.
    match rpc(
        &fed,
        ControlOp::SubmitProgram {
            name: "mig".into(),
            source: freezer_machine("place all 1, 2;"),
        },
    ) {
        ControlReply::Submitted { seeds, .. } => assert_eq!(seeds, 2),
        other => panic!("mig submit answered {other:?}"),
    }
    assert!(
        seed_keys(&direct["a"])
            .iter()
            .any(|k| k.starts_with("mig/")),
        "single-pod route lands on pod a"
    );

    // --- Wait for the freeze, then record the source-side truth.
    for key in ["mig/m0/s0", "mig/m0/s1"] {
        util::wait_for(Duration::from_secs(10), "seed freeze", || {
            (describe(&direct["a"], key).1 == "done").then_some(())
        });
    }
    let before: Vec<_> = ["a:mig/m0/s0", "a:mig/m0/s1"]
        .iter()
        .map(|k| describe(&fed, k))
        .collect();
    assert!(
        before.iter().all(|(_, state, _)| state == "done"),
        "seeds frozen before migration"
    );

    // --- Cross-pod migration a → b.
    match rpc(
        &fed,
        ControlOp::MigrateTask {
            task: "mig".into(),
            to_pod: "b".into(),
        },
    ) {
        ControlReply::Migrated {
            task,
            from_pod,
            to_pod,
            seeds,
        } => {
            assert_eq!((task.as_str(), seeds), ("mig", 2));
            assert_eq!((from_pod.as_str(), to_pod.as_str()), ("a", "b"));
        }
        other => panic!("migrate answered {other:?}"),
    }
    for (i, (src_switch, _, src_vars)) in before.iter().enumerate() {
        let (dst_switch, dst_state, dst_vars) = describe(&fed, &format!("b:mig/m0/s{i}"));
        assert_eq!(dst_state, "done", "restored seed keeps its state");
        assert_eq!(
            dst_vars, *src_vars,
            "migration preserves seed variables byte for byte"
        );
        // Same local switch, pod b's global window.
        assert_eq!(u64::from(dst_switch), u64::from(*src_switch) + POD_SWITCHES);
    }
    assert!(
        !seed_keys(&direct["a"])
            .iter()
            .any(|k| k.starts_with("mig/")),
        "source pod forgot the migrated task"
    );

    // --- Federated stats are the sum of the pods' own stats.
    let fed_stats = stats_doc(&fed);
    let pod_seed_sum: u64 = direct
        .values()
        .map(|c| stat_u64(&stats_doc(c), "seeds"))
        .sum();
    assert_eq!(stat_u64(&fed_stats, "seeds"), pod_seed_sum);
    assert_eq!(stat_u64(&fed_stats, "seeds"), 5, "span 3 + mig 2");
    assert_eq!(stat_u64(&fed_stats, "switches"), 3 * POD_SWITCHES);
    assert_eq!(stat_u64(&fed_stats, "pods_live"), 3);
    assert_eq!(stat_u64(&fed_stats, "pods_reached"), 3);

    // --- Kill pod c outright; the coordinator must degrade to the
    // survivors once the liveness window lapses.
    let (_, mut pod_c, _) = pods.pop().expect("pod c");
    pod_c.kill().expect("SIGKILL pod c");
    pod_c.wait().expect("reap pod c");
    util::wait_for(Duration::from_secs(10), "liveness sweep", || {
        (!pods_view(&fed)["c"].1).then_some(())
    });

    let degraded = stats_doc(&fed);
    assert_eq!(stat_u64(&degraded, "pods_total"), 3);
    assert_eq!(stat_u64(&degraded, "pods_live"), 2);
    assert_eq!(stat_u64(&degraded, "seeds"), 4, "span 2 + mig 2 survive");
    let survivor_sum: u64 = ["a", "b"]
        .iter()
        .map(|n| stat_u64(&stats_doc(&direct[*n]), "seeds"))
        .sum();
    assert_eq!(stat_u64(&degraded, "seeds"), survivor_sum);
    let fed_keys = seed_keys(&fed);
    assert!(
        !fed_keys.iter().any(|k| k.starts_with("c:")),
        "dead pod's seeds left the federated listing: {fed_keys:?}"
    );

    if let Ok(path) = std::env::var("FED_STATS_OUT") {
        let body = match rpc(&fed, ControlOp::stats_all()) {
            ControlReply::Json { body } => body,
            other => panic!("stats answered {other:?}"),
        };
        std::fs::write(&path, body).expect("write FED_STATS_OUT");
    }

    // --- Graceful teardown: coordinator first (pods keep running),
    // then the surviving pods.
    graceful_shutdown(&fed, &mut fedd, "fedd");
    let (_, mut pod_b, _) = pods.pop().expect("pod b");
    let (_, mut pod_a, _) = pods.pop().expect("pod a");
    graceful_shutdown(&direct["b"], &mut pod_b, "pod b");
    graceful_shutdown(&direct["a"], &mut pod_a, "pod a");
}
