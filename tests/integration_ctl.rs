//! End-to-end control-plane test: a real farmd on loopback TCP, driven
//! through the client library exactly as farmctl drives it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use farm_ctl::{CtlClient, Farmd, FarmdConfig};
use farm_net::{ControlOp, ControlReply};

fn test_config() -> FarmdConfig {
    FarmdConfig {
        shutdown_drain: Duration::from_millis(20),
        ..FarmdConfig::default()
    }
}

const WATCHER: &str = include_str!("../examples/load_watcher.alm");

fn submit_watcher(client: &CtlClient) -> (u64, u64) {
    match client
        .op(ControlOp::SubmitProgram {
            name: "load_watcher".into(),
            source: WATCHER.into(),
        })
        .expect("submit rpc")
    {
        ControlReply::Submitted {
            task,
            seeds,
            actions,
        } => {
            assert_eq!(task, "load_watcher");
            (seeds, actions)
        }
        other => panic!("submit answered {other:?}"),
    }
}

fn list_seeds(client: &CtlClient) -> Vec<farm_net::SeedDescriptor> {
    match client.op(ControlOp::list_all()).expect("list rpc") {
        ControlReply::Seeds { seeds, .. } => seeds,
        other => panic!("list answered {other:?}"),
    }
}

#[test]
fn submit_list_drain_stats_shutdown_over_loopback() {
    let farmd = Farmd::start(test_config()).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());

    let (seeds, actions) = submit_watcher(&client);
    assert_eq!(seeds, 1, "place any yields one movable seed");
    assert!(actions >= 1);

    let listed = list_seeds(&client);
    assert_eq!(listed.len(), 1);
    let home = listed[0].switch;
    assert_eq!(listed[0].task, "load_watcher");

    // Describe surfaces the live seed with its variables.
    match client
        .op(ControlOp::DescribeSeed {
            key: listed[0].key.clone(),
        })
        .expect("describe rpc")
    {
        ControlReply::Seed { desc, vars } => {
            assert_eq!(desc.key, listed[0].key);
            assert!(
                vars.iter().any(|(n, _)| n == "threshold"),
                "expected the external var, got {vars:?}"
            );
        }
        other => panic!("describe answered {other:?}"),
    }

    // Drain the seed's switch: the movable seed must evacuate.
    match client
        .op(ControlOp::Drain { switch: home })
        .expect("drain rpc")
    {
        ControlReply::Drained { switch, evacuated } => {
            assert_eq!(switch, home);
            assert_eq!(evacuated, 1, "the watcher migrates off");
        }
        other => panic!("drain answered {other:?}"),
    }
    let moved = list_seeds(&client);
    assert_eq!(moved.len(), 1);
    assert_ne!(moved[0].switch, home, "seed left the drained switch");

    // Stats: a JSON body carrying the audit counters for what we did.
    let stats = match client.op(ControlOp::stats_all()).expect("stats rpc") {
        ControlReply::Json { body } => body,
        other => panic!("stats answered {other:?}"),
    };
    for needle in [
        "\"ctl.op.submit\":1",
        "\"ctl.op.drain\":1",
        "\"ctl.ops\":",
        "\"load_watcher\"",
    ] {
        assert!(stats.contains(needle), "stats missing {needle}: {stats}");
    }
    assert!(stats.contains(&format!("\"cordoned\":[{home}]")), "{stats}");

    // Metrics dump includes both the compat view and the registry.
    match client.op(ControlOp::MetricsDump).expect("metrics rpc") {
        ControlReply::Json { body } => {
            assert!(body.contains("\"net_dead_letters\""), "{body}");
            assert!(body.contains("\"ctl.op_latency_us\""), "{body}");
        }
        other => panic!("metrics answered {other:?}"),
    }

    // Checkpoint / restore / uncordon / replan round out the surface.
    assert!(matches!(
        client.op(ControlOp::Checkpoint).expect("checkpoint rpc"),
        ControlReply::Checkpointed {
            seeds: 1,
            persist_error: None
        }
    ));
    assert!(matches!(
        client.op(ControlOp::Restore).expect("restore rpc"),
        ControlReply::Restored {
            seeds: 1,
            skipped: 0
        }
    ));
    assert!(matches!(
        client
            .op(ControlOp::Uncordon { switch: home })
            .expect("uncordon rpc"),
        ControlReply::Ok
    ));
    assert!(matches!(
        client.op(ControlOp::Replan).expect("replan rpc"),
        ControlReply::Replanned { .. }
    ));

    assert!(matches!(
        client.op(ControlOp::Shutdown).expect("shutdown rpc"),
        ControlReply::Ok
    ));
    farmd.wait();
}

#[test]
fn bad_submissions_come_back_structured() {
    let config = FarmdConfig {
        max_program_bytes: 64,
        ..test_config()
    };
    let farmd = Farmd::start(config).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());

    // Over the submission cap: structured rejection, not an error frame.
    match client
        .op(ControlOp::SubmitProgram {
            name: "big".into(),
            source: "x".repeat(100),
        })
        .expect("submit rpc")
    {
        ControlReply::Rejected { reason } => assert!(reason.contains("cap"), "{reason}"),
        other => panic!("oversized submit answered {other:?}"),
    }

    // Broken program under the cap: compile diagnostics with positions.
    match client
        .op(ControlOp::SubmitProgram {
            name: "broken".into(),
            source: "machine M { place any; state s {".into(),
        })
        .expect("submit rpc")
    {
        ControlReply::CompileFailed { diagnostics } => {
            assert!(!diagnostics.is_empty());
            assert!(!diagnostics[0].message.is_empty());
        }
        other => panic!("broken submit answered {other:?}"),
    }

    // Unknown seed key: rejected with the expected shape spelled out.
    match client
        .op(ControlOp::DescribeSeed { key: "what".into() })
        .expect("describe rpc")
    {
        ControlReply::Rejected { reason } => assert!(reason.contains("what"), "{reason}"),
        other => panic!("describe answered {other:?}"),
    }
    farmd.stop();
}

#[test]
fn admission_control_rejects_when_quota_exhausted() {
    let config = FarmdConfig {
        quota: 0.000001,
        ..test_config()
    };
    let farmd = Farmd::start(config).expect("start farmd");
    let client = CtlClient::connect(farmd.local_addr());
    // This machine's utility needs a whole vCPU before it runs at all,
    // so its admission demand is strictly positive.
    let greedy = "machine Greedy { place any; state s { util (res) { if (res.vCPU >= 1) then { return 1; } } } }";
    match client
        .op(ControlOp::SubmitProgram {
            name: "greedy".into(),
            source: greedy.into(),
        })
        .expect("submit rpc")
    {
        ControlReply::Rejected { reason } => {
            assert!(reason.contains("admission"), "{reason}");
        }
        other => panic!("quota submit answered {other:?}"),
    }
    assert!(list_seeds(&client).is_empty(), "nothing was deployed");
    farmd.stop();
}

#[test]
fn garbage_bytes_never_wedge_the_daemon() {
    let farmd = Farmd::start(test_config()).expect("start farmd");

    // A client that speaks no protocol at all: write junk, disconnect.
    {
        let mut raw = TcpStream::connect(farmd.local_addr()).expect("raw connect");
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x12, 0x34])
            .expect("write junk");
        raw.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        // Drain whatever the server says (a structured error or a hangup);
        // the point is that it neither panics nor stalls.
        let mut sink = [0u8; 256];
        let _ = raw.read(&mut sink);
    }

    // The daemon still serves well-formed clients afterwards.
    let client = CtlClient::connect(farmd.local_addr());
    assert!(matches!(
        client.op(ControlOp::stats_all()).expect("stats rpc"),
        ControlReply::Json { .. }
    ));
    farmd.stop();
}
