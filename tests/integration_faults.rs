//! Integration: fault injection, failure detection and automatic
//! recovery end to end.
//!
//! The churn seed honours `FARM_FAULT_SEED` (CI runs the suite across
//! several seeds) and defaults to 7.

use std::collections::BTreeMap;
use std::sync::Arc;

use farm_core::harvester::CollectingHarvester;
use farm_core::prelude::*;
use farm_faults::{ChurnProfile, FaultKind, FaultPlan, LossSpec};
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
use farm_netsim::types::SwitchId;
use farm_telemetry::{Event, RingBufferSink};

fn fabric(leaves: usize) -> Topology {
    Topology::spine_leaf(
        2,
        leaves,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

fn fault_seed() -> u64 {
    std::env::var("FARM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// A movable one-seed monitoring task that reports its running total.
/// Its utility rewards PCIe so placement grants it real polling
/// bandwidth — the resource the PCIe-degradation fault takes away.
fn monitor_src() -> &'static str {
    r#"
machine Mon {
  place any;
  poll p = Poll { .ival = 1, .what = port ANY };
  long total = 0;
  state s {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (p as stats) do {
      total = total + list_len(stats);
      send total to harvester;
    }
  }
}
"#
}

/// Runs one farm under seeded churn and returns its full event trace.
fn churn_trace(seed: u64) -> Vec<Event> {
    let topo = fabric(4);
    let switches: Vec<SwitchId> = (0..6).map(SwitchId).collect();
    let plan = FaultPlan::churn(
        seed,
        &switches,
        Time::from_millis(10),
        Time::from_millis(250),
        ChurnProfile::default(),
    );
    let events = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(topo)
        .with_fault_plan(plan)
        .with_harvester("hh", Box::new(CollectingHarvester::new()))
        .with_harvester("mon", Box::new(CollectingHarvester::new()))
        .with_sink(events.clone())
        .build();
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    farm.deploy_task("mon", monitor_src(), &BTreeMap::new())
        .unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 16,
        hh_ratio: 0.1,
        ..Default::default()
    });
    farm.run(&mut [&mut hh], Time::from_millis(300), Dur::from_millis(1));
    // SolverPhase and ReplanSummary are keyed to wall-clock (they report
    // real solver/plan runtime); everything else is virtual-time and
    // must replay bit-identically.
    events
        .events()
        .into_iter()
        .filter(|e| !matches!(e, Event::SolverPhase { .. } | Event::ReplanSummary { .. }))
        .collect()
}

#[test]
fn fault_trace_is_deterministic_across_runs() {
    let seed = fault_seed();
    let a = churn_trace(seed);
    let b = churn_trace(seed);
    assert!(
        a.iter().any(|e| matches!(e, Event::SwitchCrashed { .. })),
        "churn plan must actually crash something"
    );
    assert_eq!(
        a.len(),
        b.len(),
        "two runs of the same fault seed diverged in event count"
    );
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(ea, eb, "trace diverged at event {i}");
    }
}

#[test]
fn crashed_switch_seeds_recover_elsewhere() {
    let events = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(fabric(4))
        .with_harvester("mon", Box::new(CollectingHarvester::new()))
        .with_sink(events.clone())
        .build();
    farm.deploy_task("mon", monitor_src(), &BTreeMap::new())
        .unwrap();
    assert_eq!(farm.deployed_seeds(), 1);
    let (host, _) = farm
        .seeder()
        .placements()
        .next()
        .map(|(_, loc)| *loc)
        .unwrap();

    // Crash the hosting switch mid-run; never restart it.
    farm.set_fault_plan(FaultPlan::new().with(
        Time::from_millis(20),
        FaultKind::SwitchCrash { switch: host },
    ));
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 16,
        hh_ratio: 0.1,
        ..Default::default()
    });
    farm.run(&mut [&mut hh], Time::from_millis(200), Dur::from_millis(1));

    let seen = events.events();
    assert!(seen
        .iter()
        .any(|e| matches!(e, Event::SwitchCrashed { switch, .. } if *switch == host.0)));
    assert!(
        seen.iter()
            .any(|e| matches!(e, Event::SwitchDeclaredFailed { switch, .. } if *switch == host.0)),
        "missed-heartbeat detector must fire"
    );
    assert!(seen.iter().any(|e| matches!(e, Event::SeedOrphaned { .. })));
    let recovered: Vec<_> = seen
        .iter()
        .filter_map(|e| match e {
            Event::SeedRecovered {
                switch, mttr_ns, ..
            } => Some((*switch, *mttr_ns)),
            _ => None,
        })
        .collect();
    assert!(!recovered.is_empty(), "orphaned seed must be re-placed");
    assert_ne!(
        recovered[0].0, host.0,
        "recovery must land on a surviving switch"
    );
    assert!(recovered[0].1 > 0, "MTTR must count the outage");

    // Bookkeeping is consistent again and the MTTR histogram sampled.
    assert_eq!(farm.deployed_seeds(), 1);
    assert_eq!(farm.recovery_pending(), 0);
    let snap = farm.telemetry().snapshot();
    assert_eq!(snap.counter("farm.recoveries"), 1);
    let mttr = snap.histogram("recovery.mttr_us").unwrap();
    assert_eq!(mttr.count, 1);

    // Detection resumes: the re-placed seed keeps reporting.
    let before = farm.metrics().collector_messages;
    farm.run(&mut [&mut hh], Time::from_millis(400), Dur::from_millis(1));
    assert!(
        farm.metrics().collector_messages > before,
        "recovered seed must keep reporting to its harvester"
    );
}

#[test]
fn restored_snapshot_preserves_seed_state() {
    let events = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(fabric(4))
        .with_harvester("mon", Box::new(CollectingHarvester::new()))
        .with_sink(events.clone())
        .build();
    farm.deploy_task("mon", monitor_src(), &BTreeMap::new())
        .unwrap();
    let (host, _) = farm
        .seeder()
        .placements()
        .next()
        .map(|(_, loc)| *loc)
        .unwrap();
    // Let the seed accumulate state and several heartbeat checkpoints,
    // then kill its host.
    farm.set_fault_plan(FaultPlan::new().with(
        Time::from_millis(80),
        FaultKind::SwitchCrash { switch: host },
    ));
    farm.advance(Time::from_millis(250));

    let seen = events.events();
    let warm = seen
        .iter()
        .any(|e| matches!(e, Event::SeedRecovered { cold_start, .. } if !cold_start));
    assert!(
        warm,
        "a checkpointed seed must restore warm, not cold-start"
    );
    assert!(seen
        .iter()
        .any(|e| matches!(e, Event::SeedOrphaned { has_snapshot, .. } if *has_snapshot),));
}

#[test]
fn pcie_degradation_sheds_with_structured_reason() {
    let events = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(fabric(2))
        .with_sink(events.clone())
        .build();
    // Stack several movable seeds, then collapse PCIe fleet-wide so the
    // survivors cannot absorb the shed ones either.
    for i in 0..6 {
        farm.deploy_task(&format!("mon{i}"), monitor_src(), &BTreeMap::new())
            .unwrap();
    }
    let n = farm.deployed_seeds();
    assert!(n >= 4);
    let mut plan = FaultPlan::new();
    for id in farm.network().switch_ids() {
        plan.push(
            Time::from_millis(20),
            FaultKind::PcieDegrade {
                switch: id,
                factor: 0.01,
            },
        );
    }
    farm.set_fault_plan(plan);
    farm.advance(Time::from_millis(100));

    let seen = events.events();
    let shed: Vec<_> = seen
        .iter()
        .filter_map(|e| match e {
            Event::SeedShed { demand, budget, .. } => Some((*demand, *budget)),
            _ => None,
        })
        .collect();
    assert!(!shed.is_empty(), "PCIe collapse must shed seeds");
    for (demand, budget) in &shed {
        assert!(
            demand > budget,
            "shed reason must be structured: demand {demand} within budget {budget}"
        );
    }
    // The tick kept running — shedding is graceful, not an error path.
    assert_eq!(farm.telemetry().snapshot().counter("farm.seed_errors"), 0);
    // Every seed is accounted for: still placed, queued for recovery, or
    // abandoned after bounded retries.
    let abandoned = seen
        .iter()
        .filter(|e| matches!(e, Event::RecoveryAbandoned { .. }))
        .count();
    assert_eq!(
        farm.deployed_seeds() + farm.recovery_pending() + abandoned,
        n
    );
}

#[test]
fn lossy_control_channel_retries_then_dead_letters() {
    let events = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(fabric(2))
        .with_harvester("hh", Box::new(CollectingHarvester::new()))
        .with_fault_plan(FaultPlan::new().with(
            Time::from_millis(1),
            FaultKind::ControlLoss {
                switch: None,
                spec: LossSpec::dropping(1.0),
            },
        ))
        .with_sink(events.clone())
        .build();
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 16,
        hh_ratio: 0.1,
        ..Default::default()
    });
    farm.run(&mut [&mut hh], Time::from_millis(60), Dur::from_millis(1));

    let snap = farm.telemetry().snapshot();
    assert!(
        snap.counter("farm.dead_letters") > 0,
        "total loss must dead-letter"
    );
    assert!(snap.counter("farm.delivery_retries") > 0);
    assert_eq!(
        farm.metrics().collector_messages,
        0,
        "nothing crosses a fully dropping channel"
    );
    let seen = events.events();
    assert!(seen
        .iter()
        .any(|e| matches!(e, Event::DeliveryRetried { attempt: 1, .. })));
    assert!(seen
        .iter()
        .any(|e| matches!(e, Event::DeliveryDeadLettered { attempts, .. } if *attempts > 1),));

    // Heal the channel: deliveries resume.
    farm.set_fault_plan(FaultPlan::new().with(
        Time::from_millis(61),
        FaultKind::ControlHeal { switch: None },
    ));
    farm.run(&mut [&mut hh], Time::from_millis(160), Dur::from_millis(1));
    assert!(
        farm.metrics().collector_messages > 0,
        "healed channel delivers"
    );
}
