//! Integration: the Tab. I Almanac programs running end-to-end against
//! matching attack/anomaly workloads — each program must detect its
//! scenario and perform its documented local reaction.

use std::collections::BTreeMap;

use farm_almanac::value::Value;
use farm_core::farm::{external, Farm, FarmConfig};
use farm_core::harvester::CollectingHarvester;
use farm_netsim::network::TrafficEvent;
use farm_netsim::switch::SwitchModel;
use farm_netsim::tcam::RuleAction;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::{
    DdosConfig, DdosWorkload, HeavyHitterWorkload, HhConfig, PortScanConfig, PortScanWorkload,
    ZipfConfig, ZipfFlowWorkload,
};
use farm_netsim::types::{FlowKey, Ipv4, PortId, SwitchId};

fn small_fabric() -> Topology {
    Topology::spine_leaf(
        1,
        2,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

fn farm_with_task(
    task: &str,
    source: &str,
    machine: &str,
    ext: &[(&str, Value)],
) -> (Farm, SwitchId) {
    let mut farm = Farm::new(small_fabric(), FarmConfig::default());
    farm.set_harvester(task, Box::new(CollectingHarvester::new()));
    let mut externals = BTreeMap::new();
    externals.insert(machine.to_string(), external(ext));
    farm.deploy_task(task, source, &externals).unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    (farm, leaf)
}

fn has_action(farm: &Farm, sw: SwitchId, pred: impl Fn(&RuleAction) -> bool) -> bool {
    farm.network()
        .switch(sw)
        .unwrap()
        .tcam()
        .rules()
        .iter()
        .any(|r| pred(&r.action))
}

#[test]
fn ddos_program_mitigates_and_recovers() {
    let (mut farm, leaf) = farm_with_task(
        "ddos",
        farm_almanac::programs::DDOS,
        "DDoS",
        &[
            ("protectedPrefix", Value::Str("10.0.1.0/24".into())),
            ("volumeThreshold", Value::Int(1_000_000)),
            ("sustainWindows", Value::Int(2)),
        ],
    );
    let victim = farm.network().topology().host_ip(leaf, 5).unwrap();
    let mut attack = DdosWorkload::new(DdosConfig {
        switch: leaf,
        victim,
        onset: Time::from_millis(100),
        n_sources: 100,
        per_source_bps: 50_000_000,
        background_bps: 1_000_000,
        ..Default::default()
    });
    // Phase 1: attack rages → rate limit must appear.
    farm.run(
        &mut [&mut attack],
        Time::from_millis(600),
        Dur::from_millis(10),
    );
    assert!(
        has_action(&farm, leaf, |a| matches!(a, RuleAction::RateLimit(_))),
        "DDoS mitigation missing"
    );
    let h: &CollectingHarvester = farm.harvester("ddos").unwrap();
    assert!(!h.received.is_empty(), "harvester must be informed");
    // Phase 2: attack stops → the seed recovers and removes the limit.
    let mut calm = DdosWorkload::new(DdosConfig {
        switch: leaf,
        victim,
        onset: Time::from_secs(10_000), // never
        n_sources: 0,
        per_source_bps: 0,
        background_bps: 1_000_000,
        ..Default::default()
    });
    farm.run(&mut [&mut calm], Time::from_secs(3), Dur::from_millis(10));
    assert!(
        !has_action(&farm, leaf, |a| matches!(a, RuleAction::RateLimit(_))),
        "mitigation must be lifted after the attack subsides"
    );
}

#[test]
fn port_scan_program_blocks_the_scanner() {
    let (mut farm, leaf) = farm_with_task(
        "scan",
        farm_almanac::programs::PORT_SCAN,
        "PortScan",
        &[("portLimit", Value::Int(40))],
    );
    let target = farm.network().topology().host_ip(leaf, 3).unwrap();
    let mut scan = PortScanWorkload::new(PortScanConfig {
        switch: leaf,
        target,
        ports_per_sec: 400,
        ..Default::default()
    });
    farm.run(&mut [&mut scan], Time::from_secs(3), Dur::from_millis(5));
    assert!(
        has_action(&farm, leaf, |a| *a == RuleAction::Drop),
        "scanner must be dropped"
    );
    let h: &CollectingHarvester = farm.harvester("scan").unwrap();
    assert!(h
        .received
        .iter()
        .any(|m| matches!(&m.value, Value::List(v) if !v.is_empty())));
}

#[test]
fn ssh_brute_force_program_drops_the_attacker() {
    let (mut farm, leaf) = farm_with_task(
        "ssh",
        farm_almanac::programs::SSH_BRUTE_FORCE,
        "SshBruteForce",
        &[("attemptLimit", Value::Int(15))],
    );
    let attacker = Ipv4::new(198, 51, 100, 7);
    let victim = farm.network().topology().host_ip(leaf, 2).unwrap();
    // 30 connection attempts spread over 6 s (probe ival is a 1 ms lower
    // bound, so spacing events across ticks keeps them all sampled).
    let mut t = Time::ZERO;
    for i in 0..30u16 {
        let ev = TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: None,
            flow: FlowKey::tcp(attacker, 40_000 + i, victim, 22),
            bytes: 64,
            packets: 1,
        };
        farm.apply_traffic(&[ev]);
        t += Dur::from_millis(200);
        farm.advance(t);
    }
    assert!(
        has_action(&farm, leaf, |a| *a == RuleAction::Drop),
        "SSH brute-forcer must be dropped"
    );
}

#[test]
fn syn_flood_program_rate_limits_the_target() {
    let (mut farm, leaf) = farm_with_task(
        "synflood",
        farm_almanac::programs::TCP_SYN_FLOOD,
        "SynFlood",
        &[("imbalanceLimit", Value::Int(100))],
    );
    let victim = farm.network().topology().host_ip(leaf, 8).unwrap();
    let mut t = Time::ZERO;
    // 150 distinct half-open connections within one 1 s window.
    for i in 0..150u16 {
        let ev = TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: None,
            flow: FlowKey::tcp(
                Ipv4::new(203, 0, 113, (i % 250) as u8),
                1000 + i,
                victim,
                80,
            ),
            bytes: 64,
            packets: 1,
        };
        farm.apply_traffic(&[ev]);
        t += Dur::from_millis(5);
        farm.advance(t);
    }
    farm.advance(Time::from_millis(1200)); // window timer fires
    assert!(
        has_action(&farm, leaf, |a| matches!(a, RuleAction::RateLimit(_))),
        "SYN flood target must be rate limited"
    );
}

#[test]
fn superspreader_program_flags_the_spreader() {
    let (mut farm, leaf) = farm_with_task(
        "spread",
        farm_almanac::programs::SUPERSPREADER,
        "Superspreader",
        &[("fanoutLimit", Value::Int(50))],
    );
    let spreader = Ipv4::new(198, 51, 100, 99);
    let mut t = Time::ZERO;
    for i in 0..80u32 {
        let dst = Ipv4::new(10, 0, 1, (i % 200) as u8 + 1);
        let ev = TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: None,
            flow: FlowKey::udp(spreader, 5000, dst, (2000 + i) as u16),
            bytes: 120,
            packets: 1,
        };
        farm.apply_traffic(&[ev]);
        t += Dur::from_millis(10);
        farm.advance(t);
    }
    farm.advance(Time::from_millis(2500)); // window fires
    let h: &CollectingHarvester = farm.harvester("spread").unwrap();
    let flagged = h.received.iter().any(|m| {
        matches!(&m.value, Value::List(v)
            if v.contains(&Value::Str(spreader.to_string())))
    });
    assert!(flagged, "superspreader must be reported: {:?}", h.received);
}

#[test]
fn link_failure_program_reports_dead_ports() {
    let (mut farm, leaf) = farm_with_task(
        "linkfail",
        farm_almanac::programs::LINK_FAILURE,
        "LinkFailure",
        &[],
    );
    // Active traffic for a while…
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 8,
        hh_ratio: 0.0,
        ..Default::default()
    });
    farm.run(
        &mut [&mut traffic],
        Time::from_millis(300),
        Dur::from_millis(10),
    );
    let h: &CollectingHarvester = farm.harvester("linkfail").unwrap();
    let before = h.received.len();
    // …then the link goes silent: counters freeze across polls.
    farm.advance(Time::from_millis(900));
    let h: &CollectingHarvester = farm.harvester("linkfail").unwrap();
    assert!(
        h.received.len() > before,
        "silent previously-active ports must be reported"
    );
}

#[test]
fn entropy_program_alarms_on_traffic_concentration() {
    let (mut farm, leaf) = farm_with_task(
        "entropy",
        farm_almanac::programs::ENTROPY_ESTIMATION,
        "EntropyEstimation",
        &[("alarmDrop", Value::Float(2.0))],
    );
    // Phase 1: uniform traffic across 32 ports → high entropy baseline.
    let mut uniform = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 32,
        hh_ratio: 0.0,
        normal_rate_bps: 100_000_000,
        ..Default::default()
    });
    farm.run(
        &mut [&mut uniform],
        Time::from_secs(2),
        Dur::from_millis(10),
    );
    let baseline_alarms = farm
        .harvester::<CollectingHarvester>("entropy")
        .unwrap()
        .received
        .len();
    // Phase 2: everything concentrates on one port → entropy collapses.
    let flow = FlowKey::udp(Ipv4::new(1, 2, 3, 4), 1, Ipv4::new(5, 6, 7, 8), 2);
    let mut t = farm.now();
    for _ in 0..100 {
        farm.apply_traffic(&[TrafficEvent {
            switch: leaf,
            rx_port: None,
            tx_port: Some(PortId(0)),
            flow,
            bytes: 50_000_000,
            packets: 33_000,
        }]);
        t += Dur::from_millis(10);
        farm.advance(t);
    }
    let h: &CollectingHarvester = farm.harvester("entropy").unwrap();
    assert!(
        h.received.len() > baseline_alarms,
        "entropy collapse must raise an alarm"
    );
}

#[test]
fn flow_size_distribution_program_ships_histograms() {
    let (mut farm, leaf) = farm_with_task(
        "fsd",
        farm_almanac::programs::FLOW_SIZE_DIST,
        "FlowSizeDist",
        &[("buckets", Value::Int(32))],
    );
    let mut zipf = ZipfFlowWorkload::new(ZipfConfig {
        switch: leaf,
        n_flows: 200,
        ..Default::default()
    });
    farm.run(&mut [&mut zipf], Time::from_secs(3), Dur::from_millis(50));
    let h: &CollectingHarvester = farm.harvester("fsd").unwrap();
    let hist = h
        .received
        .iter()
        .find_map(|m| m.value.as_list().map(|l| l.to_vec()))
        .expect("histogram report");
    assert_eq!(hist.len(), 32);
    let total: i64 = hist.iter().filter_map(|v| v.as_int()).sum();
    assert!(total > 0, "histogram must count flows");
}

#[test]
fn new_tcp_conn_program_counts_connections() {
    let (mut farm, leaf) = farm_with_task(
        "conncount",
        farm_almanac::programs::NEW_TCP_CONN,
        "NewTcpConn",
        &[],
    );
    let mut t = Time::ZERO;
    for i in 0..20u16 {
        farm.apply_traffic(&[TrafficEvent {
            switch: leaf,
            rx_port: Some(PortId(0)),
            tx_port: None,
            flow: FlowKey::tcp(Ipv4::new(10, 0, 9, 9), 3000 + i, Ipv4::new(10, 0, 1, 1), 80),
            bytes: 64,
            packets: 1,
        }]);
        t += Dur::from_millis(20);
        farm.advance(t);
    }
    farm.advance(Time::from_millis(1100)); // report timer
    let h: &CollectingHarvester = farm.harvester("conncount").unwrap();
    let counted: i64 = h
        .received
        .iter()
        .filter_map(|m| m.value.as_int())
        .max()
        .unwrap_or(0);
    assert!(
        counted >= 15,
        "most SYNs must be counted, got {counted} (reports: {:?})",
        h.received.len()
    );
}
