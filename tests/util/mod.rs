//! Shared real-binary process harness for the daemon integration
//! tests (the upgrade soak and the federation e2e). Each test crate
//! includes this file with `#[path = "util/mod.rs"] mod util;`, so it
//! must stand alone: no dev-dependencies beyond std.
#![allow(dead_code)]

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A per-process scratch path under the system temp dir.
pub fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("farm-test-{}-{name}", std::process::id()))
}

/// Writes a daemon config file and returns its path.
pub fn write_config(name: &str, body: String) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, body).expect("write config");
    path
}

/// Locates a workspace binary from a test executable.
///
/// `compile_time` is `option_env!("CARGO_BIN_EXE_<name>")` at the call
/// site: cargo only sets it while compiling the tests of the crate that
/// owns the binary. Tests in *other* crates (the federation e2e drives
/// `farmd`, owned by farm-ctl) fall back to walking up from the running
/// test executable (`target/<profile>/deps/<test>` →
/// `target/<profile>/<name>`).
pub fn locate_bin(name: &str, compile_time: Option<&str>) -> PathBuf {
    if let Some(path) = compile_time {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(Path::parent)
        .expect("test executable has a profile dir");
    let candidate = profile_dir.join(name);
    assert!(
        candidate.exists(),
        "`{name}` not found at {}; build the workspace binaries first \
         (cargo build --bins)",
        candidate.display()
    );
    candidate
}

/// Spawns a daemon binary with `--config <config> --print-addr` and
/// blocks until it reports the bound address. Stderr is inherited so
/// daemon-side diagnostics land in the test log.
pub fn spawn_daemon(bin: &Path, config: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(bin)
        .arg("--config")
        .arg(config)
        .arg("--print-addr")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    let stdout = child.stdout.take().expect("daemon stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read daemon address line");
    let addr = line
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("daemon printed `{line}`, not an address"));
    (child, addr)
}

/// Waits (bounded) for a child to exit and returns its status.
pub fn wait_exit(child: &mut Child, why: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "daemon did not exit: {why}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls `probe` until it returns `Some`, failing after `deadline`.
pub fn wait_for<T>(deadline: Duration, what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let until = Instant::now() + deadline;
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(Instant::now() < until, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}
