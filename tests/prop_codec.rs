//! Property tests for the farm-net codec: every frame the generators
//! can produce must round-trip byte-exactly, and arbitrary mutilation
//! of valid bytes (truncation, bit flips) must be rejected or
//! re-interpreted without ever panicking or over-reading.

use farm_almanac::value::{ActionValue, PacketRecord, RuleValue, StatEntry, StatSubject, Value};
use farm_net::wire::WireError;
use farm_net::{
    decode_checkpoint_any, decode_envelope, encode_checkpoint_doc, encode_envelope, CheckpointDoc,
    ControlOp, ControlReply, Decoded, Diagnostic, Envelope, Frame, FrameDecoder, PodInfo, Report,
    SeedDescriptor, VSeedSnapshot,
};
use farm_netsim::switch::Resources;
use farm_netsim::types::{FilterAtom, FilterFormula, FlowKey, Ipv4, PortSel, Prefix, Proto};
use farm_soil::SeedSnapshot;
use proptest::collection::vec;
use proptest::prelude::*;

fn proto_strategy() -> BoxedStrategy<Proto> {
    prop_oneof![Just(Proto::Tcp), Just(Proto::Udp), Just(Proto::Icmp)].boxed()
}

fn prefix_strategy() -> BoxedStrategy<Prefix> {
    // Prefix::new normalizes host bits, which is exactly the canonical
    // form the decoder insists on.
    (any::<u32>(), 0u8..33)
        .prop_map(|(addr, len)| Prefix::new(Ipv4(addr), len))
        .boxed()
}

fn flow_strategy() -> BoxedStrategy<FlowKey> {
    (
        any::<u32>(),
        any::<u32>(),
        proto_strategy(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(s, d, proto, sp, dp)| FlowKey {
            src: Ipv4(s),
            dst: Ipv4(d),
            proto,
            src_port: sp,
            dst_port: dp,
        })
        .boxed()
}

fn atom_strategy() -> BoxedStrategy<FilterAtom> {
    prop_oneof![
        prefix_strategy().prop_map(FilterAtom::SrcIp),
        prefix_strategy().prop_map(FilterAtom::DstIp),
        any::<u16>().prop_map(FilterAtom::SrcPort),
        any::<u16>().prop_map(FilterAtom::DstPort),
        proto_strategy().prop_map(FilterAtom::Proto),
        prop_oneof![Just(PortSel::Any), any::<u16>().prop_map(PortSel::Id)]
            .prop_map(FilterAtom::IfPort),
    ]
    .boxed()
}

fn filter_strategy(depth: u32) -> BoxedStrategy<FilterFormula> {
    let leaf = prop_oneof![
        Just(FilterFormula::True),
        Just(FilterFormula::False),
        atom_strategy().prop_map(FilterFormula::Atom),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = filter_strategy(depth - 1);
    prop_oneof![
        leaf,
        (sub.clone(), sub.clone()).prop_map(|(a, b)| FilterFormula::And(Box::new(a), Box::new(b))),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| FilterFormula::Or(Box::new(a), Box::new(b))),
        sub.prop_map(|f| FilterFormula::Not(Box::new(f))),
    ]
    .boxed()
}

fn action_strategy() -> BoxedStrategy<ActionValue> {
    prop_oneof![
        Just(ActionValue::Drop),
        any::<u64>().prop_map(ActionValue::RateLimit),
        any::<u8>().prop_map(ActionValue::SetQos),
        Just(ActionValue::Count),
        Just(ActionValue::Mirror),
    ]
    .boxed()
}

fn stat_strategy() -> BoxedStrategy<StatEntry> {
    (
        prop_oneof![
            any::<u16>().prop_map(StatSubject::Port),
            "[a-z]{0,12}".prop_map(StatSubject::Rule),
        ],
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(subject, tb, rb, tp, rp)| StatEntry {
            subject,
            tx_bytes: tb,
            rx_bytes: rb,
            tx_packets: tp,
            rx_packets: rp,
        })
        .boxed()
}

fn value_strategy(depth: u32) -> BoxedStrategy<Value> {
    // Finite floats only: NaN breaks PartialEq, and the wire carries
    // IEEE-754 bits verbatim anyway.
    let leaf = prop_oneof![
        (0u8..3).prop_map(|b| match b {
            0 => Value::Unit,
            1 => Value::Bool(false),
            _ => Value::Bool(true),
        }),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12..1.0e12).prop_map(Value::Float),
        "[ -~]{0,16}".prop_map(Value::Str),
        (flow_strategy(), any::<u32>(), 0u8..8).prop_map(|(flow, len, flags)| {
            Value::Packet(PacketRecord {
                flow,
                len,
                syn: flags & 1 != 0,
                fin: flags & 2 != 0,
                ack: flags & 4 != 0,
            })
        }),
        filter_strategy(2).prop_map(Value::Filter),
        action_strategy().prop_map(Value::Action),
        (filter_strategy(1), action_strategy())
            .prop_map(|(pattern, action)| Value::Rule(RuleValue { pattern, action })),
        (0.0..1e6, 0.0..1e6, 0.0..1e6, 0.0..1e6)
            .prop_map(|(a, b, c, d)| Value::Resources(Resources([a, b, c, d]))),
        stat_strategy().prop_map(Value::Stat),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = value_strategy(depth - 1);
    prop_oneof![
        leaf,
        vec(sub.clone(), 0..4).prop_map(Value::List),
        (sub.clone(), sub).prop_map(|(a, b)| Value::Pair(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

fn report_strategy() -> BoxedStrategy<Report> {
    (
        "[a-z]{1,8}",
        any::<u32>(),
        any::<u64>(),
        "[A-Z]{1,6}",
        (any::<u64>(), any::<u64>(), any::<u64>()),
        value_strategy(2),
    )
        .prop_map(
            |(task, from_switch, from_seed, from_machine, (at, lat, bytes), value)| Report {
                task,
                from_switch,
                from_seed,
                from_machine,
                at_ns: at,
                latency_ns: lat,
                bytes,
                value,
            },
        )
        .boxed()
}

fn option_u32_strategy() -> BoxedStrategy<Option<u32>> {
    (0u8..2, any::<u32>())
        .prop_map(|(some, v)| if some == 1 { Some(v) } else { None })
        .boxed()
}

fn snapshot_strategy() -> BoxedStrategy<SeedSnapshot> {
    (
        "[A-Z][a-z]{0,6}",
        "[a-z]{1,8}",
        vec(("[a-z]{1,8}", value_strategy(1)), 0..4),
    )
        .prop_map(|(machine, state, vars)| SeedSnapshot {
            machine,
            state,
            vars,
        })
        .boxed()
}

/// A listing cursor: the all-zero "everything" form (which encodes
/// without trailing cursor bytes) plus arbitrary windows.
fn cursor_strategy() -> BoxedStrategy<(u64, u64)> {
    prop_oneof![
        Just((0u64, 0u64)),
        (any::<u64>(), any::<u64>()),
        (0u64..128, 1u64..64),
    ]
    .boxed()
}

/// Keyed seed snapshots as carried by the migration frames
/// (`SubmitWithSnapshot` / `TaskExport`).
fn snapshot_entries_strategy() -> BoxedStrategy<Vec<(String, SeedSnapshot)>> {
    vec(("[a-z/0-9]{1,16}", snapshot_strategy()), 0..4).boxed()
}

fn control_op_strategy() -> BoxedStrategy<ControlOp> {
    prop_oneof![
        ("[a-z]{1,8}", "[ -~]{0,48}")
            .prop_map(|(name, source)| ControlOp::SubmitProgram { name, source }),
        cursor_strategy()
            .prop_map(|(from_index, limit)| ControlOp::ListSeeds { from_index, limit }),
        "[a-z/0-9]{1,16}".prop_map(|key| ControlOp::DescribeSeed { key }),
        cursor_strategy().prop_map(|(from_index, limit)| ControlOp::Stats { from_index, limit }),
        Just(ControlOp::MetricsDump),
        any::<u32>().prop_map(|switch| ControlOp::Drain { switch }),
        any::<u32>().prop_map(|switch| ControlOp::Uncordon { switch }),
        Just(ControlOp::Replan),
        Just(ControlOp::Checkpoint),
        Just(ControlOp::Restore),
        Just(ControlOp::Shutdown),
        fed_control_op_strategy(),
    ]
    .boxed()
}

/// The federation additions to the op space (tags 11+), kept separate
/// so the mixed-version property can generate exactly these.
fn fed_control_op_strategy() -> BoxedStrategy<ControlOp> {
    prop_oneof![
        ("[a-z-]{1,8}", "[0-9.:]{1,16}", any::<u64>(), 0.0..1e3).prop_map(
            |(name, addr, switches, quota)| ControlOp::RegisterPod {
                name,
                addr,
                switches,
                quota,
            }
        ),
        ("[a-z-]{1,8}", any::<u64>()).prop_map(|(name, seq)| ControlOp::PodHeartbeat { name, seq }),
        Just(ControlOp::ListPods),
        ("[a-z]{1,8}", "[a-z-]{1,8}")
            .prop_map(|(task, to_pod)| ControlOp::MigrateTask { task, to_pod }),
        "[a-z]{1,8}".prop_map(|task| ControlOp::ExportTask { task }),
        ("[a-z]{1,8}", "[ -~]{0,48}", snapshot_entries_strategy()).prop_map(
            |(name, source, seeds)| ControlOp::SubmitWithSnapshot {
                name,
                source,
                seeds,
            }
        ),
        "[a-z]{1,8}".prop_map(|task| ControlOp::RemoveTask { task }),
    ]
    .boxed()
}

fn pod_info_strategy() -> BoxedStrategy<PodInfo> {
    (
        "[a-z-]{1,8}",
        "[0-9.:]{1,16}",
        (any::<u64>(), any::<u64>(), 0.0..1e3),
        (0u8..2, any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(name, addr, (switches, base, quota), (live, beats, age_ms))| PodInfo {
                name,
                addr,
                switches,
                base,
                quota,
                live: live == 1,
                beats,
                age_ms,
            },
        )
        .boxed()
}

fn seed_descriptor_strategy() -> BoxedStrategy<SeedDescriptor> {
    (
        "[a-z/0-9]{1,16}",
        "[a-z]{1,8}",
        "[A-Z]{1,6}",
        any::<u32>(),
        "[a-z]{1,8}",
        (0.0..1e6, 0.0..1e6, 0.0..1e6, 0.0..1e6),
    )
        .prop_map(
            |(key, task, machine, switch, state, (a, b, c, d))| SeedDescriptor {
                key,
                task,
                machine,
                switch,
                state,
                alloc: [a, b, c, d],
            },
        )
        .boxed()
}

fn diagnostic_strategy() -> BoxedStrategy<Diagnostic> {
    (
        "[A-Z]{0,6}",
        "[a-z]{1,9}",
        any::<u32>(),
        any::<u32>(),
        "[ -~]{0,24}",
    )
        .prop_map(|(machine, phase, line, col, message)| Diagnostic {
            machine,
            phase,
            line,
            col,
            message,
        })
        .boxed()
}

fn control_reply_strategy() -> BoxedStrategy<ControlReply> {
    prop_oneof![
        Just(ControlReply::Ok),
        ("[a-z]{1,8}", any::<u64>(), any::<u64>()).prop_map(|(task, seeds, actions)| {
            ControlReply::Submitted {
                task,
                seeds,
                actions,
            }
        }),
        (vec(seed_descriptor_strategy(), 0..4), cursor_strategy()).prop_map(
            |(seeds, (next_index, total))| ControlReply::Seeds {
                seeds,
                next_index,
                total
            }
        ),
        (
            seed_descriptor_strategy(),
            vec(("[a-z]{1,8}", "[ -~]{0,16}"), 0..4)
        )
            .prop_map(|(desc, vars)| ControlReply::Seed { desc, vars }),
        "[ -~]{0,48}".prop_map(|body| ControlReply::Json { body }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(switch, evacuated)| ControlReply::Drained { switch, evacuated }),
        (any::<u64>(), any::<u64>()).prop_map(|(actions, dropped_tasks)| {
            ControlReply::Replanned {
                actions,
                dropped_tasks,
            }
        }),
        (
            any::<u64>(),
            prop_oneof![Just(None), "[ -~]{0,24}".prop_map(Some)],
        )
            .prop_map(|(seeds, persist_error)| ControlReply::Checkpointed {
                seeds,
                persist_error,
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seeds, skipped)| ControlReply::Restored { seeds, skipped }),
        "[ -~]{0,24}".prop_map(|reason| ControlReply::Rejected { reason }),
        vec(diagnostic_strategy(), 0..4)
            .prop_map(|diagnostics| ControlReply::CompileFailed { diagnostics }),
        fed_control_reply_strategy(),
    ]
    .boxed()
}

/// The federation additions to the reply space (tags 11+).
fn fed_control_reply_strategy() -> BoxedStrategy<ControlReply> {
    prop_oneof![
        any::<u64>().prop_map(|base| ControlReply::PodRegistered { base }),
        vec(pod_info_strategy(), 0..4).prop_map(|pods| ControlReply::Pods { pods }),
        ("[a-z]{1,8}", "[a-z-]{1,8}", "[a-z-]{1,8}", any::<u64>()).prop_map(
            |(task, from_pod, to_pod, seeds)| ControlReply::Migrated {
                task,
                from_pod,
                to_pod,
                seeds,
            }
        ),
        ("[ -~]{0,48}", snapshot_entries_strategy())
            .prop_map(|(source, seeds)| ControlReply::TaskExport { source, seeds }),
    ]
    .boxed()
}

fn frame_strategy() -> BoxedStrategy<Frame> {
    prop_oneof![
        control_op_strategy().prop_map(|op| Frame::Control { op }),
        control_reply_strategy().prop_map(|reply| Frame::ControlReply { reply }),
        ("[a-z-]{1,10}", any::<u32>()).prop_map(|(node, protocol)| Frame::Hello { node, protocol }),
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(switch, seq, at_ns)| Frame::Heartbeat { switch, seq, at_ns }),
        vec(report_strategy(), 0..4).prop_map(|reports| Frame::PollReport { reports }),
        ("[A-Z]{1,6}", option_u32_strategy(), value_strategy(2)).prop_map(
            |(machine, at_switch, value)| Frame::HarvesterDirective {
                machine,
                at_switch,
                value,
            }
        ),
        (
            (
                "[a-z]{1,8}",
                any::<u32>(),
                any::<u64>(),
                "[A-Z]{1,6}",
                "[A-Z]{1,6}"
            ),
            (
                option_u32_strategy(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>()
            ),
            value_strategy(2),
        )
            .prop_map(
                |(
                    (task, from_switch, from_seed, from_machine, to_machine),
                    (at_switch, at_ns, latency_ns, bytes),
                    value,
                )| Frame::SeedMessage {
                    task,
                    from_switch,
                    from_seed,
                    from_machine,
                    to_machine,
                    at_switch,
                    at_ns,
                    latency_ns,
                    bytes,
                    value,
                }
            ),
        (
            "[a-z]{1,8}",
            any::<u32>(),
            any::<u32>(),
            snapshot_strategy()
        )
            .prop_map(|(task, from_switch, to_switch, snapshot)| Frame::Migrate {
                task,
                from_switch,
                to_switch,
                snapshot,
            }),
        Just(Frame::Ack),
        "[ -~]{0,24}".prop_map(|message| Frame::Error { message }),
        Just(Frame::Shutdown),
    ]
    .boxed()
}

fn checkpoint_doc_strategy() -> BoxedStrategy<CheckpointDoc> {
    (
        vec(("[a-z_]{1,10}", "[ -~]{0,48}"), 0..4),
        vec(("[a-z/0-9]{1,16}", snapshot_strategy()), 0..5),
    )
        .prop_map(|(programs, seeds)| CheckpointDoc {
            programs,
            seeds: seeds
                .into_iter()
                .map(|(key, snap)| (key, VSeedSnapshot::V1(snap)))
                .collect(),
        })
        .boxed()
}

fn envelope_strategy() -> BoxedStrategy<Envelope> {
    (any::<u64>(), 0u8..2, frame_strategy())
        .prop_map(|(corr, resp, frame)| Envelope {
            corr,
            response: resp == 1,
            frame,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(env)) == env, and re-encoding the decoded envelope
    /// reproduces the exact same bytes.
    #[test]
    fn codec_round_trip_is_byte_exact(env in envelope_strategy()) {
        let mut bytes = Vec::new();
        encode_envelope(&env, &mut bytes);
        let (decoded, consumed) = decode_envelope(&bytes).expect("decode valid frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &env);
        let mut again = Vec::new();
        encode_envelope(&decoded, &mut again);
        prop_assert_eq!(again, bytes);
    }

    /// Every truncation of a valid frame reports `Truncated` — the
    /// streaming reader's "wait for more bytes" signal — and no prefix
    /// ever decodes as a different complete frame.
    #[test]
    fn every_truncation_is_detected(env in envelope_strategy(), frac in 0.0..1.0f64) {
        let mut bytes = Vec::new();
        encode_envelope(&env, &mut bytes);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert_eq!(
            decode_envelope(&bytes[..cut]).err(),
            Some(WireError::Truncated),
            "cut at {} of {}", cut, bytes.len()
        );
    }

    /// Flipping any single byte never panics, never over-reads, and a
    /// successful decode still re-encodes within the original length.
    #[test]
    fn corrupt_bytes_never_panic(env in envelope_strategy(), pos_frac in 0.0..1.0f64, flip in 1u8..=255) {
        let mut bytes = Vec::new();
        encode_envelope(&env, &mut bytes);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        // Anything else is a clean typed rejection.
        if let Ok((_, consumed)) = decode_envelope(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Random garbage (not derived from any valid frame) is rejected or
    /// bounded — decoding can never consume more than it was given.
    #[test]
    fn random_garbage_is_handled_totally(bytes in vec(any::<u8>(), 0..256)) {
        if let Ok((_, consumed)) = decode_envelope(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// The event loop's incremental [`FrameDecoder`] must peel exactly
    /// the same envelopes out of a byte stream as the one-shot decoder,
    /// no matter how the kernel fragments the reads: the concatenated
    /// encoding of several frames is replayed in arbitrary chunk sizes
    /// (including single bytes) and the decoded sequence compared.
    #[test]
    fn incremental_decoder_matches_one_shot_on_any_split(
        envs in vec(envelope_strategy(), 1..5),
        chunks in vec(1usize..17, 0..32),
    ) {
        let mut stream = Vec::new();
        for env in &envs {
            encode_envelope(env, &mut stream);
        }

        // One-shot reference: repeated decode_envelope over the stream.
        let mut reference = Vec::new();
        let mut rest: &[u8] = &stream;
        while !rest.is_empty() {
            let (env, consumed) = decode_envelope(rest).expect("valid stream");
            reference.push(env);
            rest = &rest[consumed..];
        }
        prop_assert_eq!(&reference, &envs);

        // Incremental: feed the same bytes in arbitrary fragments,
        // draining complete frames after every fragment.
        let mut decoder = FrameDecoder::new();
        let mut incremental = Vec::new();
        let mut offset = 0;
        let mut sizes = chunks.iter().copied().cycle();
        while offset < stream.len() {
            let n = sizes.next().unwrap_or(1).min(stream.len() - offset);
            decoder.extend(&stream[offset..offset + n]);
            offset += n;
            while let Some(decoded) = decoder.next().expect("clean framing") {
                match decoded {
                    Decoded::Frame(env, _) => incremental.push(env),
                    Decoded::Bad { error, .. } => panic!("valid frame decoded as Bad: {error:?}"),
                }
            }
        }
        prop_assert_eq!(decoder.buffered(), 0, "no residual bytes after full replay");
        prop_assert_eq!(&incremental, &reference);
    }

    /// A `FARMCKP2` checkpoint document survives the disk round trip
    /// losslessly: same programs, same seeds, no salvage flags raised.
    #[test]
    fn checkpoint_v2_round_trips(doc in checkpoint_doc_strategy()) {
        let bytes = encode_checkpoint_doc(&doc);
        let load = decode_checkpoint_any(&bytes).expect("intact file decodes");
        prop_assert_eq!(load.format, 2);
        prop_assert!(!load.salvaged);
        prop_assert_eq!(load.corrupt_records, 0);
        prop_assert_eq!(load.doc, doc);
    }

    /// Cutting a `FARMCKP2` file anywhere — a torn write — still yields
    /// a clean load of some prefix of the original records, never a
    /// panic and never invented entries. This is the crash-safety
    /// contract the restore path leans on.
    #[test]
    fn checkpoint_v2_truncation_salvages_a_prefix(
        doc in checkpoint_doc_strategy(),
        frac in 0.0..1.0f64,
    ) {
        let bytes = encode_checkpoint_doc(&doc);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        match decode_checkpoint_any(&bytes[..cut]) {
            Ok(load) => {
                prop_assert!(load.doc.programs.len() <= doc.programs.len());
                prop_assert!(load.doc.seeds.len() <= doc.seeds.len());
                prop_assert_eq!(&load.doc.programs[..], &doc.programs[..load.doc.programs.len()]);
                prop_assert_eq!(&load.doc.seeds[..], &doc.seeds[..load.doc.seeds.len()]);
                let complete = load.doc.programs.len() == doc.programs.len()
                    && load.doc.seeds.len() == doc.seeds.len();
                prop_assert!(
                    load.salvaged || complete,
                    "lost records without raising the salvage flag (cut at {} of {})",
                    cut, bytes.len()
                );
            }
            // Cuts inside the 8-byte magic stop looking like v2 at all;
            // those fall through to the strict legacy decoders and come
            // back as a typed error, which is equally acceptable.
            Err(_) => prop_assert!(cut < 8, "v2 body cut at {} must salvage", cut),
        }
    }

    /// Flipping any single byte of a `FARMCKP2` file never panics: the
    /// CRC framing either drops the damaged record (salvage) or the
    /// file stops looking like a checkpoint and errors cleanly.
    #[test]
    fn checkpoint_v2_bit_flips_never_panic(
        doc in checkpoint_doc_strategy(),
        pos_frac in 0.0..1.0f64,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_checkpoint_doc(&doc);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        if let Ok(load) = decode_checkpoint_any(&bytes) {
            // However the damage lands, nothing is invented out of thin
            // air beyond what the original document contained.
            prop_assert!(load.doc.programs.len() <= doc.programs.len());
            prop_assert!(load.doc.seeds.len() <= doc.seeds.len());
        }
    }

    /// Mixed-version federation: a decoder that predates the fed tags
    /// must step over them without desyncing the stream. Simulated by
    /// rewriting a fed control frame's op tag to a value *no* revision
    /// knows — exactly the position a pre-federation decoder is in when
    /// tags 11+ arrive — and asserting the framing consumes the whole
    /// frame as a typed `Bad` and decodes the next frame intact.
    #[test]
    fn unknown_fed_tags_step_over_without_desync(
        op in fed_control_op_strategy(),
        corr in 1u64..1_000_000,
        follow in envelope_strategy(),
        unknown_tag in 200u8..=255,
    ) {
        let fed_env = Envelope { corr, response: false, frame: Frame::Control { op } };
        let mut bytes = Vec::new();
        encode_envelope(&fed_env, &mut bytes);
        let framed_len = bytes.len();

        // Walk the envelope header (len:varint | ver | kind | flags |
        // corr:varint) to the first payload byte — the control op tag.
        let mut at = 0;
        while bytes[at] & 0x80 != 0 { at += 1; }
        at += 1; // length varint
        at += 3; // version, frame kind, flags
        while bytes[at] & 0x80 != 0 { at += 1; }
        at += 1; // correlation varint
        bytes[at] = unknown_tag;

        prop_assert_eq!(
            decode_envelope(&bytes).err(),
            Some(WireError::Tag { what: "control op", tag: unknown_tag })
        );

        encode_envelope(&follow, &mut bytes);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&bytes);
        match decoder.next().expect("framing survives an unknown tag") {
            Some(Decoded::Bad { corr: recovered, error, nbytes }) => {
                prop_assert_eq!(nbytes, framed_len, "Bad consumes exactly the framed bytes");
                prop_assert_eq!(recovered, Some(corr), "corr recoverable for an Error reply");
                prop_assert_eq!(error, WireError::Tag { what: "control op", tag: unknown_tag });
            }
            other => prop_assert!(false, "expected Bad, got {:?}", other),
        }
        match decoder.next().expect("stream stays in sync") {
            Some(Decoded::Frame(env, _)) => prop_assert_eq!(env, follow),
            other => prop_assert!(false, "expected next frame, got {:?}", other),
        }
        prop_assert_eq!(decoder.buffered(), 0);
    }
}
