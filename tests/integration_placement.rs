//! Integration: the seeder's global placement across the live framework —
//! capacity pressure, re-optimization, and migration with state transfer.

use std::collections::BTreeMap;

use farm_almanac::value::Value;
use farm_core::farm::{Farm, FarmConfig};
use farm_core::seeder::PlannedAction;
use farm_netsim::switch::SwitchModel;
use farm_netsim::topology::Topology;
use farm_placement::heuristic::HeuristicOptions;

fn fabric(leaves: usize) -> Topology {
    Topology::spine_leaf(
        2,
        leaves,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

/// A flexible one-seed task that can live on any switch and wants 1 vCPU.
fn flexible_task_src() -> &'static str {
    r#"
machine Flex {
  place any;
  poll p = Poll { .ival = 100, .what = port ANY };
  long total = 0;
  state s {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256) then { return res.vCPU; }
    }
    when (p as stats) do { total = total + list_len(stats); }
  }
}
"#
}

#[test]
fn placement_spreads_flexible_seeds_for_utility() {
    let mut farm = Farm::new(fabric(4), FarmConfig::default());
    // 12 flexible single-seed tasks on 6 switches with 4 vCPU each.
    for i in 0..12 {
        farm.deploy_task(&format!("flex{i}"), flexible_task_src(), &BTreeMap::new())
            .unwrap();
    }
    assert_eq!(farm.deployed_seeds(), 12);
    // The optimizer should spread seeds rather than pile onto one switch.
    let per_switch: Vec<usize> = farm
        .network()
        .switch_ids()
        .iter()
        .map(|id| farm.soil(*id).unwrap().num_seeds())
        .collect();
    let max = per_switch.iter().max().copied().unwrap();
    assert!(max <= 4, "seeds piled up: distribution {per_switch:?}");
}

#[test]
fn over_capacity_tasks_are_dropped_whole() {
    // A tiny fabric: 3 switches × 4 vCPU = 12 vCPU. Each seed of the
    // 3-seed task wants ≥ 2 vCPU; the fifth task cannot fit.
    let src = r#"
machine Big {
  place any;
  poll p = Poll { .ival = 100, .what = port ANY };
  state s {
    util (res) {
      if (res.vCPU >= 2) then { return res.vCPU; }
    }
    when (p as stats) do { }
  }
}
"#;
    let mut farm = Farm::new(fabric(1), FarmConfig::default());
    let mut dropped_any = false;
    for i in 0..8 {
        let plan = farm
            .deploy_task(&format!("big{i}"), src, &BTreeMap::new())
            .unwrap();
        if !plan.dropped_tasks.is_empty() {
            dropped_any = true;
        }
    }
    assert!(dropped_any, "capacity pressure must drop tasks");
    // Deployed seeds correspond exactly to the seeder's placements.
    assert_eq!(farm.deployed_seeds(), farm.seeder().placements().count());
}

#[test]
fn reoptimization_migrates_seed_state() {
    let mut farm = Farm::new(fabric(4), FarmConfig::default());
    farm.seeder_mut().set_options(HeuristicOptions::default());
    for i in 0..6 {
        farm.deploy_task(&format!("flex{i}"), flexible_task_src(), &BTreeMap::new())
            .unwrap();
    }
    // Accumulate some seed state.
    farm.advance(farm_netsim::time::Time::from_secs(1));
    let states_before: Vec<i64> = farm
        .network()
        .switch_ids()
        .iter()
        .flat_map(|id| {
            farm.soil(*id)
                .unwrap()
                .seeds()
                .map(|s| s.var("total").and_then(|v| v.as_int()).unwrap_or(0))
                .collect::<Vec<_>>()
        })
        .collect();
    assert!(
        states_before.iter().any(|t| *t > 0),
        "seeds accumulated state"
    );

    // Re-plan; a stable world must not migrate.
    let plan = farm.replan().unwrap();
    let moves = plan
        .actions
        .iter()
        .filter(|a| matches!(a, PlannedAction::Migrate { .. }))
        .count();
    assert_eq!(moves, 0, "stable world migrated seeds: {:?}", plan.actions);

    // Migration preserves state when it does happen: force one by
    // deploying pinned pressure tasks on a loaded switch.
    let loaded = farm
        .network()
        .switch_ids()
        .into_iter()
        .max_by_key(|id| farm.soil(*id).unwrap().num_seeds())
        .unwrap();
    let pin_src = format!(
        r#"
machine Pin {{
  place any {};
  poll p = Poll {{ .ival = 100, .what = port ANY }};
  state s {{
    util (res) {{
      if (res.vCPU >= 3 and res.RAM >= 4096) then {{ return 1000 + res.vCPU; }}
    }}
    when (p as stats) do {{ }}
  }}
}}
"#,
        loaded.0
    );
    farm.deploy_task("pin", &pin_src, &BTreeMap::new()).unwrap();
    let m = farm.metrics();
    if m.migrations > 0 {
        assert!(
            m.migration_bytes > 0,
            "migrations must transfer state bytes"
        );
    }
    // Whatever happened, every seed still runs and no state was lost to
    // zero across the fleet.
    let total_after: i64 = farm
        .network()
        .switch_ids()
        .iter()
        .flat_map(|id| {
            farm.soil(*id)
                .unwrap()
                .seeds()
                .map(|s| s.var("total").and_then(|v| v.as_int()).unwrap_or(0))
                .collect::<Vec<_>>()
        })
        .sum();
    assert!(total_after >= states_before.iter().sum::<i64>());
}

#[test]
fn external_parameters_differ_per_task_instance() {
    let mut farm = Farm::new(fabric(2), FarmConfig::default());
    for (name, th) in [("a", 100), ("b", 999)] {
        let mut ext = BTreeMap::new();
        ext.insert(
            "HH".to_string(),
            farm_core::farm::external(&[("threshold", Value::Int(th))]),
        );
        farm.deploy_task(name, farm_almanac::programs::HEAVY_HITTER, &ext)
            .unwrap();
    }
    let mut seen = Vec::new();
    for id in farm.network().switch_ids() {
        for seed in farm.soil(id).unwrap().seeds() {
            seen.push(seed.var("threshold").cloned().unwrap());
        }
    }
    assert!(seen.contains(&Value::Int(100)));
    assert!(seen.contains(&Value::Int(999)));
}
