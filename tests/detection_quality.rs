//! End-to-end detection-quality gates over the hostile-traffic scenario
//! suite (crates/scenario → netsim → soil → harvester → scorer).
//!
//! Every FARM task in the smoke suite must clear fixed quality floors —
//! recall ≥ 0.9 and precision ≥ 0.8 against the planted ground truth —
//! and the whole pipeline must be deterministic: replaying the same
//! seed yields a byte-identical `BENCH_detection.json` body.

use farm_bench::detection::{bench_doc, drive};
use farm_scenario::{ScenarioClass, ScenarioScale, ScenarioSpec};

const RECALL_FLOOR: f64 = 0.9;
const PRECISION_FLOOR: f64 = 0.8;

fn floors_hold(class: ScenarioClass) {
    let run = drive(&ScenarioSpec {
        class,
        scale: ScenarioScale::Smoke,
        seed: 42,
    })
    .unwrap();
    assert!(
        run.tasks.iter().filter(|t| t.system == "farm").count() >= 2,
        "{}: suite too small: {:?}",
        class.name(),
        run.tasks
    );
    for t in &run.tasks {
        if t.system != "farm" {
            continue; // sFlow/Sonata are comparison points, not gated
        }
        assert!(
            t.score.recall >= RECALL_FLOOR,
            "{}/{}: recall {:.2} below floor {RECALL_FLOOR} ({:?})",
            run.class,
            t.task,
            t.score.recall,
            t.score
        );
        assert!(
            t.score.precision >= PRECISION_FLOOR,
            "{}/{}: precision {:.2} below floor {PRECISION_FLOOR} ({:?})",
            run.class,
            t.task,
            t.score.precision,
            t.score
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
)]
fn flash_crowd_meets_floors() {
    floors_hold(ScenarioClass::FlashCrowd);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
)]
fn diurnal_drift_meets_floors() {
    floors_hold(ScenarioClass::DiurnalDrift);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
)]
fn multi_vector_meets_floors() {
    floors_hold(ScenarioClass::MultiVector);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
)]
fn churn_hh_meets_floors() {
    floors_hold(ScenarioClass::ChurnHh);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
)]
fn microburst_meets_floors() {
    floors_hold(ScenarioClass::Microburst);
}

/// Identical seeds ⇒ byte-identical benchmark bodies. This is the
/// property the CI `--check` regression gate and committed baseline
/// rest on.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "interpreter-bound replay; run with --release (CI: detection-smoke)"
)]
fn identical_seeds_produce_identical_bench_bodies() {
    let spec = ScenarioSpec {
        class: ScenarioClass::FlashCrowd,
        scale: ScenarioScale::Smoke,
        seed: 1337,
    };
    let a = drive(&spec).unwrap();
    let b = drive(&spec).unwrap();
    let body_a = bench_doc(std::slice::from_ref(&a)).pretty();
    let body_b = bench_doc(std::slice::from_ref(&b)).pretty();
    assert_eq!(body_a, body_b, "same seed must serialize byte-identically");
    // And a different seed must actually change the measured trace.
    let c = drive(&ScenarioSpec { seed: 7, ..spec }).unwrap();
    assert_ne!(
        bench_doc(std::slice::from_ref(&c)).pretty(),
        body_a,
        "different seed left the benchmark body unchanged"
    );
}
