//! Transport equivalence: a farm driven over real loopback TCP
//! ([`TransportMode::Tcp`]) must be observably identical to the
//! in-process fast path — same harvester deliveries, same event
//! stream, same counters — because the wire codec is byte-exact and
//! delivery semantics stay on virtual time.

use std::collections::BTreeMap;
use std::sync::Arc;

use farm_core::harvester::ReceivedMessage;
use farm_core::prelude::*;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
use farm_netsim::types::SwitchId;
use farm_telemetry::Snapshot;

/// One fixed scenario: HH detection over a lossy control channel with a
/// mid-run migration trigger (switch crash + recovery).
fn run_scenario(mode: TransportMode) -> (Vec<ReceivedMessage>, Vec<Event>, Snapshot) {
    let topo = Topology::spine_leaf(
        2,
        3,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let events = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(topo)
        .with_transport(mode)
        .with_fault_plan(
            FaultPlan::new()
                .with(
                    Time::from_millis(8),
                    FaultKind::ControlLoss {
                        switch: None,
                        spec: LossSpec {
                            drop: 0.3,
                            duplicate: 0.1,
                            delay: Dur::from_micros(40),
                        },
                    },
                )
                .with(
                    Time::from_millis(20),
                    FaultKind::SwitchCrash {
                        switch: SwitchId(2),
                    },
                ),
        )
        .with_harvester("hh", Box::new(CollectingHarvester::new()))
        .with_sink(events.clone())
        .build();
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 16,
        hh_ratio: 0.1,
        ..Default::default()
    });
    farm.run(&mut [&mut hh], Time::from_millis(60), Dur::from_millis(1));
    let h: &CollectingHarvester = farm.harvester("hh").unwrap();
    (
        h.received.clone(),
        events.events(),
        farm.telemetry().snapshot(),
    )
}

#[test]
fn tcp_and_in_process_transports_are_observably_identical() {
    let (in_msgs, in_events, in_snap) = run_scenario(TransportMode::InProcess);
    let (tcp_msgs, tcp_events, tcp_snap) = run_scenario(TransportMode::Tcp);

    assert!(!in_msgs.is_empty(), "scenario must produce reports");
    assert_eq!(
        in_msgs, tcp_msgs,
        "harvesters must receive identical message streams"
    );
    // SolverPhase and ReplanSummary events carry wall-clock timings,
    // which differ between any two runs; everything else is virtual-time
    // determined and must match exactly.
    let virtual_only = |events: Vec<Event>| -> Vec<Event> {
        events
            .into_iter()
            .filter(|e| !matches!(e, Event::SolverPhase { .. } | Event::ReplanSummary { .. }))
            .collect()
    };
    assert_eq!(
        virtual_only(in_events),
        virtual_only(tcp_events),
        "telemetry event streams must be identical"
    );

    // The simulation-side counters agree...
    for key in [
        "farm.collector_messages",
        "farm.collector_bytes",
        "farm.seed_messages",
        "farm.delivery_retries",
        "farm.dead_letters",
        "farm.heartbeats",
        "farm.migrations",
    ] {
        assert_eq!(
            in_snap.counter(key),
            tcp_snap.counter(key),
            "{key} must match across transports"
        );
    }

    // ...while only the TCP run exercised the wire.
    assert_eq!(in_snap.counter("net.bytes"), 0);
    assert!(
        tcp_snap.counter("net.bytes") > 0,
        "TCP mode moved real bytes"
    );
    assert!(tcp_snap.counter("net.rpcs") > 0, "deliveries rode RPCs");
    assert_eq!(
        tcp_snap.counter("transport.fallbacks"),
        0,
        "no delivery fell back to the in-process path"
    );
    let lat = tcp_snap
        .histogram("net.rpc_latency_us")
        .expect("TCP mode records RPC latency");
    assert_eq!(lat.count, tcp_snap.counter("net.rpcs"));
}

#[test]
fn tcp_transport_beacons_heartbeats_on_the_wire() {
    let (_, _, snap) = run_scenario(TransportMode::Tcp);
    // Every heartbeat round beacons each reachable switch once.
    assert!(
        snap.counter("net.frames_sent") > snap.counter("farm.heartbeats"),
        "heartbeat beacons ride the wire alongside report frames"
    );
}
