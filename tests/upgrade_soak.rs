//! Kill-tested rolling upgrade: a real `farmd` binary on loopback TCP,
//! loaded with >100 seeds, ticking virtual time under an active churn
//! fault plan and checkpointing periodically — then SIGKILLed without
//! warning, restarted, and audited for zero seed loss against the last
//! durable checkpoint.
//!
//! The contract under test is the one the rolling-upgrade runbook in
//! the README leans on:
//!
//! * checkpoint writes are atomic, so the file a dead daemon leaves
//!   behind is always a complete `FARMCKP2` document, never a torn one;
//! * restore-on-boot recompiles the persisted program catalog and rolls
//!   every seed back to its checkpointed variables, byte-identically.
//!
//! `FARM_FAULT_SEED` selects the churn seed (default 7) so CI can soak
//! several deterministic fault schedules. `UPGRADE_STATS_OUT`, when
//! set, receives the post-restore stats JSON for artifact upload.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::Path;
use std::process::Child;
use std::time::{Duration, Instant};

use farm_ctl::CtlClient;
use farm_net::{decode_checkpoint_any, CheckpointDoc, ControlOp, ControlReply};

#[path = "util/mod.rs"]
mod util;
use util::{scratch, wait_exit, write_config};

/// Fabric shape used by the soak: 2 spines + 14 leaves = 16 switches,
/// so each `place all` task plants 16 seeds and 7 tasks plant 112 —
/// comfortably past the 100-seed bar the acceptance check sets.
const SPINES: usize = 2;
const LEAVES: usize = 14;
const TASKS: usize = 7;
const SEEDS_PER_TASK: usize = SPINES + LEAVES;

/// Churn warmup: submissions must land on a healthy fabric (a `place
/// all` task cannot be placed while one of its pinned switches is
/// down), so the fault plan starts this far into virtual time.
const FAULT_START_MS: u64 = 2_000;

/// A machine whose variables advance on every poll round, so "the
/// restored variables match the checkpoint byte-for-byte" is a real
/// assertion rather than comparing constants.
const SOAK_MACHINE: &str = "\
machine Soak {
  place all;
  poll pollStats = Poll { .ival = 10, .what = port ANY };
  long polls = 0;
  long seen = 0;
  state run {
    util (res) { if (res.vCPU >= 0) then { return 1; } }
    when (pollStats as stats) do {
      polls = polls + 1;
      seen = seen + list_len(stats);
    }
  }
}
";

fn fault_seed() -> u64 {
    std::env::var("FARM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Spawns the real farmd binary via the shared harness.
fn spawn_farmd(config: &Path) -> (Child, SocketAddr) {
    let bin = util::locate_bin("farmd", option_env!("CARGO_BIN_EXE_farmd"));
    util::spawn_daemon(&bin, config)
}

fn submit_soak_tasks(client: &CtlClient) {
    for i in 0..TASKS {
        match client
            .op(ControlOp::SubmitProgram {
                name: format!("soak{i}"),
                source: SOAK_MACHINE.into(),
            })
            .expect("submit rpc")
        {
            ControlReply::Submitted { seeds, .. } => {
                assert_eq!(
                    seeds as usize, SEEDS_PER_TASK,
                    "place all plants everywhere"
                );
            }
            other => panic!("submit soak{i} answered {other:?}"),
        }
    }
}

/// The farm's virtual clock, read off the stats body's leading
/// `"now_ns":<n>` field.
fn virtual_now_ns(client: &CtlClient) -> u64 {
    let body = match client.op(ControlOp::stats_all()).expect("stats rpc") {
        ControlReply::Json { body } => body,
        other => panic!("stats answered {other:?}"),
    };
    let rest = body
        .split_once("\"now_ns\":")
        .unwrap_or_else(|| panic!("no now_ns in {body}"))
        .1;
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("now_ns parses")
}

fn list_keys(client: &CtlClient) -> Vec<String> {
    match client.op(ControlOp::list_all()).expect("list rpc") {
        ControlReply::Seeds { seeds, .. } => seeds.into_iter().map(|s| s.key).collect(),
        other => panic!("list answered {other:?}"),
    }
}

/// `(name, rendered value)` pairs in `farm.seed_vars` order: the same
/// `Value::to_string` rendering, sorted — what `describe` replies with.
fn rendered_vars(doc: &CheckpointDoc) -> BTreeMap<String, (String, Vec<(String, String)>)> {
    doc.seeds
        .iter()
        .map(|(key, snap)| {
            let snap = snap.clone().into_latest();
            let mut vars: Vec<(String, String)> = snap
                .vars
                .iter()
                .map(|(n, v)| (n.clone(), v.to_string()))
                .collect();
            vars.sort();
            (key.clone(), (snap.state, vars))
        })
        .collect()
}

/// Polls the checkpoint file until it holds every seed (each task's
/// seeds enter the store via heartbeat checkpoints, the file via the
/// periodic ticker), then lets churn run a little longer so the kill
/// lands mid-flight, not at a quiet point.
fn wait_for_full_checkpoint(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(bytes) = std::fs::read(path) {
            if let Ok(load) = decode_checkpoint_any(&bytes) {
                if load.doc.seeds.len() == TASKS * SEEDS_PER_TASK
                    && load.doc.programs.len() == TASKS
                {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "checkpoint never captured all {} seeds",
            TASKS * SEEDS_PER_TASK
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn sigkill_mid_churn_loses_no_seed_state() {
    let ckpt = scratch("kill-ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let seed = fault_seed();

    // Phase 1: the victim. Virtual time ticks in wall lockstep, a churn
    // plan crashes and degrades leaf switches, and the whole farm is
    // checkpointed to disk every 40ms.
    let soak_cfg = write_config(
        "kill-soak.toml",
        format!(
            "[server]\nlisten = \"127.0.0.1:0\"\nshutdown_drain_ms = 20\n\
             checkpoint_path = \"{}\"\ncheckpoint_interval_ms = 40\n\
             [farm]\nspines = {SPINES}\nleaves = {LEAVES}\ntick_interval_ms = 5\n\
             [faults]\nseed = {seed}\nstart_ms = {FAULT_START_MS}\n\
             mean_gap_ms = 25\nhorizon_ms = 60000\n",
            ckpt.display()
        ),
    );
    let (mut victim, addr) = spawn_farmd(&soak_cfg);
    let client = CtlClient::connect(addr);
    submit_soak_tasks(&client);
    wait_for_full_checkpoint(&ckpt);
    // Virtual time runs in wall lockstep; hold the kill until the
    // fabric is demonstrably past the warmup and inside the churn
    // window, so the SIGKILL lands mid-fault-schedule.
    let churn_live_ns = (FAULT_START_MS + 500) * 1_000_000;
    let deadline = Instant::now() + Duration::from_secs(30);
    while virtual_now_ns(&client) < churn_live_ns {
        assert!(
            Instant::now() < deadline,
            "virtual clock never reached churn"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // Let faults and polls churn the captured state a while longer.
    std::thread::sleep(Duration::from_millis(300));

    // SIGKILL: no drain, no final checkpoint, no goodbye.
    victim.kill().expect("kill farmd");
    let _ = victim.wait();

    // Ground truth: whatever checkpoint the dead daemon last completed.
    // Atomic write means the file always decodes as a whole document.
    let bytes = std::fs::read(&ckpt).expect("checkpoint survives the kill");
    let load = decode_checkpoint_any(&bytes).expect("post-kill checkpoint decodes");
    assert!(
        !load.salvaged,
        "an atomically renamed file has no torn tail"
    );
    assert_eq!(load.corrupt_records, 0);
    assert_eq!(load.doc.programs.len(), TASKS);
    assert_eq!(load.doc.seeds.len(), TASKS * SEEDS_PER_TASK);
    assert!(load.doc.seeds.len() >= 100, "soak must cover >=100 seeds");
    let expected = rendered_vars(&load.doc);

    // Phase 2: the successor. Quiet config — no ticking, no faults, no
    // checkpoint ticker — so the restored state holds still while we
    // audit it. Restore-on-boot does all the work before the first op.
    let quiet_cfg = write_config(
        "kill-quiet.toml",
        format!(
            "[server]\nlisten = \"127.0.0.1:0\"\nshutdown_drain_ms = 20\n\
             checkpoint_path = \"{}\"\n[farm]\nspines = {SPINES}\nleaves = {LEAVES}\n",
            ckpt.display()
        ),
    );
    let (mut successor, addr) = spawn_farmd(&quiet_cfg);
    let client = CtlClient::connect(addr);

    // Zero seed loss: every checkpointed key is live again.
    let mut live = list_keys(&client);
    live.sort();
    let mut wanted: Vec<String> = expected.keys().cloned().collect();
    wanted.sort();
    assert_eq!(live, wanted, "restored seed population drifted");

    // Byte-identical variables (and machine state) per seed.
    for (key, (state, vars)) in &expected {
        match client
            .op(ControlOp::DescribeSeed { key: key.clone() })
            .expect("describe rpc")
        {
            ControlReply::Seed { desc, vars: got } => {
                assert_eq!(&desc.state, state, "{key}: state rolled back wrong");
                assert_eq!(&got, vars, "{key}: restored vars differ from checkpoint");
            }
            other => panic!("describe {key} answered {other:?}"),
        }
    }

    // Post-restore stats: the CI artifact, plus a sanity check that the
    // audit counters reflect a restored (not empty) daemon.
    let stats = match client.op(ControlOp::stats_all()).expect("stats rpc") {
        ControlReply::Json { body } => body,
        other => panic!("stats answered {other:?}"),
    };
    assert!(
        stats.contains(&format!("\"seeds\":{}", TASKS * SEEDS_PER_TASK)),
        "{stats}"
    );
    if let Ok(out) = std::env::var("UPGRADE_STATS_OUT") {
        std::fs::write(&out, &stats).expect("write stats artifact");
    }

    assert!(matches!(
        client.op(ControlOp::Shutdown).expect("shutdown rpc"),
        ControlReply::Ok
    ));
    let status = wait_exit(&mut successor, "after shutdown op");
    assert_eq!(status.code(), Some(0), "farmctl-driven shutdown exits 0");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&soak_cfg);
    let _ = std::fs::remove_file(&quiet_cfg);
}

/// The supervised half of the runbook: SIGTERM drains, writes a final
/// checkpoint even with no checkpoint ticker configured, removes the
/// PID file, and exits with the distinct code 3.
#[cfg(unix)]
#[test]
fn sigterm_drains_writes_final_checkpoint_and_exits_3() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let ckpt = scratch("term-ckpt");
    let pid_file = scratch("term-pid");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&pid_file);
    let cfg = write_config(
        "term.toml",
        format!(
            "[server]\nlisten = \"127.0.0.1:0\"\nshutdown_drain_ms = 20\n\
             checkpoint_path = \"{}\"\npid_file = \"{}\"\n\
             [farm]\nspines = {SPINES}\nleaves = {LEAVES}\n",
            ckpt.display(),
            pid_file.display()
        ),
    );
    let (mut child, addr) = spawn_farmd(&cfg);
    let client = CtlClient::connect(addr);
    match client
        .op(ControlOp::SubmitProgram {
            name: "soak".into(),
            source: SOAK_MACHINE.into(),
        })
        .expect("submit rpc")
    {
        ControlReply::Submitted { seeds, .. } => assert_eq!(seeds as usize, SEEDS_PER_TASK),
        other => panic!("submit answered {other:?}"),
    }
    let pid_body = std::fs::read_to_string(&pid_file).expect("pid file written");
    assert_eq!(pid_body.trim(), child.id().to_string(), "pid file content");
    // No ticker and no checkpoint op ran, so only the SIGTERM teardown
    // can account for the file we assert below.
    assert!(!ckpt.exists(), "no checkpoint before the signal");

    assert_eq!(unsafe { kill(child.id() as i32, SIGTERM) }, 0, "send TERM");
    let status = wait_exit(&mut child, "after SIGTERM");
    assert_eq!(status.code(), Some(3), "signal exit is distinct (code 3)");

    let bytes = std::fs::read(&ckpt).expect("final checkpoint written on TERM");
    let load = decode_checkpoint_any(&bytes).expect("final checkpoint decodes");
    assert_eq!(load.doc.programs.len(), 1);
    assert_eq!(load.doc.seeds.len(), SEEDS_PER_TASK);
    assert!(!pid_file.exists(), "pid file removed on graceful exit");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&cfg);
}
