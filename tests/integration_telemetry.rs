//! End-to-end telemetry: builder-attached sinks observe the seed
//! lifecycle, the registry accumulates every layer's instruments, and
//! the legacy `Metrics` view is exactly the registry's `farm.*` slice.

use std::collections::BTreeMap;
use std::sync::Arc;

use farm_core::prelude::*;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};

fn fabric() -> Topology {
    Topology::spine_leaf(
        2,
        3,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

fn run_hh(farm: &mut Farm) {
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .expect("HH compiles and places");
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut hh = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 16,
        hh_ratio: 0.1,
        hh_rate_bps: 5_000_000_000,
        ..Default::default()
    });
    farm.run(&mut [&mut hh], Time::from_millis(50), Dur::from_millis(1));
}

#[test]
fn deploy_emits_seed_lifecycle_events() {
    let log = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(fabric()).with_sink(log.clone()).build();
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .expect("HH compiles and places");

    let events = log.events();
    let deployed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::SeedDeployed { task, switch, .. } => Some((task.clone(), *switch)),
            _ => None,
        })
        .collect();
    // `place all` puts one seed on each of the 5 switches.
    assert_eq!(deployed.len(), 5);
    assert!(deployed.iter().all(|(task, _)| task == "hh"));
    let mut switches: Vec<u32> = deployed.iter().map(|(_, s)| *s).collect();
    switches.sort_unstable();
    switches.dedup();
    assert_eq!(switches.len(), 5, "one seed per distinct switch");

    // Planning itself is visible: solver phases and the replan outcome.
    assert!(events.iter().any(|e| matches!(
        e,
        Event::SolverPhase {
            phase: "greedy",
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::ReplanCompleted { actions: 5, .. })));
}

#[test]
fn running_traffic_fills_poll_ipc_and_detection_instruments() {
    let log = Arc::new(RingBufferSink::new(1 << 20));
    let mut farm = FarmBuilder::new(fabric()).with_sink(log.clone()).build();
    run_hh(&mut farm);

    let snap = farm.telemetry().snapshot();
    assert!(snap.counter("soil.asic_polls") > 0);
    assert!(snap.counter("pcie.requests") > 0);
    assert!(snap.counter("ipc.messages") > 0);

    let poll = snap.histogram("poll.latency_us").expect("polls recorded");
    assert!(poll.count > 0);
    assert!(poll.p50.is_some() && poll.p99.is_some());
    assert!(poll.p50.unwrap() <= poll.p99.unwrap());

    // The event stream saw the polls too.
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, Event::PollIssued { .. })));
}

#[test]
fn metrics_compat_view_equals_registry_counters() {
    let mut farm = Farm::new(fabric(), FarmConfig::default());
    farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
    run_hh(&mut farm);

    let metrics = farm.metrics();
    let snap = farm.telemetry().snapshot();
    assert_eq!(metrics, Metrics::from_snapshot(&snap));
    assert_eq!(
        metrics.collector_messages,
        snap.counter("farm.collector_messages")
    );
    assert_eq!(
        metrics.collector_bytes,
        snap.counter("farm.collector_bytes")
    );
    assert_eq!(metrics.replans, snap.counter("farm.replans"));
    assert!(metrics.collector_bytes > 0, "harvester traffic must flow");

    // Detection latency: one histogram sample per harvester report.
    let detection = snap
        .histogram("detection.latency_us")
        .expect("reports were delivered");
    assert!(detection.count > 0);
    assert_eq!(detection.count, metrics.collector_messages);
    assert!(detection.p99.is_some());
}

#[test]
fn ring_buffer_reports_overflow_instead_of_growing() {
    let log = Arc::new(RingBufferSink::new(8));
    let mut farm = FarmBuilder::new(fabric()).with_sink(log.clone()).build();
    run_hh(&mut farm);
    assert_eq!(log.len(), 8, "capacity is a hard bound");
    assert!(log.dropped() > 0, "the run emits far more than 8 events");
}
