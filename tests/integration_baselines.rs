//! Integration: FARM and the baselines observing the *same* traffic on
//! the *same* fabric — the comparisons behind Tab. 4 and Fig. 4.

use std::collections::BTreeMap;

use farm_baselines::{SflowConfig, SflowSystem, SonataConfig, SonataSystem};
use farm_core::farm::{Farm, FarmConfig};
use farm_core::harvester::CollectingHarvester;
use farm_netsim::network::Network;
use farm_netsim::switch::SwitchModel;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig, Workload};

fn fabric() -> Topology {
    Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

fn hh_config(switch: farm_netsim::types::SwitchId) -> HhConfig {
    HhConfig {
        switch,
        n_ports: 48,
        hh_ratio: 0.05,
        hh_rate_bps: 5_000_000_000,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn farm_detects_before_every_baseline() {
    // FARM.
    let farm_ms = {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let leaf = farm.network().topology().leaves().next().unwrap();
        farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
        let src = format!(
            r#"
machine HH {{
  place any {};
  poll p = Poll {{ .ival = 1, .what = port ANY }};
  list hot;
  state observe {{
    util (res) {{ if (res.vCPU >= 0) then {{ return 1; }} }}
    when (p as stats) do {{
      int i = 0;
      while (i < list_len(stats)) {{
        if (stat_tx_bytes(list_get(stats, i)) >= 100000) then {{
          list_push(hot, stat_port(list_get(stats, i)));
        }}
        i = i + 1;
      }}
      if (not is_list_empty(hot)) then {{
        send hot to harvester;
        list_clear(hot);
      }}
    }}
  }}
}}
"#,
            leaf.0
        );
        farm.deploy_task("hh", &src, &BTreeMap::new()).unwrap();
        let mut traffic = HeavyHitterWorkload::new(hh_config(leaf));
        farm.run(
            &mut [&mut traffic],
            Time::from_millis(100),
            Dur::from_millis(1),
        );
        let h: &CollectingHarvester = farm.harvester("hh").unwrap();
        h.first_arrival_after(Time::ZERO).unwrap().as_nanos() as f64 / 1e6
    };

    // sFlow on an identical fresh fabric.
    let sflow_ms = {
        let mut net = Network::new(fabric());
        let leaf = net.topology().leaves().next().unwrap();
        let ids = net.switch_ids();
        let mut sflow = SflowSystem::new(
            &ids,
            SflowConfig {
                counter_interval: Dur::from_millis(100),
                hh_threshold_bps: 800_000_000,
                ..Default::default()
            },
        );
        let mut traffic = HeavyHitterWorkload::new(hh_config(leaf));
        let mut now = Time::ZERO;
        while now < Time::from_secs(1) {
            let events = traffic.advance(now, Dur::from_millis(10));
            net.apply_traffic(&events);
            sflow.observe_traffic(&events, &mut net);
            now += Dur::from_millis(10);
            sflow.advance(now, &mut net);
        }
        sflow
            .first_detection_after(Time::ZERO, leaf)
            .unwrap()
            .as_nanos() as f64
            / 1e6
    };

    // Sonata on an identical fresh fabric.
    let sonata_ms = {
        let mut net = Network::new(fabric());
        let leaf = net.topology().leaves().next().unwrap();
        let ids = net.switch_ids();
        let mut sonata = SonataSystem::new(
            &ids,
            SonataConfig {
                hh_threshold_bps: 800_000_000,
                ..Default::default()
            },
        );
        let mut traffic = HeavyHitterWorkload::new(hh_config(leaf));
        let mut now = Time::ZERO;
        while now < Time::from_secs(8) {
            let events = traffic.advance(now, Dur::from_millis(50));
            net.apply_traffic(&events);
            sonata.observe_traffic(&events, &mut net);
            now += Dur::from_millis(50);
            sonata.advance(now);
        }
        sonata
            .first_detection_after(Time::ZERO, leaf)
            .unwrap()
            .as_nanos() as f64
            / 1e6
    };

    assert!(
        farm_ms < sflow_ms && sflow_ms < sonata_ms,
        "detection ordering: FARM {farm_ms} < sFlow {sflow_ms} < Sonata {sonata_ms}"
    );
    assert!(
        farm_ms < 5.0,
        "FARM must be in the millisecond band, got {farm_ms}"
    );
    assert!(
        sonata_ms / farm_ms > 500.0,
        "headline speedup must be orders of magnitude"
    );
}

#[test]
fn farm_collector_traffic_is_orders_of_magnitude_below_sflow() {
    // FARM with change-detecting HH.
    let farm_bytes = {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        let leaf = farm.network().topology().leaves().next().unwrap();
        farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let mut traffic = HeavyHitterWorkload::new(hh_config(leaf));
        farm.run(
            &mut [&mut traffic],
            Time::from_secs(1),
            Dur::from_millis(10),
        );
        farm.metrics().collector_bytes
    };

    let sflow_bytes = {
        let mut net = Network::new(fabric());
        let leaf = net.topology().leaves().next().unwrap();
        let ids = net.switch_ids();
        let mut sflow = SflowSystem::new(
            &ids,
            SflowConfig {
                counter_interval: Dur::from_millis(10),
                ..Default::default()
            },
        );
        let mut traffic = HeavyHitterWorkload::new(hh_config(leaf));
        let mut now = Time::ZERO;
        while now < Time::from_secs(1) {
            let events = traffic.advance(now, Dur::from_millis(10));
            net.apply_traffic(&events);
            sflow.observe_traffic(&events, &mut net);
            now += Dur::from_millis(10);
            sflow.advance(now, &mut net);
        }
        sflow.collector.bytes_received
    };

    assert!(
        farm_bytes * 50 < sflow_bytes,
        "FARM {farm_bytes}B must be far below sFlow {sflow_bytes}B"
    );
}
