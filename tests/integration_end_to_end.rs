//! End-to-end integration: several M&M tasks co-deployed on a fabric,
//! traffic flowing, seeds reacting locally, harvesters steering globally.

use std::collections::BTreeMap;

use farm_almanac::value::Value;
use farm_core::farm::{external, Farm, FarmConfig};
use farm_core::harvester::{CollectingHarvester, HhThresholdHarvester};
use farm_netsim::switch::SwitchModel;
use farm_netsim::tcam::RuleAction;
use farm_netsim::time::{Dur, Time};
use farm_netsim::topology::Topology;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};

fn fabric() -> Topology {
    Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    )
}

#[test]
fn hh_detection_reaction_and_harvester_reporting() {
    let mut farm = Farm::new(fabric(), FarmConfig::default());
    farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 48,
        hh_ratio: 0.1,
        hh_rate_bps: 5_000_000_000,
        ..Default::default()
    });
    let truth = traffic.heavy_ports();
    farm.run(
        &mut [&mut traffic],
        Time::from_millis(60),
        Dur::from_millis(1),
    );

    // Reports reached the harvester from the loaded leaf.
    let h: &CollectingHarvester = farm.harvester("hh").unwrap();
    assert!(h.received.iter().any(|m| m.from_switch == leaf));

    // Local reactions: a QoS rule for every ground-truth heavy port.
    let sw = farm.network().switch(leaf).unwrap();
    for p in &truth {
        let reacted = sw.tcam().rules().iter().any(|r| {
            r.action == RuleAction::SetQos(1)
                && r.pattern
                    == farm_netsim::types::FilterFormula::Atom(
                        farm_netsim::types::FilterAtom::IfPort(farm_netsim::types::PortSel::Id(
                            p.0,
                        )),
                    )
        });
        assert!(reacted, "no local reaction for heavy port {p}");
    }
    // No seed runtime errors anywhere.
    assert_eq!(farm.metrics().seed_errors, 0);
}

#[test]
fn harvester_retunes_thresholds_network_wide() {
    let mut farm = Farm::new(fabric(), FarmConfig::default());
    let mut harvester = HhThresholdHarvester::new("HH", 1_000_000);
    harvester.max_hitters_per_report = 2;
    farm.set_harvester("hh", Box::new(harvester));
    // A low threshold makes many ports "heavy" → noisy reports → the
    // harvester must raise the threshold on every seed.
    let mut ext = BTreeMap::new();
    ext.insert(
        "HH".to_string(),
        external(&[("threshold", Value::Int(1_000))]),
    );
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &ext)
        .unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 48,
        hh_ratio: 0.2,
        ..Default::default()
    });
    farm.run(
        &mut [&mut traffic],
        Time::from_millis(50),
        Dur::from_millis(1),
    );

    let h: &HhThresholdHarvester = farm.harvester("hh").unwrap();
    assert!(h.retunes > 0, "harvester never retuned");
    let new_threshold = h.threshold();
    assert!(new_threshold > 1_000);
    // Every seed across the fabric received the new threshold.
    for id in farm.network().switch_ids() {
        let soil = farm.soil(id).unwrap();
        for seed in soil.seeds() {
            assert_eq!(
                seed.var("threshold"),
                Some(&Value::Int(new_threshold)),
                "seed on {id} missed the broadcast"
            );
        }
    }
}

#[test]
fn co_deployed_tasks_aggregate_polling_and_stay_isolated() {
    let mut farm = Farm::new(fabric(), FarmConfig::default());
    farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
    farm.set_harvester("traffic-change", Box::new(CollectingHarvester::new()));
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    farm.deploy_task(
        "traffic-change",
        farm_almanac::programs::TRAFFIC_CHANGE,
        &BTreeMap::new(),
    )
    .unwrap();
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 48,
        ..Default::default()
    });
    farm.run(
        &mut [&mut traffic],
        Time::from_secs(3),
        Dur::from_millis(10),
    );

    // Aggregation: both tasks poll `port ANY`; the soils must have shared
    // ASIC transfers.
    let saved: u64 = farm
        .network()
        .switch_ids()
        .iter()
        .map(|id| farm.soil(*id).unwrap().stats().polls_saved)
        .sum();
    assert!(saved > 0, "no polls were aggregated across tasks");

    // Isolation: the traffic-change harvester receives stats from its own
    // machine only.
    let tc: &CollectingHarvester = farm.harvester("traffic-change").unwrap();
    assert!(!tc.received.is_empty());
    assert!(tc
        .received
        .iter()
        .all(|m| m.from_machine == "TrafficChange"));
    let hh: &CollectingHarvester = farm.harvester("hh").unwrap();
    assert!(hh.received.iter().all(|m| m.from_machine == "HH"));
}

#[test]
fn task_removal_releases_resources() {
    let mut farm = Farm::new(fabric(), FarmConfig::default());
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    let before: usize = farm
        .network()
        .switch_ids()
        .iter()
        .map(|id| farm.soil(*id).unwrap().num_seeds())
        .sum();
    assert_eq!(before, 6);
    farm.remove_task("hh").unwrap();
    let after: usize = farm
        .network()
        .switch_ids()
        .iter()
        .map(|id| farm.soil(*id).unwrap().num_seeds())
        .sum();
    assert_eq!(after, 0);
    // Redeployment works after removal.
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .unwrap();
    assert_eq!(farm.deployed_seeds(), 6);
}

#[test]
fn deterministic_given_the_same_seed() {
    let run_once = || {
        let mut farm = Farm::new(fabric(), FarmConfig::default());
        farm.set_harvester("hh", Box::new(CollectingHarvester::new()));
        farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
            .unwrap();
        let leaf = farm.network().topology().leaves().next().unwrap();
        let mut traffic = HeavyHitterWorkload::new(HhConfig {
            switch: leaf,
            n_ports: 32,
            hh_ratio: 0.1,
            seed: 99,
            ..Default::default()
        });
        farm.run(
            &mut [&mut traffic],
            Time::from_millis(30),
            Dur::from_millis(1),
        );
        let h: &CollectingHarvester = farm.harvester("hh").unwrap();
        (
            farm.metrics().collector_bytes,
            h.received.len(),
            h.first_arrival_after(Time::ZERO),
        )
    };
    assert_eq!(
        run_once(),
        run_once(),
        "virtual-time runs must be reproducible"
    );
}
