//! A harvester at the far end of a real (lossy) TCP link.
//!
//! Demonstrates the `farm-net` transport end to end:
//!
//! 1. a "harvester" process half — a [`NetServer`] on loopback that
//!    decodes incoming poll-report frames;
//! 2. a "soil" half — a [`Connection`] shipping batched reports through
//!    a [`LossInterceptor`] that drops and duplicates real frames;
//! 3. a server outage — queued frames back up, the bounded send queue
//!    overflows into dead letters, reconnect attempts back off;
//! 4. recovery — the server rebinds, the client reconnects and drains
//!    its queue.
//!
//! Run with: `cargo run --example remote_harvester`

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use farm_almanac::value::Value;
use farm_faults::LossSpec;
use farm_net::{Connection, Envelope, Frame, LossInterceptor, NetConfig, NetServer, Report};
use farm_netsim::time::Dur;
use farm_telemetry::Telemetry;

/// Collects poll reports like a harvester would.
fn harvester(received: Arc<AtomicU64>) -> Arc<dyn farm_net::FrameHandler> {
    Arc::new(move |env: &Envelope| {
        if let Frame::PollReport { reports } = &env.frame {
            received.fetch_add(reports.len() as u64, Ordering::Relaxed);
        }
        None
    })
}

fn sample_report(seq: u64) -> Report {
    Report {
        task: "hh".into(),
        from_switch: (seq % 5) as u32,
        from_seed: seq,
        from_machine: "HH".into(),
        at_ns: seq * 1_000_000,
        latency_ns: 40_000,
        bytes: 48,
        value: Value::List(vec![Value::Int(seq as i64), Value::Str("flow".into())]),
    }
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        if Instant::now() > deadline {
            panic!("timed out waiting for {what}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let telemetry = Telemetry::new();
    let received = Arc::new(AtomicU64::new(0));

    // --- Phase 1: a harvester server and a lossy soil-side client. ---
    let mut server = NetServer::bind(
        "127.0.0.1:0".parse::<SocketAddr>().unwrap(),
        &telemetry,
        harvester(Arc::clone(&received)),
    )
    .expect("bind harvester endpoint");
    let addr = server.local_addr();
    println!("harvester listening on {addr}");

    let lossy = LossInterceptor::from_spec(
        LossSpec {
            drop: 0.2,
            duplicate: 0.05,
            delay: Dur::from_micros(50),
        },
        42,
    );
    let cfg = NetConfig {
        node: "leaf-soil".into(),
        send_queue: 64,
        batch_max: 8,
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        max_reconnects: 500,
        ..NetConfig::default()
    };
    let mut conn = Connection::connect_with(addr, cfg, &telemetry, Box::new(lossy));

    for seq in 0..200 {
        conn.queue_report(sample_report(seq)).expect("queue report");
    }
    conn.flush_reports().expect("flush");
    // ~20% of frames vanish on the lossy link; whatever arrives, arrives.
    wait_for("first batches to land", || {
        received.load(Ordering::Relaxed) >= 80 && conn.queued() == 0
    });
    let after_lossy = received.load(Ordering::Relaxed);
    println!(
        "lossy link: {after_lossy}/200 reports delivered ({} frames dropped on the wire)",
        telemetry.snapshot().counter("net.dropped_frames")
    );

    // --- Phase 2: the harvester goes down mid-run. ---
    server.shutdown();
    drop(server);
    println!("harvester down; soil keeps reporting into its bounded queue");
    let mut overflowed = 0u64;
    for seq in 200..400 {
        // try_send semantics: a full queue dead-letters instead of
        // blocking the polling loop.
        let frame = Frame::PollReport {
            reports: vec![sample_report(seq)],
        };
        if conn.try_send(frame).is_err() {
            overflowed += 1;
        }
    }
    let snap = telemetry.snapshot();
    println!(
        "outage: {overflowed} reports dead-lettered at the full queue (net.dead_letters={}), {} reconnect attempts so far",
        snap.counter("net.dead_letters"),
        snap.counter("net.connect_failures"),
    );
    assert!(overflowed > 0, "bounded queue must overflow during outage");

    // --- Phase 3: the harvester comes back on the same address. ---
    let server = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match NetServer::bind(addr, &telemetry, harvester(Arc::clone(&received))) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    // The old port can linger briefly; retry.
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("rebind failed: {e}"),
            }
        }
    };
    println!("harvester back on {}", server.local_addr());
    wait_for("reconnect", || conn.is_connected());
    wait_for("queued reports to drain", || conn.queued() == 0);
    conn.close();

    let snap = telemetry.snapshot();
    let total = received.load(Ordering::Relaxed);
    println!("--- final accounting ---");
    for key in [
        "net.bytes",
        "net.frames_sent",
        "net.frames_received",
        "net.dropped_frames",
        "net.dead_letters",
        "net.connects",
        "net.reconnects",
        "net.connect_failures",
    ] {
        println!("{key:24} {}", snap.counter(key));
    }
    println!("reports harvested        {total}");
    assert!(
        snap.counter("net.reconnects") >= 1,
        "client must have reconnected after the outage"
    );
    assert!(
        total > after_lossy,
        "queued reports must drain on reconnect"
    );
}
