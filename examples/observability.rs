//! Observability tour: build a farm with telemetry sinks attached, run
//! the heavy-hitter task, and show all three consumption styles —
//! streaming JSON-lines events, the typed ring-buffer event log, and the
//! registry of counters/histograms (of which the legacy `Metrics` struct
//! is a derived view).
//!
//! ```text
//! cargo run --example observability
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use farm_core::prelude::*;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};

fn main() {
    let topology = Topology::spine_leaf(
        2,
        3,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );

    // Two sinks on the same event stream: a bounded in-memory log for
    // programmatic inspection and a JSON-lines stream to stdout.
    let log = Arc::new(RingBufferSink::new(65_536));
    let json = Arc::new(JsonLinesSink::new(Box::new(std::io::stdout())));
    let mut farm = FarmBuilder::new(topology)
        .with_config(FarmConfig::default())
        .with_harvester("hh", Box::new(CollectingHarvester::new()))
        .with_sink(log.clone())
        .with_sink(json.clone())
        .build();

    // Deploying a task emits solver-phase, seed-lifecycle and replan
    // events (visible above as JSON lines).
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .expect("HH compiles and places");

    // Drive traffic; polls, aggregations, IPC deliveries and harvester
    // reports stream out while the registry accumulates.
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 32,
        hh_ratio: 0.1,
        hh_rate_bps: 5_000_000_000,
        ..Default::default()
    });
    farm.run(
        &mut [&mut traffic],
        Time::from_millis(60),
        Dur::from_millis(1),
    );
    json.flush();

    // 1. The typed event log, grouped by kind.
    let events = log.events();
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry(e.kind()).or_default() += 1;
    }
    eprintln!(
        "\nevent log ({} events, {} dropped):",
        events.len(),
        log.dropped()
    );
    for (kind, n) in &by_kind {
        eprintln!("  {kind:<20} {n}");
    }

    // 2. The registry: counters and latency histograms.
    let snap = farm.telemetry().snapshot();
    eprintln!("\nregistry counters:");
    for (name, value) in &snap.counters {
        eprintln!("  {name:<28} {value}");
    }
    eprintln!("latency histograms (µs):");
    for (name, h) in &snap.histograms {
        eprintln!(
            "  {name:<28} count={} p50={:.0} p99={:.0} max={}",
            h.count,
            h.p50.unwrap_or(0.0),
            h.p99.unwrap_or(0.0),
            h.max
        );
    }

    // 3. The legacy Metrics view is computed from the same registry.
    let metrics = farm.metrics();
    assert_eq!(metrics, Metrics::from_snapshot(&snap));
    eprintln!(
        "\nMetrics compat view: {} collector bytes, {} total network bytes",
        metrics.collector_bytes,
        metrics.total_network_bytes()
    );
}
