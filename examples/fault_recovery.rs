//! Fault-injection tour: run FARM under a deterministic failure schedule
//! — a hard switch crash with restart, a link flap, control-channel loss
//! and PCIe degradation — and watch the failure detector, shedding and
//! automatic recovery respond. Everything is replayable: the same plan
//! yields the same event trace, so set FARM_FAULT_SEED to explore other
//! churn schedules.
//!
//! ```text
//! cargo run --example fault_recovery
//! FARM_FAULT_SEED=42 cargo run --example fault_recovery
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use farm_core::prelude::*;
use farm_faults::{ChurnProfile, FaultKind, FaultPlan, LossSpec};
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};
use farm_netsim::types::SwitchId;

/// A movable monitoring task: unlike the pinned `place all` programs it
/// can be re-placed anywhere, which is what recovery exercises.
const MONITOR: &str = r#"
machine Mon {
  place any;
  poll p = Poll { .ival = 1, .what = port ANY };
  long total = 0;
  state s {
    util (res) {
      if (res.vCPU >= 1 and res.RAM >= 256) then {
        return min(res.vCPU, res.PCIe);
      }
    }
    when (p as stats) do {
      total = total + list_len(stats);
      send total to harvester;
    }
  }
}
"#;

fn main() {
    let seed: u64 = std::env::var("FARM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let topology = Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let switches: Vec<SwitchId> = (0..6).map(SwitchId).collect();

    // A hand-written prologue (one crash, one flap, a lossy window, one
    // PCIe brown-out) followed by seeded churn across the fabric.
    let mut plan = FaultPlan::churn(
        seed,
        &switches,
        Time::from_millis(120),
        Time::from_millis(400),
        ChurnProfile::default(),
    )
    .crash_and_restart(SwitchId(4), Time::from_millis(30), Dur::from_millis(60))
    .link_flap(
        SwitchId(0),
        SwitchId(3),
        Time::from_millis(50),
        Dur::from_millis(20),
    );
    plan.push(
        Time::from_millis(60),
        FaultKind::ControlLoss {
            switch: None,
            spec: LossSpec {
                drop: 0.3,
                duplicate: 0.05,
                delay: Dur::from_micros(200),
            },
        },
    );
    plan.push(
        Time::from_millis(110),
        FaultKind::ControlHeal { switch: None },
    );
    // A fleet-wide PCIe brown-out: the fast-polling monitor no longer
    // fits the degraded bus and is shed; the slower HH seeds survive.
    for &sw in &switches {
        plan.push(
            Time::from_millis(70),
            FaultKind::PcieDegrade {
                switch: sw,
                factor: 0.01,
            },
        );
        plan.push(
            Time::from_millis(100),
            FaultKind::PcieRestore { switch: sw },
        );
    }

    let log = Arc::new(RingBufferSink::new(65_536));
    let mut farm = FarmBuilder::new(topology)
        .with_fault_plan(plan)
        .with_harvester("hh", Box::new(CollectingHarvester::new()))
        .with_harvester("mon", Box::new(CollectingHarvester::new()))
        .with_sink(log.clone())
        .build();
    farm.deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .expect("HH compiles and places");
    farm.deploy_task("mon", MONITOR, &BTreeMap::new())
        .expect("monitor compiles and places");
    let deployed_at_start = farm.deployed_seeds();

    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 32,
        hh_ratio: 0.1,
        ..Default::default()
    });
    farm.run(
        &mut [&mut traffic],
        Time::from_millis(500),
        Dur::from_millis(1),
    );

    // The fault / detection / recovery story, in event order.
    eprintln!("fault timeline (seed {seed}):");
    for e in log.events() {
        match e {
            Event::SwitchCrashed { at_ns, switch } => {
                eprintln!("  {:>6.1}ms  switch {switch} crashed", at_ns as f64 / 1e6);
            }
            Event::SwitchRestarted { at_ns, switch } => {
                eprintln!("  {:>6.1}ms  switch {switch} restarted", at_ns as f64 / 1e6);
            }
            Event::SwitchDeclaredFailed {
                at_ns,
                switch,
                missed,
            } => eprintln!(
                "  {:>6.1}ms  switch {switch} declared failed after {missed} missed heartbeats",
                at_ns as f64 / 1e6
            ),
            Event::SeedOrphaned {
                at_ns,
                switch,
                task,
                has_snapshot,
                ..
            } => eprintln!(
                "  {:>6.1}ms  seed of '{task}' orphaned on switch {switch} (snapshot: {has_snapshot})",
                at_ns as f64 / 1e6
            ),
            Event::SeedShed {
                at_ns,
                switch,
                task,
                resource,
                demand,
                budget,
                ..
            } => eprintln!(
                "  {:>6.1}ms  seed of '{task}' shed on switch {switch}: {resource:?} demand {demand:.1} > budget {budget:.1}",
                at_ns as f64 / 1e6
            ),
            Event::SeedRecovered {
                at_ns,
                switch,
                task,
                cold_start,
                mttr_ns,
                attempts,
                ..
            } => eprintln!(
                "  {:>6.1}ms  seed of '{task}' recovered on switch {switch} ({} restore, {:.1}ms MTTR, {attempts} attempt(s))",
                at_ns as f64 / 1e6,
                if cold_start { "cold" } else { "warm" },
                mttr_ns as f64 / 1e6
            ),
            Event::RecoveryAbandoned { at_ns, task, .. } => eprintln!(
                "  {:>6.1}ms  recovery of '{task}' abandoned",
                at_ns as f64 / 1e6
            ),
            _ => {}
        }
    }

    let snap = farm.telemetry().snapshot();
    eprintln!("\nreliability counters:");
    for name in [
        "farm.heartbeats",
        "farm.recoveries",
        "farm.delivery_retries",
        "farm.dead_letters",
        "soil.seeds_shed",
    ] {
        eprintln!("  {name:<24} {}", snap.counter(name));
    }
    if let Some(h) = snap.histogram("recovery.mttr_us") {
        eprintln!(
            "  MTTR (µs)                count={} p50={:.0} max={}",
            h.count,
            h.p50.unwrap_or(0.0),
            h.max
        );
    }
    eprintln!(
        "\nseeds: {} deployed at start, {} now, {} awaiting recovery",
        deployed_at_start,
        farm.deployed_seeds(),
        farm.recovery_pending()
    );
}
