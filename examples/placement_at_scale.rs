//! Global seed placement at scale: FARM's Alg. 1 heuristic vs the MILP
//! solver under a deadline, on a Fig. 7-style instance (hundreds of
//! switches, thousands of seeds, shared polling subjects).
//!
//! ```text
//! cargo run --release --example placement_at_scale
//! ```

use std::time::Duration;

use farm_placement::heuristic::{solve_heuristic, HeuristicOptions};
use farm_placement::milp::{solve_placement_milp, MilpPlacementOptions};
use farm_placement::model::validate;
use farm_placement::workload::{generate, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig {
        n_switches: 260,
        n_tasks: 10,
        n_seeds: 2550, // a quarter of the paper's top scale
        rng_seed: 2024,
        ..Default::default()
    };
    println!(
        "instance: {} seeds, {} tasks, {} switches",
        cfg.n_seeds, cfg.n_tasks, cfg.n_switches
    );
    let inst = generate(&cfg);

    let h = solve_heuristic(&inst, HeuristicOptions::default());
    validate(&inst, &h).expect("heuristic result satisfies C1-C4");
    println!(
        "FARM heuristic : utility {:>10.0}  placed {:>5}/{}  dropped tasks {}  in {:?}",
        h.utility,
        h.placed(),
        inst.seeds.len(),
        h.dropped_tasks.len(),
        h.runtime
    );

    for (label, limit) in [("MILP 1s", 1u64), ("MILP 10s", 10)] {
        let m = solve_placement_milp(
            &inst,
            &MilpPlacementOptions {
                time_limit: Duration::from_secs(limit),
                ..Default::default()
            },
        );
        validate(&inst, &m.result).expect("MILP result satisfies C1-C4");
        println!(
            "{label:<14} : utility {:>10.0}  placed {:>5}/{}  exact={}  in {:?}",
            m.result.utility,
            m.result.placed(),
            inst.seeds.len(),
            m.exact,
            m.result.runtime
        );
    }
    println!(
        "\nshape check (Fig. 7): the heuristic reaches MILP-long utility at a \
         fraction of the runtime; the short deadline costs utility."
    );
}
