//! Port-scan detection: the PortScan seed samples SYN probes, counts
//! distinct destination ports per source over a window, and drops the
//! scanner in the TCAM the moment it crosses the limit.
//!
//! ```text
//! cargo run --example portscan_detection
//! ```

use farm_core::prelude::*;
use farm_netsim::tcam::RuleAction;
use farm_netsim::traffic::{PortScanConfig, PortScanWorkload, Workload};
use farm_scenario::suite;

fn main() {
    let topology = Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let mut farm = FarmBuilder::new(topology)
        .with_harvester("portscan", Box::new(CollectingHarvester::new()))
        .build();

    let leaf = farm.network().topology().leaves().next().unwrap();
    let target = farm.network().topology().host_ip(leaf, 20).unwrap();
    let scanner = farm_netsim::types::Ipv4::new(192, 0, 2, 66);

    // The scenario suite's shared PortScan definition (crates/scenario):
    // the example reacts to the same program the benchmark scores.
    let ext = suite::portscan_externals(50);
    farm.deploy_task(suite::PORTSCAN_TASK.name, suite::PORTSCAN_TASK.source, &ext)
        .expect("PortScan task compiles and places");

    let mut scan = PortScanWorkload::new(PortScanConfig {
        switch: leaf,
        scanner,
        target,
        ports_per_sec: 500,
        ..Default::default()
    });

    let mut blocked_at = None;
    let mut t = Time::ZERO;
    while t < Time::from_secs(5) {
        let next = t + Dur::from_millis(10);
        let events = scan.advance(t, Dur::from_millis(10));
        farm.apply_traffic(&events);
        farm.advance(next);
        t = next;
        let dropped = farm
            .network()
            .switch(leaf)
            .unwrap()
            .tcam()
            .rules()
            .iter()
            .any(|r| r.action == RuleAction::Drop);
        if dropped {
            blocked_at = Some(t);
            break;
        }
    }

    println!("scanner {scanner} probing {target} at 500 ports/s");
    println!("distinct ports probed: {}", scan.ports_probed());
    match blocked_at {
        Some(t) => println!("scanner dropped in the TCAM at {t}"),
        None => println!("scanner was not blocked (unexpected)"),
    }
    let harvester: &CollectingHarvester = farm.harvester("portscan").unwrap();
    for m in &harvester.received {
        println!("harvester report from {}: {}", m.from_switch, m.value);
    }
}
