//! Quickstart: deploy the paper's heavy-hitter task on a simulated
//! spine-leaf fabric, drive traffic through it, and watch seeds react
//! locally while reporting to their harvester.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::collections::BTreeMap;

use farm_core::prelude::*;
use farm_netsim::traffic::{HeavyHitterWorkload, HhConfig};

fn main() {
    // 1. A 2-spine / 4-leaf fabric of the paper's Accton switches, with
    //    the harvester registered up front via the builder.
    let topology = Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let mut farm = FarmBuilder::new(topology)
        .with_config(FarmConfig::default())
        .with_harvester("hh", Box::new(CollectingHarvester::new()))
        .build();

    // 2. Deploy the Tab. I heavy-hitter task — `place all` puts one seed
    //    on every switch, placement-optimized.
    let plan = farm
        .deploy_task("hh", farm_almanac::programs::HEAVY_HITTER, &BTreeMap::new())
        .expect("HH compiles and places");
    println!(
        "deployed {} seeds (placement utility {:.1})",
        plan.actions.len(),
        plan.result.utility
    );

    // 3. Heavy-hitter traffic on one leaf: 10% of 48 ports are heavy.
    let leaf = farm.network().topology().leaves().next().unwrap();
    let mut traffic = HeavyHitterWorkload::new(HhConfig {
        switch: leaf,
        n_ports: 48,
        hh_ratio: 0.1,
        hh_rate_bps: 5_000_000_000,
        ..Default::default()
    });
    println!("ground truth heavy ports: {:?}", traffic.heavy_ports());

    // 4. Run 100 ms of virtual time at 1 ms ticks.
    farm.run(
        &mut [&mut traffic],
        Time::from_millis(100),
        Dur::from_millis(1),
    );

    // 5. The seeds detected the hitters, installed TCAM reactions locally,
    //    and reported to the harvester.
    let harvester: &CollectingHarvester = farm.harvester("hh").unwrap();
    println!(
        "harvester received {} reports; first at {}",
        harvester.received.len(),
        harvester
            .first_arrival_after(Time::ZERO)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".into())
    );
    let reactions = farm
        .network()
        .switch(leaf)
        .unwrap()
        .tcam()
        .rules()
        .iter()
        .filter(|r| r.priority == 10)
        .count();
    println!("local TCAM reactions installed on {leaf}: {reactions}");
    println!(
        "monitoring traffic to the collector: {} bytes in 100 ms",
        farm.metrics().collector_bytes
    );
    if let Some(d) = farm
        .telemetry()
        .snapshot()
        .histogram("detection.latency_us")
    {
        println!(
            "detection latency: p50 {:.0} µs, p99 {:.0} µs over {} reports",
            d.p50.unwrap_or(0.0),
            d.p99.unwrap_or(0.0),
            d.count
        );
    }
}
