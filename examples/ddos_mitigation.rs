//! DDoS detection with switch-local mitigation: the DDoS seed watches the
//! protected prefix, rate-limits the victim's traffic directly in the
//! TCAM when a sustained flood is confirmed, and recovers once the attack
//! subsides — no collector round trip on the reaction path.
//!
//! ```text
//! cargo run --example ddos_mitigation
//! ```

use farm_core::prelude::*;
use farm_netsim::tcam::RuleAction;
use farm_netsim::traffic::{DdosConfig, DdosWorkload, Workload};
use farm_scenario::suite;

fn main() {
    let topology = Topology::spine_leaf(
        2,
        4,
        SwitchModel::accton_as7712(),
        SwitchModel::accton_as5712(),
    );
    let mut farm = FarmBuilder::new(topology)
        .with_harvester("ddos", Box::new(CollectingHarvester::new()))
        .build();

    let leaf = farm.network().topology().leaves().next().unwrap();
    let victim_prefix = farm
        .network()
        .topology()
        .node(leaf)
        .unwrap()
        .prefix
        .unwrap();
    let victim = farm.network().topology().host_ip(leaf, 9).unwrap();

    // Parameterize the Tab. I DDoS task for the victim's subnet, using
    // the same task definition the hostile-traffic scenario suite scores
    // (crates/scenario) so example and benchmark stay in lockstep.
    let ext = suite::ddos_externals(&victim_prefix.to_string(), 2_000_000, 2);
    farm.deploy_task(suite::DDOS_TASK.name, suite::DDOS_TASK.source, &ext)
        .expect("DDoS task compiles and places");

    // Attack begins at t = 200 ms: 200 sources flood the victim.
    let mut attack = DdosWorkload::new(DdosConfig {
        switch: leaf,
        victim,
        n_sources: 200,
        per_source_bps: 20_000_000,
        background_bps: 5_000_000,
        onset: Time::from_millis(200),
        ..Default::default()
    });

    let mut mitigated_at = None;
    let mut t = Time::ZERO;
    while t < Time::from_secs(2) {
        let next = t + Dur::from_millis(10);
        let events = attack.advance(t, Dur::from_millis(10));
        farm.apply_traffic(&events);
        farm.advance(next);
        t = next;
        let limited = farm
            .network()
            .switch(leaf)
            .unwrap()
            .tcam()
            .rules()
            .iter()
            .any(|r| matches!(r.action, RuleAction::RateLimit(_)));
        if limited {
            mitigated_at = Some(t);
            break;
        }
    }

    match mitigated_at {
        Some(t) => {
            let react = t.since(Time::from_millis(200));
            println!("attack onset: t+0.200s");
            println!("local rate-limit installed at {t} (reaction time {react})");
        }
        None => println!("attack was not mitigated (unexpected)"),
    }
    let harvester: &CollectingHarvester = farm.harvester("ddos").unwrap();
    println!(
        "harvester was informed with {} report(s) — mitigation did NOT wait for it",
        harvester.received.len()
    );
}
