//! Vendored stand-in for `rand`, present because this build runs with
//! no network access and no crates.io registry. It covers exactly the
//! surface this workspace uses — `StdRng::seed_from_u64`, the `RngExt`
//! `random`/`random_range` methods, and `seq::SliceRandom::shuffle` —
//! on top of a small, deterministic splitmix64/xoshiro256++ core.
//!
//! The stream differs from upstream `StdRng` (which is ChaCha-based);
//! everything in-tree treats seeded randomness as an arbitrary but
//! reproducible stream, so only determinism matters, not the bytes.

/// A seedable RNG with the subset of the `Rng` surface the workspace
/// uses, implemented as xoshiro256++ seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct Rng256 {
    s: [u64; 4],
}

impl Rng256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction from an integer seed, as in real `rand`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Rng256 {
    fn seed_from_u64(seed: u64) -> Rng256 {
        // splitmix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Rng256 {
            s: [next(), next(), next(), next()],
        }
    }
}

/// The sampling methods the workspace calls (`random`, `random_range`).
pub trait RngExt {
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (`f64` in `[0, 1)`, integers
    /// over their full width, `bool` as a fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl RngExt for Rng256 {
    fn next_u64(&mut self) -> u64 {
        Rng256::next_u64(self)
    }
}

/// Types `random::<T>()` can produce.
pub trait Standard: Sized {
    fn sample<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngExt + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngExt + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges `random_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngExt + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection-free multiply-shift reduction; the tiny modulo bias is
    // irrelevant for simulation workloads.
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        let u: f64 = Standard::sample(rng);
        start + u * (end - start)
    }
}

pub mod rngs {
    /// The workspace's standard seeded RNG (xoshiro256++ here; the
    /// upstream crate uses ChaCha12 — streams differ, determinism holds).
    pub type StdRng = super::Rng256;
}

pub mod seq {
    use super::RngExt;

    /// In-place slice shuffling, as in real `rand`.
    pub trait SliceRandom {
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "identity permutation is astronomically unlikely");
    }
}
