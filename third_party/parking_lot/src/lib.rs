//! Vendored stand-in for `parking_lot`, present because this build runs
//! with no network access and no crates.io registry. It adapts the std
//! primitives to parking_lot's signatures — `lock()` returns the guard
//! directly (poisoning is swallowed, as parking_lot has none) and the
//! condvar waits borrow the guard by `&mut` instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard wrapper; the `Option` lets condvar waits hand the inner std
/// guard to `std::sync::Condvar` (which consumes it) and put it back.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Whether a timed condvar wait hit its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` wait calls.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Waits until notified or `deadline` passes; spurious wakeups are
    /// possible, exactly as in parking_lot.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let remaining = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self
            .inner
            .wait_timeout(g, remaining)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_until_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                let res = cv.wait_until(&mut ready, Instant::now() + Duration::from_secs(5));
                assert!(!res.timed_out(), "notify never arrived");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
