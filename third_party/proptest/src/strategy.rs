//! The [`Strategy`] trait and its combinators. Generation-only: every
//! strategy is a deterministic function of the per-case RNG.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// How many times `prop_filter` retries before giving up. Generous —
/// the workspace's filters reject only rare values (e.g. keywords).
const FILTER_RETRIES: usize = 10_000;

/// A recipe for producing values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map`'s output.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_flat_map`'s output: a value-dependent second stage.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// `prop_filter`'s output: regenerate until the predicate passes.
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected every candidate", self.whence);
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

/// `&str` as a strategy: a character-class regex subset (see
/// [`crate::string`]) producing `String`s.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
