//! `collection::vec` — vectors of strategy-generated elements.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length spec: exact, half-open, or inclusive.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_excl - self.size.min;
        let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
