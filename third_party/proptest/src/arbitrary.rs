//! `any::<T>()` — full-width uniform generation for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniformly random `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
