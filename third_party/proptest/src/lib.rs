//! Vendored stand-in for `proptest`, present because this build runs
//! with no network access and no crates.io registry. It implements the
//! generation half of the proptest API this workspace uses — the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` macros, `Strategy`
//! with `prop_map` / `prop_flat_map` / `prop_filter` / `boxed`,
//! `BoxedStrategy`, `Just`, `any`, integer/float range strategies, a
//! regex-subset `&str` strategy, tuples, and `collection::vec` — on a
//! deterministic per-case RNG.
//!
//! Differences from upstream, deliberate for an offline test substrate:
//! no shrinking (a failing case panics with the generated inputs fixed
//! by the run's seed, so it reproduces exactly), and `&str` strategies
//! accept only the character-class regex subset the workspace uses.
//!
//! Determinism contract (matches how CI drives upstream proptest):
//! `PROPTEST_RNG_SEED` pins the master seed, `PROPTEST_CASES` overrides
//! the default case count; explicit `ProptestConfig::with_cases` wins
//! over the environment.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The body of a generated test; matching upstream, failures are
/// surfaced by panicking (upstream would shrink first — we do not).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` inner
/// attribute followed by `fn name(pat in strategy, ..) { body }` items.
/// Attributes (including the `#[test]` the caller writes, per upstream
/// convention in this workspace) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            __runner.run_cases(|__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&{ $strat }, __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{TestRng, TestRunner};

    #[test]
    fn boxed_union_map_filter_compose() {
        let s = prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)]
            .prop_filter("even only", |v| v % 2 == 0)
            .boxed();
        let cloned = s.clone();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(100));
        runner.run_cases(|rng| {
            // Just(1) is odd, so the filter forces a retry until the
            // mapped arm hits: every value is even and in [20, 40).
            for st in [&s, &cloned] {
                let v = st.generate(rng);
                assert!(v % 2 == 0 && (20..40).contains(&v), "got {v}");
            }
        });
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::seed(9);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!((1..=7).contains(&s.len()), "bad len: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "[ -~]{0,16}".generate(&mut rng);
            assert!(t.len() <= 16 && t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_generate_in_bounds() {
        let mut rng = TestRng::seed(4);
        let s = crate::collection::vec((0u8..4, any::<bool>()), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 4));
        }
        let exact = crate::collection::vec(0i64..3, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns bind, ranges stay in bounds.
        #[test]
        fn macro_generates_cases((a, b) in (0u32..10, 0u32..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = flag;
        }
    }
}
