//! The regex subset behind `&str` strategies: a sequence of character
//! classes, each optionally quantified.
//!
//! ```text
//! pattern := ( class quant? )*
//! class   := '[' ( ch '-' ch | ch )+ ']'            e.g. [a-z0-9_./ ]
//! quant   := '{' n '}' | '{' n ',' m '}'            default: exactly 1
//! ```
//!
//! This covers every pattern the workspace's property tests use
//! (`"[a-z]{1,8}"`, `"[A-Z][a-z]{0,6}"`, `"[ -~]{0,16}"`, …); anything
//! outside the subset panics loudly rather than silently mis-generating.

use crate::test_runner::TestRng;

struct Group {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Group> {
    let mut groups = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        if c != '[' {
            panic!("unsupported string-strategy pattern {pattern:?}: expected '[', got {c:?}");
        }
        let mut chars = Vec::new();
        loop {
            let c = it
                .next()
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            if c == ']' {
                break;
            }
            if it.peek() == Some(&'-') {
                // Peek past the '-': a trailing '-]' means a literal dash.
                let mut ahead = it.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => chars.push(c),
                    Some(&hi) => {
                        it.next();
                        it.next();
                        assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
                        chars.extend((c..=hi).filter(|ch| ch.is_ascii()));
                    }
                }
            } else {
                chars.push(c);
            }
        }
        assert!(!chars.is_empty(), "empty class in pattern {pattern:?}");
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            loop {
                match it.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated quantifier in pattern {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        groups.push(Group { chars, min, max });
    }
    groups
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for g in parse(pattern) {
        let n = g.min + rng.below(g.max - g.min + 1);
        for _ in 0..n {
            out.push(g.chars[rng.below(g.chars.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_patterns_parse_and_bound() {
        let mut rng = TestRng::seed(11);
        for (pat, check) in [
            ("[a-z]{1,8}", (1usize, 8usize)),
            ("[A-Z][a-z]{0,6}", (1, 7)),
            ("[ -~]{0,16}", (0, 16)),
            ("[a-z/0-9]{1,16}", (1, 16)),
            ("[a-z][a-z0-9_]{0,6}", (1, 7)),
            ("[a-z0-9./]{0,8}", (0, 8)),
            ("[a-z]{12}", (12, 12)),
        ] {
            for _ in 0..100 {
                let s = generate_pattern(pat, &mut rng);
                let n = s.chars().count();
                assert!(
                    (check.0..=check.1).contains(&n),
                    "{pat}: bad length {n} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn class_membership_is_respected() {
        let mut rng = TestRng::seed(12);
        for _ in 0..200 {
            let s = generate_pattern("[a-z/0-9]{1,16}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/'));
        }
    }
}
