//! Case driving: the per-test config, the master-seeded RNG, and the
//! loop that runs one closure per generated case.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Default case count when neither config nor environment says.
const DEFAULT_CASES: u32 = 256;

/// Master seed used when `PROPTEST_RNG_SEED` is unset. Arbitrary but
/// fixed: every run of the suite sees the same inputs.
const DEFAULT_SEED: u64 = 0x5eed_fa23_11c0_de01;

/// The subset of proptest's config the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// An explicit case count; wins over `PROPTEST_CASES`.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. Deterministic per (master seed, case
/// index), so a failing case reproduces under the same environment.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        RngExt::next_u64(&mut self.inner)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.random_range(0..n)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }
}

/// Runs the per-case closure `config.cases` times, each on a fresh
/// case-derived RNG.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    master_seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> TestRunner {
        let master_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        TestRunner {
            config,
            master_seed,
        }
    }

    pub fn run_cases(&mut self, mut case: impl FnMut(&mut TestRng)) {
        for i in 0..self.config.cases {
            // Golden-ratio stride decorrelates neighbouring cases.
            let seed = self
                .master_seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::seed(seed);
            case(&mut rng);
        }
    }
}
