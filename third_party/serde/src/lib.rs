//! Vendored stand-in for `serde`, present because this build runs with
//! no network access and no crates.io registry. In this workspace the
//! serde derives are inert decoration — nothing in-tree drives a
//! serializer — so the traits are blanket-implemented markers and the
//! derives (re-exported from the stub `serde_derive`) expand to nothing.
//!
//! Like real serde, the trait and the derive macro share one name: Rust
//! resolves `#[derive(Serialize)]` in the macro namespace and trait
//! bounds in the type namespace.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
