//! Vendored stand-in for `serde_derive`, used because this build runs
//! with no network access and no crates.io registry. The workspace only
//! uses `#[derive(Serialize, Deserialize)]` as inert decoration (no
//! serializer backend exists in-tree), so the derives expand to nothing;
//! the marker traits in the sibling `serde` stub are blanket-implemented.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
