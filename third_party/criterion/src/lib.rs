//! Vendored stand-in for `criterion`, present because this build runs
//! with no network access and no crates.io registry. It provides the
//! API surface the workspace's benches compile against and a simple
//! wall-clock measurement loop (fixed warm-up, fixed sample count,
//! prints min/mean per iteration) — none of criterion's statistics,
//! plots, or baseline management. The serious, machine-readable
//! benchmarks in this repo are the `farm-bench` bin targets; these
//! micro-benches are for interactive spot checks.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Per-target measurement knobs (only `sample_size` is honoured).
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings { sample_size: 10 }
    }
}

/// The top-level driver handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), Settings::default(), f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.settings.clone(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.settings.clone(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark's display id.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times the closure handed to `iter`.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, settings: Settings, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    println!(
        "bench {label:<40} min {:>12.3?} mean {:>12.3?} ({} samples)",
        std::time::Duration::from_secs_f64(min),
        std::time::Duration::from_secs_f64(mean),
        b.samples.len()
    );
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
